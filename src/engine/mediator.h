#ifndef HERMES_ENGINE_MEDIATOR_H_
#define HERMES_ENGINE_MEDIATOR_H_

#include <atomic>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cim/cim.h"
#include "common/result.h"
#include "dcsm/dcsm.h"
#include "domain/overload.h"
#include "domain/pipeline.h"
#include "domain/registry.h"
#include "domain/resilience/resilience.h"
#include "engine/diagnostics.h"
#include "engine/executor.h"
#include "engine/op/replan.h"
#include "lang/ast.h"
#include "net/faults/fault_plan.h"
#include "net/network.h"
#include "net/network_interceptor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan_cache.h"

namespace hermes {

class QueryPool;

/// Priority class of a query; the pool drains high before normal before
/// low, and the overload machinery sheds low first (brownout level 3).
enum class QueryPriority : uint8_t {
  kHigh = 0,
  kNormal = 1,
  kLow = 2,
};

/// Stable lowercase name ("high", "normal", "low").
const char* QueryPriorityName(QueryPriority p);

/// Admission control of the QueryPool frontend (see DESIGN.md "Overload
/// control & brownout"). Off by default: the historical blocking queue.
struct AdmissionOptions {
  bool enabled = false;
  /// Shed a query at submission when its remaining deadline budget is
  /// below the queue-wait watermark (the `watermark_quantile` of the
  /// hermes_pool_queue_wait_ms histogram, once `watermark_min_samples`
  /// waits were observed). Deadlines are simulated ms; the watermark is
  /// host ms scaled by Mediator::service_pacing() — with pacing 0 the
  /// check is skipped (simulated time never accrues queue wait).
  bool deadline_aware = true;
  double watermark_quantile = 0.90;
  uint64_t watermark_min_samples = 32;
  /// CoDel-style queue-delay shedding at dequeue: once the sojourn time of
  /// dequeued queries stays above `codel_target_ms` for a full
  /// `codel_interval_ms`, non-high-priority queries are shed (typed
  /// kResourceExhausted) at an increasing rate until sojourn recovers.
  double codel_target_ms = 50.0;
  double codel_interval_ms = 100.0;
};

/// Sizing of the Mediator::Serve worker pool.
struct QueryPoolOptions {
  size_t num_threads = 4;
  /// Bounded submission-queue capacity; 0 sizes it to 2 × num_threads.
  /// When full, Submit blocks and TrySubmit fails fast.
  size_t queue_capacity = 0;
  AdmissionOptions admission;
};

/// Per-query options of Mediator::Query().
struct QueryOptions {
  /// Run the rewriter + cost-based optimizer; false executes the query and
  /// rules exactly as written.
  bool use_optimizer = true;
  optimizer::OptimizationGoal goal = optimizer::OptimizationGoal::kAllAnswers;
  engine::ExecutionMode mode = engine::ExecutionMode::kAllAnswers;
  size_t interactive_batch = 1;
  /// Redirect calls to CIM wrappers where one exists. With the optimizer
  /// on, both direct and CIM plans are generated and costed; with it off,
  /// every wrapped domain is redirected unconditionally.
  bool use_cim = true;
  /// With the optimizer on: emit only CIM-redirected candidate plans.
  bool cim_only = false;
  bool record_statistics = true;  ///< Feed executed calls into the DCSM.
  bool collect_trace = false;     ///< Fill QueryExecution::trace.
  /// Externally assigned query id; 0 lets the mediator assign the next one.
  /// QueryPool assigns ids at submission time so a query's id — and with
  /// it, its per-query RNG stream — is independent of worker scheduling.
  uint64_t query_id = 0;
  /// When non-null, the query records its span tree (query → optimize /
  /// rule → domain-call → cache-lookup → network-hop) into this tracer.
  /// The tracer must stay alive for the duration of the query and must not
  /// be shared between concurrent queries (it is not thread-safe).
  obs::Tracer* tracer = nullptr;
  /// Render the executed plan's operator tree — with post-run per-operator
  /// actuals — into QueryResult::explain_text. Use Mediator::Explain for
  /// EXPLAIN without execution.
  bool explain = false;
  /// Per-query deadline on the simulated clock: past it the operator tree
  /// stops issuing source calls and streaming rows. 0 (default) = none.
  /// With partial_results the answers gathered before the deadline come
  /// back marked partial; without it the query fails DeadlineExceeded.
  double deadline_ms = 0.0;
  /// Graceful degradation: a lost source contributes zero rows and the
  /// query completes with completeness=partial naming it, instead of
  /// failing. Off by default (the historical contract: lost source →
  /// failed query).
  bool partial_results = false;
  /// Compile runs of independent domain calls (no shared bound variables)
  /// into a ScatterGatherOp that issues them concurrently on the simulated
  /// clock, so the group costs max-over-branches instead of sum. Off by
  /// default — the historical sequential tree; Mediator::set_async_execution
  /// turns it on for every query. EXPLAIN marks grouped calls `async`.
  bool async_scatter_gather = false;
  /// Priority class: drives pool queue order and what the overload
  /// machinery sheds first under brownout.
  QueryPriority priority = QueryPriority::kNormal;
};

/// How much of the full answer set a QueryResult represents.
enum class QueryCompleteness {
  kComplete,  ///< Every source answered.
  kDegraded,  ///< Outages masked by (possibly stale) cached answers.
  kPartial,   ///< Sources lost outright; answers are missing.
};

/// Stable lowercase name ("complete", "degraded", "partial").
const char* QueryCompletenessName(QueryCompleteness c);

/// Network traffic attributable to one query. Derived from the query's
/// CallContext metrics (the network layer attributes per-query), never by
/// diffing the shared simulator's global statistics.
struct QueryTraffic {
  uint64_t remote_calls = 0;
  uint64_t failures = 0;       ///< Calls lost to unavailable sites.
  uint64_t bytes = 0;
  double charge = 0.0;         ///< Financial access fees accrued.
};

/// The answers plus optimizer/engine diagnostics of one query.
struct QueryResult {
  engine::QueryExecution execution;
  /// Every candidate plan the optimizer considered (empty when it did not
  /// run), with estimates filled where estimatable.
  std::vector<optimizer::CandidatePlan> candidates;
  std::string plan_description;     ///< Which plan was executed.
  CostVector predicted;             ///< DCSM's prediction for that plan.
  bool predicted_valid = false;
  double optimize_ms = 0.0;         ///< Simulated optimizer time.
  QueryTraffic traffic;             ///< Remote calls/bytes/charges used.
  /// Per-layer counters of this query's call path (trace/stats/cache/
  /// network), accumulated through its CallContext.
  CallMetrics metrics;
  uint64_t query_id = 0;            ///< Id the query executed under.
  /// EXPLAIN of the executed operator tree (QueryOptions::explain).
  std::string explain_text;
  /// Complete unless sources were lost (partial) or their outages were
  /// masked with cached answers (degraded); lost_sources names them.
  QueryCompleteness completeness = QueryCompleteness::kComplete;
  std::vector<SourceError> lost_sources;
  /// The query reused a cached plan skeleton (EnablePlanCache); the
  /// optimizer did not run and `candidates` is empty.
  bool plan_cache_hit = false;
  /// Mid-query re-optimizations this query performed (set_replan_options);
  /// each records the trigger and the before/after suffix.
  std::vector<engine::op::ReplanEvent> replan_events;
  /// The paper's response-time measures on the simulated clock, mirrored
  /// from `execution` for convenience (and observed into the
  /// hermes_query_{tf,ta}_sim_ms histograms): time to the first answer and
  /// time to evaluation completion.
  double tf_sim_ms = 0.0;
  double ta_sim_ms = 0.0;
  /// Brownout-ladder level the query executed under (0 = normal; see
  /// overload::BrownoutController). Non-zero means the mediator degraded
  /// this query's service: hedging off, and at level >= 2 stale-cache
  /// serves preferred plus (low priority) scatter-gather forced sequential.
  int brownout_level = 0;
};

/// Top-level facade of the mediator system — the public API a downstream
/// user programs against. Owns the domain registry, the network simulator,
/// the DCSM, per-domain CIM state, the optimizer and the executor.
///
/// Domains are registered as declarative interceptor stacks (PipelineDomain):
/// RegisterRemoteDomain installs [resilience → network → domain],
/// EnableCaching installs [cache → resilience → network → domain] under
/// "cim_<name>". At query time the executor
/// prepends its trace and stats layers and threads a per-query CallContext
/// through the whole stack, which is where QueryResult::traffic/metrics
/// come from.
///
/// Concurrency model (see DESIGN.md): `Query`/`Plan` are safe to call from
/// many threads at once — every query runs on a private CallContext, and
/// the shared hot structures (result cache, DCSM, network statistics) are
/// internally synchronized. Wiring methods (Register*, EnableCaching,
/// AddInvariants, UseNativeCostModel, LoadProgram*, ClearProgram) are
/// writers on the same lock and additionally REJECTED with
/// FailedPrecondition while a QueryPool from `Serve` is live: wire first,
/// serve after. The wiring-phase mutators and accessors themselves are not
/// mutually thread-safe; configure from one thread.
///
/// Typical use:
///   Mediator med;
///   med.RegisterRemoteDomain("video", avis, net::ItalySite());
///   med.EnableCaching("video");
///   med.AddInvariants("F2 <= F1 & L1 <= L2 => "
///       "video:frames_to_objects(V,F2,L2) >= video:frames_to_objects(V,F1,L1).");
///   med.LoadProgram("actors(A) :- in(A, video:frames_to_objects('rope', 1, 9000)).");
///   auto res = med.Query("?- actors(A).", {});
class Mediator {
 public:
  Mediator();
  explicit Mediator(uint64_t network_seed);

  Mediator(const Mediator&) = delete;
  Mediator& operator=(const Mediator&) = delete;

  // ---- Domain wiring -------------------------------------------------------

  /// Registers a local (same-machine) domain under `name`.
  Status RegisterDomain(const std::string& name,
                        std::shared_ptr<Domain> domain);

  /// Registers `inner` under `name`, behind a simulated link to `site`.
  Status RegisterRemoteDomain(const std::string& name,
                              std::shared_ptr<Domain> inner,
                              net::SiteParams site);

  /// Wraps the domain registered as `name` with a CIM (cache + invariant
  /// manager), registered as "cim_<name>". Idempotent per name.
  /// `cache_shards` > 0 forces that many lock stripes in the result cache
  /// (0 = automatic: striped when unbounded, single-shard when bounded).
  Status EnableCaching(const std::string& name, cim::CimOptions options = {},
                       cim::CimCostParams params = {},
                       size_t cache_max_entries = 0,
                       size_t cache_max_bytes = 0, size_t cache_shards = 0);

  /// Parses invariants and installs each into the CIM of its lhs domain
  /// (EnableCaching must have been called for that domain).
  Status AddInvariants(const std::string& text);

  /// Registers the domain's native cost model with the DCSM (the domain
  /// must return true from HasCostModel()).
  Status UseNativeCostModel(const std::string& name);

  // ---- Resilience & fault injection ---------------------------------------

  /// Policy applied to the resilience layer of every *subsequently*
  /// registered remote domain (RegisterRemoteDomain always installs one;
  /// the default policy is exact pass-through). Wiring time.
  void set_default_resilience_policy(
      const resilience::ResiliencePolicy& policy) {
    default_resilience_policy_ = policy;
  }
  const resilience::ResiliencePolicy& default_resilience_policy() const {
    return default_resilience_policy_;
  }

  /// Replaces the resilience policy of the already-registered remote
  /// domain `name`. The layer is shared with the "cim_<name>" wrapper
  /// (EnableCaching copies layer pointers), so both paths see the policy.
  Status SetResiliencePolicy(const std::string& name,
                             const resilience::ResiliencePolicy& policy);

  /// The resilience layer of the domain registered under `name`, or
  /// nullptr when the domain is local.
  resilience::ResilienceInterceptor* resilience_layer(const std::string& name);

  /// Failover rung of the degradation ladder: calls that give up on `name`
  /// (retries exhausted, breaker open) are rerouted to `alternate`, which
  /// must export every function `name` does. `alternate` must not fail
  /// over back to `name` (the ladder does not detect cycles).
  Status AddFailover(const std::string& name, const std::string& alternate);

  // ---- Overload control -------------------------------------------------------

  /// Arms the overload-control subsystem (see DESIGN.md "Overload control
  /// & brownout"): applies `policy` to the overload layer of every
  /// registered (and future) remote domain — per-site AIMD concurrency
  /// limits fed by the DCSM baseline, plus hedged requests where a
  /// failover replica is wired — and installs the brownout ladder that
  /// degrades service in steps under sustained shed pressure. Wiring time;
  /// last call wins. The default-constructed policy disarms everything.
  Status EnableOverloadControl(
      const overload::OverloadPolicy& policy,
      const overload::BrownoutController::Options& brownout = {});

  /// The overload layer of the remote domain `name`, or nullptr when local.
  overload::OverloadInterceptor* overload_layer(const std::string& name);

  /// Null until EnableOverloadControl.
  overload::BrownoutController* brownout() { return brownout_.get(); }

  /// Installs a deterministic fault-injection plan (outage windows,
  /// flakiness, latency spikes, slow responses — see net/faults/) on every
  /// registered and future remote link. An empty plan clears injection.
  Status SetFaultPlan(net::FaultPlan plan);
  /// Parses the --faults= text format (net::FaultPlan::Parse grammar).
  Status LoadFaultPlan(const std::string& path);
  const std::shared_ptr<const net::FaultInjector>& fault_injector() const {
    return fault_injector_;
  }

  // ---- Diagnostics ------------------------------------------------------------

  /// Turns on the query-level diagnostics layer (see DESIGN.md
  /// "Diagnostics & drift"): the per-thread flight recorder, the DCSM
  /// drift tracker, and the anomaly-capture policy that persists debug
  /// bundles for slow/degraded/partial/breaker-tripped queries. Wiring
  /// time; idempotent only in the sense that the last call wins.
  Status EnableDiagnostics(const DiagnosticsOptions& options = {});

  /// On-demand diagnostics snapshot: writes the resident flight-recorder
  /// events, the Prometheus exposition, the drift report and the
  /// slow-query log under `dir`. FailedPrecondition unless
  /// EnableDiagnostics was called.
  Status DumpDiagnostics(const std::string& dir);

  /// Per-(site, domain, adornment) EWMA drift of observed vs DCSM-estimated
  /// Tf/Ta/cardinality. Empty report when diagnostics are off.
  dcsm::DriftReport DriftReport() const;

  /// Null until EnableDiagnostics.
  obs::FlightRecorder* flight_recorder() { return recorder_.get(); }
  dcsm::DriftTracker* drift_tracker() { return drift_.get(); }
  DiagnosticsCenter* diagnostics() { return diag_.get(); }

  // ---- Adaptive execution -----------------------------------------------------

  /// Turns on the adornment-keyed plan cache: queries that differ only in
  /// constant values share one compiled skeleton, and repeat shapes skip
  /// the optimizer and compiler entirely (see DESIGN.md "Adaptive
  /// execution"). Wiring time; call after set_async_execution — the cache
  /// compiles instances under the wiring-time execution flags, and a query
  /// whose per-query flags differ bypasses it. Entries are invalidated on
  /// DCSM drift exceedances (when diagnostics are enabled), on
  /// breaker-open sites, and on any program/wiring mutation. Last call
  /// wins.
  Status EnablePlanCache(optimizer::PlanCacheOptions options = {});

  /// Null until EnablePlanCache.
  optimizer::PlanCache* plan_cache() { return plan_cache_.get(); }

  /// Default mid-query re-optimization knobs applied to every query: when
  /// `options.enabled`, each query's spine joins re-plan the unexecuted
  /// suffix on breaker-open / estimate-divergence triggers. Decisions
  /// derive only from per-query deterministic state, so replayed runs stay
  /// bit-identical under any QueryPool thread count. Wiring time.
  void set_replan_options(const engine::op::ReplanOptions& options) {
    replan_options_ = options;
  }
  const engine::op::ReplanOptions& replan_options() const {
    return replan_options_;
  }

  // ---- Program management -----------------------------------------------------

  /// Parses `text` and appends its rules to the mediator program.
  Status LoadProgram(const std::string& text);
  /// Reads a rule file and appends its rules.
  Status LoadProgramFile(const std::string& path);
  Status ClearProgram();
  const lang::Program& program() const { return program_; }

  // ---- Querying ---------------------------------------------------------------

  Result<QueryResult> Query(const std::string& query_text,
                            const QueryOptions& options = {});

  /// Optimizes without executing (returns the ranked candidates).
  Result<optimizer::OptimizerResult> Plan(const std::string& query_text,
                                          const QueryOptions& options = {});

  /// EXPLAIN without execution: picks the plan exactly as Query() would
  /// (optimizer/CIM redirection per `options`), compiles it to the
  /// physical operator tree and renders it — operator structure, static
  /// bound/free adornments and per-call DCSM estimates. Read-only: no
  /// domain call is issued and no statistics are recorded.
  Result<std::string> Explain(const std::string& query_text,
                              const QueryOptions& options = {});

  // ---- Concurrent serving -----------------------------------------------------

  /// Starts a worker pool serving this mediator: N clients submit query
  /// text and receive futures of QueryResult. While any pool is live the
  /// mediator's wiring is frozen (see class comment). The pool must not
  /// outlive the mediator.
  std::unique_ptr<QueryPool> Serve(QueryPoolOptions options = {});

  /// Reserves the next query id (used by QueryPool at submission time).
  uint64_t ReserveQueryId() {
    return next_query_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Per-query deterministic network randomness: each query draws its
  /// simulated jitter/availability from a stream seeded by (network seed,
  /// query id) instead of the simulator's shared sequential stream, making
  /// simulated latencies independent of thread interleaving. Off by
  /// default — the shared stream reproduces the historical experiment
  /// tables byte-for-byte. Set at wiring time.
  void set_per_query_network_rng(bool on) { per_query_net_rng_ = on; }
  bool per_query_network_rng() const { return per_query_net_rng_; }

  /// Default for QueryOptions::async_scatter_gather: when on, every query
  /// compiles independent domain-call runs into concurrent scatter-gather
  /// groups (simulated cost = max over branches). Set at wiring time.
  void set_async_execution(bool on) { async_execution_ = on; }
  bool async_execution() const { return async_execution_; }

  /// Cross-query single-flight call coalescing: while enabled, concurrent
  /// queries missing on the identical remote call (same site, domain,
  /// function and grounded arguments) share one in-flight execution —
  /// followers wait on the leader's result instead of shipping their own
  /// request (see SingleFlightRegistry). Off by default. Set at wiring
  /// time; the registry is shared by every remote link (and, because
  /// EnableCaching copies layer pointers, by the cim_* paths).
  void set_single_flight(const SingleFlightOptions& options) {
    single_flight_->set_options(options);
  }
  const SingleFlightRegistry& single_flight() const { return *single_flight_; }

  /// Wall-clock pacing: after computing a query, sleep `scale` real
  /// milliseconds per simulated millisecond of the query's latency —
  /// turning the simulated service time into actual wait, so a worker
  /// pool's threads overlap waits exactly as a real mediator's would while
  /// blocked on remote sources. 0 (default) never sleeps. Set at wiring
  /// time; used by the concurrent-throughput benchmarks.
  void set_service_pacing(double scale) { pacing_scale_ = scale; }
  double service_pacing() const { return pacing_scale_; }

  /// QueryPool lifecycle hooks (public for QueryPool; not a user API).
  void BeginServing() { serving_.fetch_add(1, std::memory_order_acq_rel); }
  void EndServing() { serving_.fetch_sub(1, std::memory_order_acq_rel); }
  bool serving() const {
    return serving_.load(std::memory_order_acquire) > 0;
  }

  // ---- Introspection ------------------------------------------------------------

  dcsm::Dcsm& dcsm() { return dcsm_; }
  /// This mediator's metrics registry: every layer's instruments are
  /// registered here at wiring time; expose with metrics().Expose(...).
  obs::MetricsRegistry& metrics() { return *metrics_; }
  std::shared_ptr<obs::MetricsRegistry> metrics_ptr() { return metrics_; }
  net::NetworkSimulator& network() { return *network_; }
  std::shared_ptr<net::NetworkSimulator> network_ptr() { return network_; }
  DomainRegistry& registry() { return registry_; }
  /// The CIM wrapper of `name`, or nullptr when caching is not enabled.
  cim::CimDomain* cim(const std::string& name);
  /// The network layer of the domain registered under `name` (the original
  /// registration name, e.g. "video"), or nullptr when the domain is local.
  /// Failure-injection scenarios use it to take a site down mid-run.
  net::NetworkInterceptor* remote_link(const std::string& name);
  /// Names of domains with CIM wrappers.
  std::vector<std::string> CachedDomains() const;

  optimizer::RuleRewriter::Options& rewriter_options() {
    return rewriter_options_;
  }
  optimizer::EstimatorParams& estimator_params() { return estimator_params_; }
  engine::ExecutorOptions& executor_options() { return executor_options_; }

 private:
  /// FailedPrecondition while a QueryPool is live; called with wiring_mu_
  /// held exclusively, so acceptance means no query is in flight either.
  Status CheckNotServing(const char* operation) const;

  optimizer::RuleRewriter::Options EffectiveRewriterOptions(
      const QueryOptions& options) const;

  /// Picks the plan Query() executes for `query` under `options`: the
  /// optimizer's best plan, or the as-written program+query (CIM-redirected
  /// when enabled). When `result` is non-null its optimizer diagnostics
  /// (plan_description, predicted, candidates, optimize_ms) are filled; when
  /// `tracer` is non-null an "optimize" span is recorded. Called with
  /// wiring_mu_ held (at least shared).
  Result<optimizer::CandidatePlan> PickPlan(const lang::Query& query,
                                            const QueryOptions& options,
                                            obs::Tracer* tracer,
                                            QueryResult* result);

  /// Hooks the drift tracker's exceedance callback to plan-cache
  /// invalidation. Called whenever either side is (re)wired.
  void WireDriftInvalidation();

  /// Plan-cache key tag for the query-shaping options (optimizer, CIM
  /// redirection, goal): two queries whose tags differ never share a plan.
  static std::string PlanCacheOptionsTag(const QueryOptions& options);

  /// Site serving `domain` ("cim_x" resolves as "x"); "" for local/unknown.
  std::string SiteOf(const std::string& domain) const;

  /// The (site, domain) pairs `plan` depends on, for cache invalidation.
  std::vector<optimizer::PlanCacheDep> CollectPlanDeps(
      const optimizer::CandidatePlan& plan) const;

  /// Per-query CallMetrics folded into process-level registry counters.
  /// Generated from the CallMetrics field-list macros, so a field added
  /// there is folded here automatically (and a field missing from the
  /// macros fails pipeline.cc's mirror static_assert).
  struct MetricsFold {
#define HERMES_FIELD(f) \
  std::shared_ptr<obs::Counter> f = std::make_shared<obs::Counter>();
    HERMES_CALL_METRICS_UINT64_FIELDS(HERMES_FIELD)
#undef HERMES_FIELD
#define HERMES_FIELD(f) \
  std::shared_ptr<obs::FloatCounter> f = std::make_shared<obs::FloatCounter>();
    HERMES_CALL_METRICS_DOUBLE_FIELDS(HERMES_FIELD)
#undef HERMES_FIELD
  };

  /// Wiring lock: queries hold it shared for their whole run, wiring
  /// mutations hold it exclusively — so a (rejected-path) mutation can
  /// never interleave with in-flight queries.
  mutable std::shared_mutex wiring_mu_;
  std::atomic<int> serving_{0};  ///< Live QueryPool count.

  DomainRegistry registry_;
  std::shared_ptr<net::NetworkSimulator> network_;
  dcsm::Dcsm dcsm_;
  lang::Program program_;
  std::atomic<uint64_t> next_query_id_{0};
  bool per_query_net_rng_ = false;
  bool async_execution_ = false;
  double pacing_scale_ = 0.0;
  std::shared_ptr<SingleFlightRegistry> single_flight_ =
      std::make_shared<SingleFlightRegistry>();
  std::map<std::string, std::shared_ptr<cim::CimDomain>> cims_;
  resilience::ResiliencePolicy default_resilience_policy_;
  std::shared_ptr<const net::FaultInjector> fault_injector_;
  /// Remote links and resilience layers by registration name, for policy
  /// updates and fault-plan fan-out (the registry only exposes Domains).
  std::map<std::string, std::shared_ptr<net::NetworkInterceptor>> links_;
  std::map<std::string, std::shared_ptr<resilience::ResilienceInterceptor>>
      resilience_layers_;
  std::map<std::string, std::shared_ptr<overload::OverloadInterceptor>>
      overload_layers_;
  overload::OverloadPolicy default_overload_policy_;
  std::shared_ptr<overload::BrownoutController> brownout_;
  optimizer::RuleRewriter::Options rewriter_options_;
  optimizer::EstimatorParams estimator_params_;
  engine::ExecutorOptions executor_options_;

  // Adaptive execution (EnablePlanCache / set_replan_options). The cache
  // remembers the async flag its instances were compiled under; queries
  // whose effective flag differs bypass it.
  std::unique_ptr<optimizer::PlanCache> plan_cache_;
  bool plan_cache_async_ = false;
  engine::op::ReplanOptions replan_options_;

  // Diagnostics (EnableDiagnostics). diag_ borrows recorder_ and drift_,
  // so it is declared after them: members destroy in reverse declaration
  // order, tearing the borrower down before what it borrows.
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::unique_ptr<dcsm::DriftTracker> drift_;
  std::unique_ptr<DiagnosticsCenter> diag_;

  // Observability: the per-mediator registry plus the query-level
  // instruments the Query() path maintains itself (layer-owned instruments
  // register here via the components' BindMetrics at wiring time).
  std::shared_ptr<obs::MetricsRegistry> metrics_ =
      std::make_shared<obs::MetricsRegistry>();
  MetricsFold fold_;
  std::shared_ptr<obs::Counter> queries_total_ =
      std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> query_failures_total_ =
      std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Histogram> query_sim_ms_ =
      std::make_shared<obs::Histogram>(
          obs::Histogram::ExponentialBounds(1.0, 2.0, 20));
  std::shared_ptr<obs::Histogram> query_tf_sim_ms_ =
      std::make_shared<obs::Histogram>(
          obs::Histogram::ExponentialBounds(1.0, 2.0, 20));
  std::shared_ptr<obs::Histogram> query_ta_sim_ms_ =
      std::make_shared<obs::Histogram>(
          obs::Histogram::ExponentialBounds(1.0, 2.0, 20));
  std::shared_ptr<obs::Histogram> estimate_rel_error_ =
      std::make_shared<obs::Histogram>(
          obs::Histogram::ExponentialBounds(0.01, 2.0, 12));
  std::shared_ptr<obs::Counter> replan_triggers_total_ =
      std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> replan_splices_total_ =
      std::make_shared<obs::Counter>();
};

}  // namespace hermes

#endif  // HERMES_ENGINE_MEDIATOR_H_
