#include "engine/executor.h"

#include <cmath>
#include <utility>

#include "engine/op/sink_ops.h"
#include "obs/flight_recorder.h"

namespace hermes::engine {

Executor::Executor(const DomainRegistry* registry, dcsm::Dcsm* dcsm,
                   ExecutorOptions options)
    : registry_(registry),
      options_(options),
      stats_layer_(dcsm == nullptr
                       ? nullptr
                       : std::make_shared<dcsm::StatsInterceptor>(dcsm)) {}

std::string QueryExecution::ToString() const {
  std::string out = std::to_string(answers.size()) + " answer(s), Tf=" +
                    std::to_string(t_first_ms) + "ms, Ta=" +
                    std::to_string(t_all_ms) + "ms, " +
                    std::to_string(domain_calls) + " domain call(s)";
  if (!complete) out += " (partial)";
  return out;
}

Result<QueryExecution> Executor::Execute(const lang::Program& program,
                                         const lang::Query& query) {
  CallContext ctx;
  return Execute(program, query, &ctx);
}

Result<QueryExecution> Executor::Execute(const lang::Program& program,
                                         const lang::Query& query,
                                         CallContext* ctx) {
  op::CompiledQuery compiled = op::Compile(program, query);
  return ExecuteCompiled(program, compiled, ctx);
}

Result<QueryExecution> Executor::ExecuteCompiled(const lang::Program& program,
                                                 op::CompiledQuery& compiled,
                                                 CallContext* ctx,
                                                 op::ReplanManager* replan) {
  QueryExecution exec;
  exec.var_names = compiled.var_names;

  // Executor-level layers of the call pipeline; the registry continues
  // into the target domain's own stack (cache, network).
  std::vector<std::shared_ptr<CallInterceptor>> layers;
  if (options_.collect_trace) layers.push_back(std::make_shared<TraceInterceptor>());
  if (stats_layer_ != nullptr && options_.record_statistics) {
    layers.push_back(stats_layer_);
  }
  CallPipeline pipeline(
      std::move(layers),
      [this](CallContext& c, const DomainCall& call) {
        return registry_->Run(c, call);
      });

  // The budget covers this execution on top of whatever the caller's
  // context already consumed; the trace sink is restored on every exit.
  const uint64_t calls_before = ctx->metrics.domain_calls;
  ctx->call_budget = calls_before + options_.max_domain_calls;
  struct TraceSinkGuard {
    CallContext* ctx;
    std::vector<CallTrace>* previous;
    ~TraceSinkGuard() { ctx->trace = previous; }
  } trace_guard{ctx, ctx->trace};
  if (options_.collect_trace) ctx->trace = &exec.trace;

  // Buffer DCSM samples in the (query-private) context and merge them in
  // one batch when evaluation ends — the shared statistics lock is taken
  // once per query instead of once per domain call. The guard flushes on
  // error exits too, so failed queries still contribute the statistics of
  // the calls they did execute (matching the old per-call behaviour).
  struct StatsFlushGuard {
    dcsm::StatsInterceptor* layer;
    CallContext* ctx;
    bool previous;
    ~StatsFlushGuard() {
      if (layer != nullptr) layer->Flush(*ctx);
      ctx->buffer_stats = previous;
    }
  } stats_guard{stats_layer_.get(), ctx, ctx->buffer_stats};
  if (stats_layer_ != nullptr) ctx->buffer_stats = true;

  op::ExecParams params;
  params.mode = options_.mode;
  params.interactive_batch = options_.interactive_batch;
  params.comparison_cost_ms = options_.comparison_cost_ms;
  params.unification_cost_ms = options_.unification_cost_ms;
  params.max_recursion_depth = options_.max_recursion_depth;
  params.record_predicate_statistics = options_.record_predicate_statistics;
  params.trace_operators = options_.trace_operators;
  params.tolerate_source_failures = options_.tolerate_source_failures;

  // Per-query data-plane storage: the binding scope and the bump arena all
  // row payloads are carved from. Both die with this call — answers are
  // materialized to heap Values (TakeAnswers) before that.
  Bindings bindings;
  Arena arena;
  op::ExecContext cx;
  cx.program = &program;
  cx.ctx = ctx;
  cx.pipeline = &pipeline;
  cx.stats = stats_layer_.get();
  cx.params = &params;
  cx.bindings = &bindings;
  cx.op_metrics = options_.op_metrics.get();
  cx.arena = &arena;
  cx.schema = &compiled.schema;
  cx.replan = replan;
  auto publish_arena_usage = [&] {
    exec.arena_bytes = arena.bytes_used();
    if (options_.op_metrics != nullptr &&
        options_.op_metrics->arena_bytes != nullptr) {
      options_.op_metrics->arena_bytes->Set(
          static_cast<double>(arena.bytes_used()));
    }
    if (ctx->recorder != nullptr) {
      obs::FlightEvent ev = obs::FlightEvent::Make(
          obs::FlightEventKind::kArenaHighWater, ctx->query_id,
          ctx->recorder_seq++, ctx->now_ms);
      ev.value = static_cast<double>(arena.bytes_used());
      ctx->recorder->Emit(ev);
    }
  };

  // Pull the tree dry on the virtual clock. Any error closes the tree
  // first so operator spans and state unwind cleanly.
  double t_done = 0.0;
  Status status = compiled.root->Open(cx, 0.0);
  if (status.ok()) {
    double cursor = 0.0;
    while (true) {
      Result<bool> more = compiled.root->Next(cx, cursor, &t_done);
      if (!more.ok()) {
        status = more.status();
        break;
      }
      if (!*more) break;
      cursor = t_done;
    }
  }
  compiled.root->Close(cx);
  if (!status.ok()) {
    if (!options_.tolerate_source_failures || !status.IsDeadlineExceeded()) {
      return status;
    }
    // The query deadline cut evaluation short: hand back whatever the sink
    // collected, marked partial, with the clock pinned at the deadline.
    exec.answers = compiled.sink->TakeAnswers();
    exec.t_all_ms =
        std::isfinite(ctx->deadline_ms) ? ctx->deadline_ms : t_done;
    exec.t_first_ms = compiled.sink->has_first() ? compiled.sink->t_first()
                                                 : exec.t_all_ms;
    exec.complete = false;
    exec.domain_calls = ctx->metrics.domain_calls - calls_before;
    publish_arena_usage();
    return exec;
  }

  exec.answers = compiled.sink->TakeAnswers();
  exec.t_all_ms = t_done;
  exec.t_first_ms = compiled.sink->has_first() ? compiled.sink->t_first()
                                               : t_done;
  exec.complete = compiled.sink->complete() && !cx.source_incomplete;
  exec.domain_calls = ctx->metrics.domain_calls - calls_before;
  publish_arena_usage();
  return exec;
}

}  // namespace hermes::engine
