#include "engine/executor.h"

#include <algorithm>

#include "obs/trace.h"

namespace hermes::engine {

Executor::Executor(const DomainRegistry* registry, dcsm::Dcsm* dcsm,
                   ExecutorOptions options)
    : registry_(registry),
      options_(options),
      stats_layer_(dcsm == nullptr
                       ? nullptr
                       : std::make_shared<dcsm::StatsInterceptor>(dcsm)) {}

std::string QueryExecution::ToString() const {
  std::string out = std::to_string(answers.size()) + " answer(s), Tf=" +
                    std::to_string(t_first_ms) + "ms, Ta=" +
                    std::to_string(t_all_ms) + "ms, " +
                    std::to_string(domain_calls) + " domain call(s)";
  if (!complete) out += " (partial)";
  return out;
}

std::vector<std::string> QueryVariables(const lang::Query& query) {
  std::vector<std::string> out;
  auto add = [&out](const lang::Term& t) {
    if (!t.is_variable()) return;
    for (const std::string& existing : out) {
      if (existing == t.var_name) return;
    }
    out.push_back(t.var_name);
  };
  for (const lang::Atom& goal : query.goals) {
    switch (goal.kind) {
      case lang::Atom::Kind::kPredicate:
        for (const lang::Term& t : goal.args) add(t);
        break;
      case lang::Atom::Kind::kDomainCall:
        add(goal.output);
        for (const lang::Term& t : goal.call.args) add(t);
        break;
      case lang::Atom::Kind::kComparison:
        add(goal.lhs);
        add(goal.rhs);
        break;
    }
  }
  return out;
}

Result<double> Executor::EvalGoals(const std::vector<lang::Atom>& goals,
                                   size_t index, Bindings* bindings,
                                   double t_now, size_t depth,
                                   EvalState* state, const EmitFn& emit) {
  if (state->stop) return t_now;
  if (index == goals.size()) return emit(*bindings, t_now);

  const lang::Atom& goal = goals[index];
  switch (goal.kind) {
    case lang::Atom::Kind::kDomainCall: {
      // Ground the call.
      DomainCall call;
      call.domain = goal.call.domain;
      call.function = goal.call.function;
      call.args.reserve(goal.call.args.size());
      for (const lang::Term& arg : goal.call.args) {
        HERMES_ASSIGN_OR_RETURN(Value v, ResolveTerm(arg, *bindings));
        call.args.push_back(std::move(v));
      }
      // Dispatch through the call pipeline: the trace and stats layers
      // observe the call, then the registry routes it through the target
      // domain's own interceptor stack (cache, network).
      HERMES_RETURN_IF_ERROR(state->ctx->ChargeCall());
      state->ctx->now_ms = t_now;
      // The call span is closed before recursing into later goals, so
      // sibling goals do not nest under it (only the layers the pipeline
      // itself traverses — cache lookup, network hop — become children).
      obs::Tracer* tracer = state->ctx->tracer;
      uint64_t span_id = 0;
      if (tracer != nullptr) {
        span_id = tracer->BeginSpan("call:" + call.domain + ":" + call.function,
                                    "domain-call", t_now);
      }
      Result<CallOutput> run = state->pipeline->Run(*state->ctx, call);
      if (tracer != nullptr) {
        if (run.ok()) {
          tracer->AddArg(span_id, "answers",
                         std::to_string(run->answers.size()));
          tracer->EndSpan(span_id, t_now + run->all_ms);
        } else {
          tracer->MarkFailed(span_id, run.status().ToString());
          tracer->EndSpan(span_id, t_now);  // clamps up to child penalties
        }
      }
      if (!run.ok()) return run.status();
      CallOutput output = std::move(run).value();

      if (TermIsResolvable(goal.output, *bindings)) {
        // Membership check: in(X, d:f(...)) with X already ground.
        HERMES_ASSIGN_OR_RETURN(Value expected,
                                ResolveTerm(goal.output, *bindings));
        for (size_t i = 0; i < output.answers.size(); ++i) {
          if (output.answers[i] == expected) {
            double t_arrive = t_now + ArrivalOffsetMs(output, i);
            HERMES_ASSIGN_OR_RETURN(
                double t_done,
                EvalGoals(goals, index + 1, bindings, t_arrive, depth, state,
                          emit));
            if (state->stop) return t_done;
            return std::max(t_done, t_now + output.all_ms);
          }
        }
        // No match: the full set had to arrive to know.
        return t_now + output.all_ms;
      }

      // Enumeration: bind the output variable to each answer in turn.
      double t_cursor = t_now;
      for (size_t i = 0; i < output.answers.size(); ++i) {
        double t_arrive = t_now + ArrivalOffsetMs(output, i);
        double t_start = std::max(t_arrive, t_cursor);
        BindingFrame frame(bindings);
        if (!frame.Bind(goal.output.var_name, output.answers[i])) {
          continue;  // repeated variable with a different value
        }
        HERMES_ASSIGN_OR_RETURN(
            double t_done,
            EvalGoals(goals, index + 1, bindings, t_start, depth, state,
                      emit));
        t_cursor = t_done;
        if (state->stop) return t_cursor;
      }
      return std::max(t_cursor, t_now + output.all_ms);
    }

    case lang::Atom::Kind::kComparison: {
      double t_next = t_now + options_.comparison_cost_ms;
      bool lhs_ok = TermIsResolvable(goal.lhs, *bindings);
      bool rhs_ok = TermIsResolvable(goal.rhs, *bindings);
      if (lhs_ok && rhs_ok) {
        HERMES_ASSIGN_OR_RETURN(Value lhs, ResolveTerm(goal.lhs, *bindings));
        HERMES_ASSIGN_OR_RETURN(Value rhs, ResolveTerm(goal.rhs, *bindings));
        if (!lang::EvalRelOp(goal.op, lhs, rhs)) return t_next;
        return EvalGoals(goals, index + 1, bindings, t_next, depth, state,
                         emit);
      }
      if (goal.op == lang::RelOp::kEq && (lhs_ok || rhs_ok)) {
        const lang::Term& known = lhs_ok ? goal.lhs : goal.rhs;
        const lang::Term& free = lhs_ok ? goal.rhs : goal.lhs;
        if (!free.is_variable() || !free.path.empty()) {
          return Status::InvalidArgument("cannot bind through '" +
                                         free.ToString() + "' in " +
                                         goal.ToString());
        }
        HERMES_ASSIGN_OR_RETURN(Value v, ResolveTerm(known, *bindings));
        BindingFrame frame(bindings);
        frame.Bind(free.var_name, v);
        return EvalGoals(goals, index + 1, bindings, t_next, depth, state,
                         emit);
      }
      return Status::InvalidArgument(
          "comparison over unbound variables at execution time: " +
          goal.ToString());
    }

    case lang::Atom::Kind::kPredicate:
      return EvalPredicate(goal, goals, index, bindings, t_now, depth, state,
                           emit);
  }
  return Status::Internal("unreachable atom kind");
}

Result<double> Executor::EvalPredicate(const lang::Atom& atom,
                                       const std::vector<lang::Atom>& goals,
                                       size_t index, Bindings* bindings,
                                       double t_now, size_t depth,
                                       EvalState* state, const EmitFn& emit) {
  if (depth >= options_.max_recursion_depth) {
    return Status::Unimplemented(
        "recursion depth limit reached evaluating '" + atom.predicate +
        "' (recursive mediators are outside this engine's scope)");
  }

  double t_cursor = t_now;
  bool any_rule = false;

  // Downstream goals evaluated from a rule body's solutions (the emit
  // continuation) intentionally nest under this span: the envelope is the
  // paper's per-predicate Tf/Ta measurement window.
  obs::SpanScope rule_span(state->ctx->tracer, "rule:" + atom.predicate,
                           "rule", t_now);

  // Per-invocation statistics (the predicate-Tf caching extension).
  double first_solution_t = -1.0;
  size_t solutions = 0;

  for (const lang::Rule& rule : state->program->rules) {
    if (rule.head.predicate != atom.predicate ||
        rule.head.args.size() != atom.args.size()) {
      continue;
    }
    any_rule = true;

    // Unify the head with the caller's arguments.
    Bindings local;
    BindingFrame local_frame(&local);
    bool applicable = true;
    struct BackBinding {
      std::string caller_var;       // free caller variable to bind
      const lang::Term* head_term;  // resolved against the rule's bindings
    };
    std::vector<BackBinding> back;

    for (size_t i = 0; i < atom.args.size() && applicable; ++i) {
      const lang::Term& caller_term = atom.args[i];
      const lang::Term& head_term = rule.head.args[i];
      if (TermIsResolvable(caller_term, *bindings)) {
        HERMES_ASSIGN_OR_RETURN(Value v, ResolveTerm(caller_term, *bindings));
        if (head_term.is_constant()) {
          if (head_term.constant != v) applicable = false;
        } else if (head_term.is_variable()) {
          if (!head_term.path.empty()) {
            return Status::InvalidArgument(
                "attribute path in rule head: " + head_term.ToString());
          }
          if (!local_frame.Bind(head_term.var_name, v)) applicable = false;
        } else {
          return Status::InvalidArgument("'$b' in rule head");
        }
      } else {
        if (!caller_term.is_variable() || !caller_term.path.empty()) {
          return Status::InvalidArgument(
              "cannot pass unresolvable term '" + caller_term.ToString() +
              "' to predicate '" + atom.predicate + "'");
        }
        back.push_back({caller_term.var_name, &head_term});
      }
    }
    if (!applicable) continue;

    // One body solution → bind outputs back → continue the outer goals.
    EmitFn rule_emit = [&](const Bindings& local_bindings,
                           double t) -> Result<double> {
      BindingFrame caller_frame(bindings);
      for (const BackBinding& bb : back) {
        Value v;
        if (bb.head_term->is_constant()) {
          v = bb.head_term->constant;
        } else {
          Result<Value> resolved = ResolveTerm(*bb.head_term, local_bindings);
          if (!resolved.ok()) {
            return Status::InvalidArgument(
                "head variable '" + bb.head_term->ToString() +
                "' of '" + atom.predicate +
                "' is unbound after evaluating the rule body");
          }
          v = std::move(resolved).value();
        }
        if (!caller_frame.Bind(bb.caller_var, v)) {
          // Same caller variable bound to conflicting outputs: no solution.
          return t;
        }
      }
      if (first_solution_t < 0) first_solution_t = t;
      ++solutions;
      return EvalGoals(goals, index + 1, bindings,
                       t + options_.unification_cost_ms, depth, state, emit);
    };

    HERMES_ASSIGN_OR_RETURN(
        double t_done,
        EvalGoals(rule.body, 0, &local, t_cursor, depth + 1, state,
                  rule_emit));
    t_cursor = t_done;
    rule_span.set_sim_end(t_cursor);
    if (state->stop) return t_cursor;
  }

  if (!any_rule) {
    return Status::NotFound("no rule defines predicate '" + atom.predicate +
                            "/" + std::to_string(atom.args.size()) + "'");
  }

  if (stats_layer_ != nullptr && options_.record_predicate_statistics &&
      !state->stop) {
    // Report the measured invocation to the stats layer under the pseudo
    // domain "idb"; unresolvable (output) arguments become null wildcards.
    DomainCall invocation;
    invocation.domain = "idb";
    invocation.function = atom.predicate;
    invocation.args.reserve(atom.args.size());
    for (const lang::Term& arg : atom.args) {
      Result<Value> v = TermIsResolvable(arg, *bindings)
                            ? ResolveTerm(arg, *bindings)
                            : Result<Value>(Value::Null());
      invocation.args.push_back(v.ok() ? *v : Value::Null());
    }
    stats_layer_->RecordSample(
        *state->ctx, invocation,
        CostVector((first_solution_t < 0 ? t_cursor : first_solution_t) -
                       t_now,
                   t_cursor - t_now, static_cast<double>(solutions)),
        /*complete=*/true);
  }
  return t_cursor;
}

Result<QueryExecution> Executor::Execute(const lang::Program& program,
                                         const lang::Query& query) {
  CallContext ctx;
  return Execute(program, query, &ctx);
}

Result<QueryExecution> Executor::Execute(const lang::Program& program,
                                         const lang::Query& query,
                                         CallContext* ctx) {
  QueryExecution exec;
  exec.var_names = QueryVariables(query);

  // Executor-level layers of the call pipeline; the registry continues
  // into the target domain's own stack (cache, network).
  std::vector<std::shared_ptr<CallInterceptor>> layers;
  if (options_.collect_trace) layers.push_back(std::make_shared<TraceInterceptor>());
  if (stats_layer_ != nullptr && options_.record_statistics) {
    layers.push_back(stats_layer_);
  }
  CallPipeline pipeline(
      std::move(layers),
      [this](CallContext& c, const DomainCall& call) {
        return registry_->Run(c, call);
      });

  // The budget covers this execution on top of whatever the caller's
  // context already consumed; the trace sink is restored on every exit.
  const uint64_t calls_before = ctx->metrics.domain_calls;
  ctx->call_budget = calls_before + options_.max_domain_calls;
  struct TraceSinkGuard {
    CallContext* ctx;
    std::vector<CallTrace>* previous;
    ~TraceSinkGuard() { ctx->trace = previous; }
  } trace_guard{ctx, ctx->trace};
  if (options_.collect_trace) ctx->trace = &exec.trace;

  // Buffer DCSM samples in the (query-private) context and merge them in
  // one batch when evaluation ends — the shared statistics lock is taken
  // once per query instead of once per domain call. The guard flushes on
  // error exits too, so failed queries still contribute the statistics of
  // the calls they did execute (matching the old per-call behaviour).
  struct StatsFlushGuard {
    dcsm::StatsInterceptor* layer;
    CallContext* ctx;
    bool previous;
    ~StatsFlushGuard() {
      if (layer != nullptr) layer->Flush(*ctx);
      ctx->buffer_stats = previous;
    }
  } stats_guard{stats_layer_.get(), ctx, ctx->buffer_stats};
  if (stats_layer_ != nullptr) ctx->buffer_stats = true;

  EvalState state;
  state.program = &program;
  state.ctx = ctx;
  state.pipeline = &pipeline;

  Bindings bindings;
  EmitFn emit = [&](const Bindings& b, double t) -> Result<double> {
    ValueList row;
    row.reserve(exec.var_names.size());
    for (const std::string& var : exec.var_names) {
      auto it = b.find(var);
      row.push_back(it == b.end() ? Value::Null() : it->second);
    }
    if (exec.answers.empty()) exec.t_first_ms = t;
    exec.answers.push_back(std::move(row));
    ++state.emitted;
    if (options_.mode == ExecutionMode::kInteractive &&
        state.emitted >= options_.interactive_batch) {
      state.stop = true;
      exec.complete = false;
    }
    return t;
  };

  HERMES_ASSIGN_OR_RETURN(
      double t_done, EvalGoals(query.goals, 0, &bindings, 0.0, 0, &state,
                               emit));
  exec.t_all_ms = t_done;
  if (exec.answers.empty()) exec.t_first_ms = t_done;
  exec.domain_calls = ctx->metrics.domain_calls - calls_before;
  return exec;
}

}  // namespace hermes::engine
