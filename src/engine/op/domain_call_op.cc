#include "engine/op/domain_call_op.h"

#include <algorithm>
#include <string>

#include "dcsm/dcsm.h"
#include "dcsm/drift.h"
#include "engine/op/explain.h"
#include "engine/op/replan.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace hermes::engine::op {

std::string DomainCallOp::label() const {
  return "DomainCall " + goal_->ToString();
}

Status DomainCallOp::RunCall(ExecContext& cx, double t_issue) {
  const double t_open = t_issue;
  t_base_ = t_issue;

  const lang::Atom& goal = *goal_;

  // Ground the call.
  DomainCall call;
  call.domain = goal.call.domain;
  call.function = goal.call.function;
  call.args.reserve(goal.call.args.size());
  for (const lang::Term& arg : goal.call.args) {
    HERMES_ASSIGN_OR_RETURN(Value v, ResolveTerm(arg, *cx.bindings));
    call.args.push_back(std::move(v));
  }

  // Query-deadline cancellation: a plan past its deadline issues no
  // further source calls (the executor decides whether the partial answer
  // set is acceptable).
  if (t_open >= cx.ctx->deadline_ms) {
    ++cx.ctx->metrics.deadline_aborts;
    return Status::DeadlineExceeded(
        "query deadline reached at t=" + std::to_string(t_open) +
        "ms before " + goal.call.domain + ":" + goal.call.function);
  }

  // Dispatch through the call pipeline: the trace and stats layers observe
  // the call, then the registry routes it through the target domain's own
  // interceptor stack (cache, network).
  HERMES_RETURN_IF_ERROR(cx.ctx->ChargeCall());
  cx.ctx->now_ms = t_open;
  // The call span is closed before any row is consumed downstream, so
  // sibling goals do not nest under it (only the layers the pipeline
  // itself traverses — cache lookup, network hop — become children).
  obs::Tracer* tracer = cx.ctx->tracer;
  uint64_t span_id = 0;
  if (tracer != nullptr) {
    span_id = tracer->BeginSpan("call:" + call.domain + ":" + call.function,
                                "domain-call", t_open);
  }
  const uint64_t retries_before = cx.ctx->metrics.retries;
  const uint64_t degraded_before = cx.ctx->metrics.degraded_calls;
  const uint64_t coalesced_before = cx.ctx->metrics.coalesced_calls;
  const size_t errors_before = cx.ctx->source_errors.size();
  if (cx.ctx->recorder != nullptr) {
    obs::FlightEvent ev = obs::FlightEvent::Make(
        obs::FlightEventKind::kCallIssued, cx.ctx->query_id,
        cx.ctx->recorder_seq++, t_open);
    ev.set_domain(call.domain);
    ev.set_detail(call.function);
    cx.ctx->recorder->Emit(ev);
  }
  Result<CallOutput> run = cx.pipeline->Run(*cx.ctx, call);
  retries_seen_ += cx.ctx->metrics.retries - retries_before;
  degraded_seen_ += cx.ctx->metrics.degraded_calls - degraded_before;
  coalesced_seen_ += cx.ctx->metrics.coalesced_calls - coalesced_before;
  if (tracer != nullptr) {
    if (run.ok()) {
      tracer->AddArg(span_id, "answers", std::to_string(run->answers.size()));
      tracer->EndSpan(span_id, t_open + run->all_ms);
    } else {
      tracer->MarkFailed(span_id, run.status().ToString());
      tracer->EndSpan(span_id, t_open);  // clamps up to child penalties
    }
  }
  if (cx.ctx->recorder != nullptr) {
    if (run.ok()) {
      obs::FlightEvent ev = obs::FlightEvent::Make(
          obs::FlightEventKind::kCallCompleted, cx.ctx->query_id,
          cx.ctx->recorder_seq++, t_open + run->all_ms);
      ev.set_domain(call.domain);
      ev.set_detail(call.function);
      ev.value = run->all_ms;
      ev.aux = run->answers.size();
      cx.ctx->recorder->Emit(ev);
    } else {
      obs::FlightEvent ev = obs::FlightEvent::Make(
          obs::FlightEventKind::kCallFailed, cx.ctx->query_id,
          cx.ctx->recorder_seq++, t_open + cx.ctx->last_call_penalty_ms);
      ev.set_site(cx.ctx->last_failure_site);
      ev.set_domain(call.domain);
      ev.set_detail(!cx.ctx->last_failure_cause.empty()
                        ? cx.ctx->last_failure_cause
                        : std::string("error"));
      ev.value = cx.ctx->last_call_penalty_ms;
      cx.ctx->recorder->Emit(ev);
    }
  }
  if (run.ok() && cx.replan != nullptr) {
    cx.replan->ObserveCall(goal_, run->all_ms,
                           static_cast<double>(run->answers.size()));
  }
  if (run.ok() && cx.ctx->drift != nullptr) {
    cx.ctx->drift->Observe(
        EstimationPattern(), RuntimeAdornment(),
        CostVector(run->first_ms, run->all_ms,
                   static_cast<double>(run->answers.size())),
        t_open + run->all_ms, cx.ctx->recorder);
  }
  if (!run.ok()) {
    const Status& failure = run.status();
    // A load-shed call (ResourceExhausted) is a lost source like an outage:
    // under partial_results the goal contributes zero rows instead of
    // failing the query — shedding is only graceful if it degrades.
    const bool lost_source = failure.IsUnavailable() ||
                             failure.IsDeadlineExceeded() ||
                             failure.IsResourceExhausted();
    if (!lost_source || cx.params == nullptr ||
        !cx.params->tolerate_source_failures) {
      return failure;
    }
    // Graceful degradation: this source is lost; the goal contributes zero
    // rows and the query is reported partial with the source named.
    ++lost_seen_;
    if (cx.ctx->source_errors.size() == errors_before) {
      // No resilience layer below recorded the loss (plain domain stack):
      // attribute it here from the pipeline's failure breadcrumbs.
      SourceError err;
      err.site = cx.ctx->last_failure_site;
      err.domain = call.domain;
      err.function = call.function;
      err.cause = !cx.ctx->last_failure_cause.empty()
                      ? cx.ctx->last_failure_cause
                      : std::string(failure.IsDeadlineExceeded()
                                        ? "deadline"
                                        : "unavailable");
      err.message = failure.ToString();
      err.t_ms = t_open;
      err.masked = false;
      cx.ctx->source_errors.push_back(std::move(err));
    }
    output_ = CallOutput{};
    output_.complete = false;
    // The time burnt discovering the loss (timeouts, backoff) still
    // elapses on the simulated clock before the empty stream completes.
    output_.first_ms = cx.ctx->last_call_penalty_ms;
    output_.all_ms = cx.ctx->last_call_penalty_ms;
  } else {
    output_ = std::move(run).value();
  }
  if (!output_.complete) cx.source_incomplete = true;
  return Status::OK();
}

Status DomainCallOp::IssueAsync(ExecContext& cx, double t_issue) {
  HERMES_RETURN_IF_ERROR(RunCall(cx, t_issue));
  async_issued_ = true;
  return Status::OK();
}

void DomainCallOp::ResetAsync() {
  async_issued_ = false;
  output_ = CallOutput{};
}

Status DomainCallOp::OpenImpl(ExecContext& cx, double t_open) {
  frame_.reset();
  delivered_ = false;
  index_ = 0;

  // When the gather parent already issued the call, reuse its output and
  // keep t_base_ anchored at the issue time — that anchoring is what makes
  // sibling latencies overlap (re-opening the cursor per outer row does
  // not re-pay, or re-jitter, the source round trip).
  if (!async_issued_) {
    HERMES_RETURN_IF_ERROR(RunCall(cx, t_open));
  }

  const lang::Atom& goal = *goal_;
  membership_ = TermIsResolvable(goal.output, *cx.bindings);
  match_found_ = false;
  if (membership_) {
    // Membership check: in(X, d:f(...)) with X already ground.
    HERMES_ASSIGN_OR_RETURN(const Value* expected,
                            ResolveTermPtr(goal.output, *cx.bindings));
    for (size_t i = 0; i < output_.answers.size(); ++i) {
      if (output_.answers[i] == *expected) {
        match_found_ = true;
        match_index_ = i;
        break;
      }
    }
  }
  return Status::OK();
}

Result<bool> DomainCallOp::NextImpl(ExecContext& cx, double t_resume,
                                    double* t_out) {
  frame_.reset();  // backtrack past the previous row's binding

  // Cancellation between rows: once the consumer's clock passes the query
  // deadline, stop streaming instead of feeding more work downstream.
  if (t_resume >= cx.ctx->deadline_ms) {
    ++cx.ctx->metrics.deadline_aborts;
    return Status::DeadlineExceeded(
        "query deadline reached at t=" + std::to_string(t_resume) +
        "ms while streaming " + goal_->call.domain + ":" +
        goal_->call.function);
  }

  if (membership_) {
    if (match_found_ && !delivered_) {
      delivered_ = true;
      *t_out = t_base_ + ArrivalOffsetMs(output_, match_index_);
      return true;
    }
    if (!match_found_) {
      // No match: the full set had to arrive to know.
      *t_out = t_base_ + output_.all_ms;
      return false;
    }
    *t_out = std::max(t_resume, t_base_ + output_.all_ms);
    return false;
  }

  // Enumeration: bind the output variable to each answer in turn.
  while (index_ < output_.answers.size()) {
    size_t i = index_++;
    double t_arrive = t_base_ + ArrivalOffsetMs(output_, i);
    double t_start = std::max(t_arrive, t_resume);
    frame_.emplace(cx.bindings);
    // View bind: the binding aliases the answer in this op's own output
    // buffer, which outlives the frame (it is reset before output_ is
    // replaced or cleared). No copy, no allocation per row.
    if (!frame_->BindView(goal_->output.var_name, &output_.answers[i])) {
      frame_.reset();
      continue;  // repeated variable with a different value
    }
    *t_out = t_start;
    return true;
  }
  *t_out = std::max(t_resume, t_base_ + output_.all_ms);
  return false;
}

void DomainCallOp::CloseImpl(ExecContext& cx) {
  (void)cx;
  frame_.reset();
  // An async-issued output survives Close: the gather loop re-opens this
  // cursor once per outer row. ResetAsync() (from the gather's own Close)
  // releases it.
  if (!async_issued_) output_ = CallOutput{};
}

lang::DomainCallSpec DomainCallOp::EstimationPattern() const {
  lang::DomainCallSpec pattern;
  pattern.domain = goal_->call.domain;
  pattern.function = goal_->call.function;
  pattern.args.reserve(goal_->call.args.size());
  for (const lang::Term& arg : goal_->call.args) {
    // Every argument is ground by the time the call runs, so the runtime
    // pattern distinguishes only plan constants from bound variables.
    pattern.args.push_back(arg.is_constant() ? arg : lang::Term::Bound());
  }
  return pattern;
}

std::string DomainCallOp::RuntimeAdornment() const {
  std::string adorn;
  adorn.reserve(goal_->call.args.size());
  for (const lang::Term& arg : goal_->call.args) {
    adorn += arg.is_constant() ? 'c' : 'b';
  }
  return adorn;
}

std::string DomainCallOp::ActualExtras() const {
  std::string extras;
  if (retries_seen_ > 0) extras += " retries=" + std::to_string(retries_seen_);
  if (degraded_seen_ > 0) extras += " degraded";
  if (lost_seen_ > 0) extras += " lost=" + std::to_string(lost_seen_);
  if (coalesced_seen_ > 0) {
    extras += " coalesced=" + std::to_string(coalesced_seen_);
  }
  return extras;
}

void DomainCallOp::Explain(ExplainPrinter& printer) {
  const lang::Atom& goal = *goal_;
  std::set<std::string>& bound = printer.bound();

  // Static adornment of the call arguments under the left-to-right plan
  // walk; bound arguments become `$b` in the DCSM estimation pattern.
  std::string adorn;
  lang::DomainCallSpec pattern;
  pattern.domain = goal.call.domain;
  pattern.function = goal.call.function;
  bool estimable = true;
  for (const lang::Term& arg : goal.call.args) {
    bool arg_bound = arg.is_constant() ||
                     (arg.is_variable() && bound.count(arg.var_name) > 0);
    adorn += arg_bound ? 'b' : 'f';
    if (arg.is_constant()) {
      pattern.args.push_back(arg);
    } else if (arg_bound) {
      pattern.args.push_back(lang::Term::Bound());
    } else {
      estimable = false;
    }
  }
  bool check = goal.output.is_constant() ||
               (goal.output.is_variable() &&
                bound.count(goal.output.var_name) > 0);

  std::string annotations = "[args=" + (adorn.empty() ? "-" : adorn) +
                            (check ? ", check" : ", enumerate");
  if (goal.call.domain.rfind("cim_", 0) == 0) annotations += ", cim";
  if (async_marker_) annotations += ", async";
  annotations += "]";

  const dcsm::Dcsm* dcsm = printer.options().dcsm;
  if (dcsm != nullptr && estimable) {
    Result<dcsm::CostEstimate> est = dcsm->Cost(pattern);
    if (est.ok()) {
      annotations += " est=[Tf=" + ExplainPrinter::FormatNum(est->cost.t_first_ms) +
                     " Ta=" + ExplainPrinter::FormatNum(est->cost.t_all_ms) +
                     " card=" + ExplainPrinter::FormatNum(est->cost.cardinality) +
                     " src=" + est->source + "]";
    } else {
      annotations += " est=[unavailable]";
    }
  } else if (dcsm != nullptr) {
    annotations += " est=[free args]";
  }

  printer.NodeFor(*this, annotations, {});

  // Enumeration binds the output variable for everything to its right.
  if (!check && goal.output.is_variable()) bound.insert(goal.output.var_name);
}

}  // namespace hermes::engine::op
