#ifndef HERMES_ENGINE_OP_FILTER_OP_H_
#define HERMES_ENGINE_OP_FILTER_OP_H_

#include <optional>

#include "engine/op/op.h"

namespace hermes::engine::op {

/// Evaluates one comparison goal `lhs OP rhs` over the current bindings.
///
/// A source operator producing zero or one rows: the comparison is decided
/// at Open time (charging the simulated comparison_cost_ms), and the row —
/// when the comparison holds — is available at t_open + comparison_cost_ms.
/// The `X = expr` form with exactly one resolvable side binds the free
/// variable instead of testing (the walker's eq-binding path); a failing
/// comparison exhausts at t_open + comparison_cost_ms, a consumed row
/// exhausts at the consumer's resume time.
class FilterOp final : public PhysicalOp {
 public:
  /// `goal` (kind kComparison) is borrowed; it must outlive the operator.
  explicit FilterOp(const lang::Atom* goal) : goal_(goal) {}

  OpKind kind() const override { return OpKind::kFilter; }
  std::string label() const override;
  void Explain(ExplainPrinter& printer) override;

 protected:
  Status OpenImpl(ExecContext& cx, double t_open) override;
  Result<bool> NextImpl(ExecContext& cx, double t_resume,
                        double* t_out) override;
  void CloseImpl(ExecContext& cx) override;

 private:
  const lang::Atom* goal_;

  // Per-open state.
  bool has_row_ = false;
  bool delivered_ = false;
  double t_emit_ = 0.0;
  std::optional<BindingFrame> frame_;  ///< The eq-binding, when taken.
};

}  // namespace hermes::engine::op

#endif  // HERMES_ENGINE_OP_FILTER_OP_H_
