#include "engine/op/join_op.h"

#include "engine/op/replan.h"

namespace hermes::engine::op {

Status NestedLoopJoinOp::OpenImpl(ExecContext& cx, double t_open) {
  right_open_ = false;
  return left_->Open(cx, t_open);
}

Result<bool> NestedLoopJoinOp::NextImpl(ExecContext& cx, double t_resume,
                                        double* t_out) {
  for (;;) {
    if (right_open_) {
      double t = 0.0;
      Result<bool> row = right_->Next(cx, t_resume, &t);
      if (!row.ok()) return row.status();
      if (*row) {
        *t_out = t;
        return true;
      }
      right_->Close(cx);
      right_open_ = false;
      t_resume = t;  // the right stream's completion resumes the left
    }
    double t_left = 0.0;
    Result<bool> row = left_->Next(cx, t_resume, &t_left);
    if (!row.ok()) return row.status();
    if (!*row) {
      *t_out = t_left;
      return false;
    }
    // A left row at t_left: the right subtree opens (issuing its calls)
    // there and its first pull resumes there too. A spine join first lets
    // the replan manager swap the unexecuted suffix — every spine right
    // subtree from here up to the root is closed at this boundary.
    if (cx.replan != nullptr && spine_index_ >= 0) {
      HERMES_RETURN_IF_ERROR(cx.replan->MaybeReplan(
          cx, static_cast<size_t>(spine_index_), t_left));
    }
    right_open_ = true;  // before Open: Close must reach a partial open
    HERMES_RETURN_IF_ERROR(right_->Open(cx, t_left));
    t_resume = t_left;
  }
}

void NestedLoopJoinOp::CloseImpl(ExecContext& cx) {
  if (right_open_) {
    right_->Close(cx);
    right_open_ = false;
  }
  left_->Close(cx);
}

}  // namespace hermes::engine::op
