#include "engine/op/rule_predicate_op.h"

#include <algorithm>
#include <utility>

#include "dcsm/stats_interceptor.h"
#include "engine/op/compile.h"
#include "engine/op/explain.h"
#include "obs/trace.h"

namespace hermes::engine::op {

RulePredicateOp::RulePredicateOp(const lang::Atom* atom,
                                 const lang::Program* program, size_t depth,
                                 CompileOptions options)
    : atom_(atom), program_(program), depth_(depth), options_(options) {
  for (size_t i = 0; i < program->rules.size(); ++i) {
    const lang::Rule& rule = program->rules[i];
    if (rule.head.predicate == atom->predicate &&
        rule.head.args.size() == atom->args.size()) {
      matching_.push_back(i);
    }
  }
  bodies_.resize(matching_.size());
}

std::string RulePredicateOp::label() const {
  return "RulePredicate " + atom_->ToString();
}

PhysicalOp* RulePredicateOp::EnsureBody(size_t rule_pos) {
  if (bodies_[rule_pos] == nullptr) {
    const lang::Rule& rule = program_->rules[matching_[rule_pos]];
    bodies_[rule_pos] = CompileGoals(rule.body, *program_, depth_ + 1,
                                     options_);
  }
  return bodies_[rule_pos].get();
}

Status RulePredicateOp::OpenImpl(ExecContext& cx, double t_open) {
  if (depth_ >= cx.params->max_recursion_depth) {
    return Status::Unimplemented(
        "recursion depth limit reached evaluating '" + atom_->predicate +
        "' (recursive mediators are outside this engine's scope)");
  }

  // Downstream goals evaluated from a rule body's solutions intentionally
  // nest under this span: the envelope is the paper's per-predicate Tf/Ta
  // measurement window.
  rule_span_ = 0;
  if (cx.ctx->tracer != nullptr) {
    rule_span_ = cx.ctx->tracer->BeginSpan("rule:" + atom_->predicate,
                                           "rule", t_open);
  }

  t_open_ = t_open;
  cursor_ = t_open;
  last_emit_ = t_open;
  first_solution_t_ = -1.0;
  solutions_ = 0;
  rule_pos_ = 0;
  body_open_ = false;
  back_frame_.reset();
  local_.clear();

  if (matching_.empty()) {
    return Status::NotFound("no rule defines predicate '" + atom_->predicate +
                            "/" + std::to_string(atom_->args.size()) + "'");
  }
  return Status::OK();
}

Result<bool> RulePredicateOp::UnifyHead(ExecContext& cx,
                                        const lang::Rule& rule) {
  local_.clear();
  back_.clear();
  bool applicable = true;
  for (size_t i = 0; i < atom_->args.size() && applicable; ++i) {
    const lang::Term& caller_term = atom_->args[i];
    const lang::Term& head_term = rule.head.args[i];
    if (TermIsResolvable(caller_term, *cx.bindings)) {
      // View resolution: the head variable aliases the caller's storage
      // (stable while this rule runs — the caller cannot advance past an
      // open predicate). No Value copies crossing the head.
      HERMES_ASSIGN_OR_RETURN(const Value* v,
                              ResolveTermPtr(caller_term, *cx.bindings));
      if (head_term.is_constant()) {
        if (head_term.constant != *v) applicable = false;
      } else if (head_term.is_variable()) {
        if (!head_term.path.empty()) {
          return Status::InvalidArgument(
              "attribute path in rule head: " + head_term.ToString());
        }
        if (local_.BindView(head_term.var_name, v) ==
            Bindings::BindOutcome::kConflict) {
          applicable = false;
        }
      } else {
        return Status::InvalidArgument("'$b' in rule head");
      }
    } else {
      if (!caller_term.is_variable() || !caller_term.path.empty()) {
        return Status::InvalidArgument(
            "cannot pass unresolvable term '" + caller_term.ToString() +
            "' to predicate '" + atom_->predicate + "'");
      }
      back_.push_back({caller_term.var_name, &head_term});
    }
  }
  return applicable;
}

Result<bool> RulePredicateOp::NextImpl(ExecContext& cx, double t_resume,
                                       double* t_out) {
  // Backtrack past the previous solution's caller-side bindings; the body
  // producer resumes where the consumer finished that solution.
  back_frame_.reset();
  if (body_open_) body_resume_ = t_resume;

  for (;;) {
    if (!body_open_) {
      if (rule_pos_ >= matching_.size()) {
        RecordInvocation(cx);
        *t_out = cursor_;
        return false;
      }
      const lang::Rule& rule = program_->rules[matching_[rule_pos_]];
      HERMES_ASSIGN_OR_RETURN(bool applicable, UnifyHead(cx, rule));
      if (!applicable) {
        ++rule_pos_;
        continue;
      }
      PhysicalOp* body = EnsureBody(rule_pos_);
      body_open_ = true;  // before Open: Close must reach a partial open
      body_resume_ = cursor_;
      Bindings* caller = cx.bindings;
      cx.bindings = &local_;
      Status opened = body->Open(cx, cursor_);
      cx.bindings = caller;
      if (!opened.ok()) return opened;
    }

    PhysicalOp* body = bodies_[rule_pos_].get();
    double t = 0.0;
    Bindings* caller = cx.bindings;
    cx.bindings = &local_;
    Result<bool> produced = body->Next(cx, body_resume_, &t);
    cx.bindings = caller;
    if (!produced.ok()) return produced.status();

    if (!*produced) {
      // This rule's body completed at t; the next rule opens there.
      cursor_ = t;
      caller = cx.bindings;
      cx.bindings = &local_;
      body->Close(cx);
      cx.bindings = caller;
      body_open_ = false;
      local_.clear();
      ++rule_pos_;
      continue;
    }

    // One body solution at time t: bind outputs back onto the caller's
    // free variables, then surface the solution after the unification.
    back_frame_.emplace(cx.bindings);
    bool conflict = false;
    for (const BackBinding& bb : back_) {
      // The view targets the AST constant or the rule-local storage, both
      // stable until the frame rolls back (always before the body advances
      // or closes).
      const Value* v = nullptr;
      if (bb.head_term->is_constant()) {
        v = &bb.head_term->constant;
      } else {
        Result<const Value*> resolved = ResolveTermPtr(*bb.head_term, local_);
        if (!resolved.ok()) {
          return Status::InvalidArgument(
              "head variable '" + bb.head_term->ToString() + "' of '" +
              atom_->predicate + "' is unbound after evaluating the rule body");
        }
        v = resolved.value();
      }
      if (!back_frame_->BindView(bb.caller_var, v)) {
        // Same caller variable bound to conflicting outputs: no solution.
        conflict = true;
        break;
      }
    }
    if (conflict) {
      back_frame_.reset();
      body_resume_ = t;  // the producer resumes at the rejected solution
      continue;
    }
    if (first_solution_t_ < 0) first_solution_t_ = t;
    ++solutions_;
    *t_out = t + cx.params->unification_cost_ms;
    last_emit_ = *t_out;
    return true;
  }
}

void RulePredicateOp::RecordInvocation(ExecContext& cx) {
  if (cx.stats == nullptr || !cx.params->record_predicate_statistics) return;
  DomainCall invocation;
  invocation.domain = "idb";
  invocation.function = atom_->predicate;
  invocation.args.reserve(atom_->args.size());
  for (const lang::Term& arg : atom_->args) {
    Result<Value> v = TermIsResolvable(arg, *cx.bindings)
                          ? ResolveTerm(arg, *cx.bindings)
                          : Result<Value>(Value::Null());
    invocation.args.push_back(v.ok() ? *v : Value::Null());
  }
  cx.stats->RecordSample(
      *cx.ctx, invocation,
      CostVector((first_solution_t_ < 0 ? cursor_ : first_solution_t_) -
                     t_open_,
                 cursor_ - t_open_, static_cast<double>(solutions_)),
      /*complete=*/true);
}

void RulePredicateOp::CloseImpl(ExecContext& cx) {
  back_frame_.reset();
  if (body_open_) {
    Bindings* caller = cx.bindings;
    cx.bindings = &local_;
    bodies_[rule_pos_]->Close(cx);
    cx.bindings = caller;
    body_open_ = false;
  }
  local_.clear();
  if (rule_span_ != 0 && cx.ctx != nullptr && cx.ctx->tracer != nullptr) {
    cx.ctx->tracer->EndSpan(rule_span_, std::max(cursor_, last_emit_));
  }
  rule_span_ = 0;
}

void RulePredicateOp::Explain(ExplainPrinter& printer) {
  std::string adorn;
  for (const lang::Term& arg : atom_->args) {
    bool arg_bound =
        arg.is_constant() ||
        (arg.is_variable() && printer.bound().count(arg.var_name) > 0);
    adorn += arg_bound ? 'b' : 'f';
  }
  std::string annotations = "[args=" + (adorn.empty() ? "-" : adorn) +
                            ", rules=" + std::to_string(matching_.size()) +
                            "]";

  std::vector<std::function<void()>> kids;
  if (printer.OnPath(atom_->predicate)) {
    kids.push_back([this, &printer] {
      printer.Node(
          "(recursive expansion of '" + atom_->predicate + "' elided)", {});
    });
  } else {
    for (size_t pos = 0; pos < matching_.size(); ++pos) {
      kids.push_back([this, pos, &printer] {
        const lang::Rule& rule = program_->rules[matching_[pos]];
        // The body starts from the head's adornments: positions whose
        // caller argument is bound bind the head variable.
        std::set<std::string> body_bound;
        for (size_t i = 0; i < atom_->args.size(); ++i) {
          const lang::Term& caller_term = atom_->args[i];
          const lang::Term& head_term = rule.head.args[i];
          bool arg_bound =
              caller_term.is_constant() ||
              (caller_term.is_variable() &&
               printer.bound().count(caller_term.var_name) > 0);
          if (arg_bound && head_term.is_variable()) {
            body_bound.insert(head_term.var_name);
          }
        }
        PhysicalOp* body = EnsureBody(pos);
        std::set<std::string> saved = std::move(printer.bound());
        printer.bound() = std::move(body_bound);
        printer.PushPath(atom_->predicate);
        printer.Node("rule: " + rule.ToString(),
                     {[body, &printer] { body->Explain(printer); }});
        printer.PopPath();
        printer.bound() = std::move(saved);
      });
    }
  }
  printer.NodeFor(*this, annotations, std::move(kids));

  // The predicate binds its free variable arguments for goals to its right.
  for (const lang::Term& arg : atom_->args) {
    if (arg.is_variable()) printer.bound().insert(arg.var_name);
  }
}

}  // namespace hermes::engine::op
