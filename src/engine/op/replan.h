#ifndef HERMES_ENGINE_OP_REPLAN_H_
#define HERMES_ENGINE_OP_REPLAN_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/op/compile.h"
#include "engine/op/op.h"

namespace hermes::dcsm {
class Dcsm;
}  // namespace hermes::dcsm

namespace hermes::engine::op {

/// Knobs of mid-query re-optimization. Every default keeps the feature
/// inert; the mediator enables it per query.
struct ReplanOptions {
  bool enabled = false;
  /// Re-plan when a suffix goal's site has an open circuit breaker in this
  /// query's CallContext (per-query state — deterministic under any thread
  /// count).
  bool on_breaker_open = true;
  /// Re-plan when an executed call's observed latency or cardinality
  /// diverges from its compile-time estimate by more than this factor
  /// (observed > N·est or observed < est/N). 0 disables the divergence
  /// trigger; it compares against estimates snapshotted at plan time, never
  /// the live DCSM.
  double divergence_factor = 0.0;
  /// Upper bound on replans per query (each replan splices new subtrees).
  size_t max_replans = 1;
};

/// Compile-time cost snapshot for one top-level query goal, taken when the
/// plan is instantiated. MaybeReplan compares actuals against these — not
/// against the live DCSM, whose contents depend on cross-query flush
/// interleaving.
struct GoalEstimate {
  double t_all_ms = 0.0;
  double cardinality = 0.0;
  bool valid = false;
};

/// One replan decision, kept for EXPLAIN/diagnostics: what fired, what the
/// suffix looked like before and after, and the estimate delta.
struct ReplanEvent {
  size_t spine_index = 0;
  std::string trigger;     ///< "breaker_open site=... domain=..." / "divergence ...".
  std::string old_suffix;  ///< Unexecuted goals, previous order.
  std::string new_suffix;  ///< Unexecuted goals, spliced order (redirects applied).
  double old_est_ms = 0.0;
  double new_est_ms = 0.0;
  double sim_ms = 0.0;

  std::string ToString() const;
};

/// Orchestrates mid-query re-optimization over one compiled tree. The
/// executing spine joins call MaybeReplan() at their open-right boundary;
/// DomainCallOp reports actuals through ObserveCall(). When a trigger
/// fires, the unexecuted suffix of the top-level goal chain is re-ordered
/// (independent goals only) and breaker-open goals are redirected to their
/// CIM wrapper domain, then each affected spine join's right subtree is
/// re-lowered and spliced in place.
///
/// The manager owns every rewritten Atom (ops borrow them), so it must
/// outlive the tree's execution *and* any later EXPLAIN of the tree. A
/// tree that replanned must not be reused for another query.
class ReplanManager {
 public:
  struct Setup {
    const lang::Program* program = nullptr;
    /// The plan's top-level query goals (the vector CompileGoals lowered);
    /// borrowed, must outlive the manager.
    const std::vector<lang::Atom>* goals = nullptr;
    std::vector<SpineSlot> spine;
    CompileOptions compile_options;
    /// Maps a domain name to the site serving it ("" when unknown).
    std::function<std::string(const std::string&)> site_of;
    /// Domains with a registered "cim_<domain>" wrapper to redirect to.
    std::vector<std::string> cim_domains;
    /// Per-goal estimate snapshot (parallel to `goals`); may be empty when
    /// the divergence trigger is off.
    std::vector<GoalEstimate> estimates;
    ReplanOptions options;
  };

  explicit ReplanManager(Setup setup);

  ReplanManager(const ReplanManager&) = delete;
  ReplanManager& operator=(const ReplanManager&) = delete;

  /// Replan hook, called by the spine join at `spine_index` just before it
  /// opens its right subtree at virtual time `t_now`. Splices re-planned
  /// subtrees into spine positions >= spine_index when a trigger fires.
  Status MaybeReplan(ExecContext& cx, size_t spine_index, double t_now);

  /// Actual-cost feedback from a completed domain call. Goals that are not
  /// top-level spine goals are ignored.
  void ObserveCall(const lang::Atom* goal, double all_ms, double card);

  const std::vector<ReplanEvent>& events() const { return events_; }
  uint64_t triggers() const { return static_cast<uint64_t>(events_.size()); }
  uint64_t splices() const { return splices_; }
  bool replanned() const { return !events_.empty(); }

 private:
  struct Position {
    SpineSlot slot;
    const lang::Atom* atom = nullptr;  ///< Current goal (null: fixed subtree).
    GoalEstimate estimate;
  };

  bool BreakerTrigger(const ExecContext& cx, size_t from, std::string* trigger,
                      std::string* site, std::string* domain) const;
  double RankOf(const Position& pos) const;
  void SpliceSuffix(ExecContext& cx, size_t from, size_t trigger_pos,
                    const std::string& trigger, const std::string& site,
                    const std::string& domain, double t_now);

  const lang::Program* program_;
  CompileOptions compile_options_;
  std::function<std::string(const std::string&)> site_of_;
  std::vector<std::string> cim_domains_;
  ReplanOptions options_;

  std::vector<Position> positions_;           ///< One per spine slot.
  std::map<const lang::Atom*, size_t> goal_positions_;
  std::deque<lang::Atom> owned_atoms_;        ///< Rewritten goals (stable).

  // Pending divergence observation (set by ObserveCall, consumed by the
  // next MaybeReplan).
  bool divergence_pending_ = false;
  std::string divergence_domain_;
  std::string divergence_detail_;
  double divergence_ratio_ = 1.0;

  std::vector<ReplanEvent> events_;
  uint64_t splices_ = 0;
};

/// Snapshot of per-goal DCSM estimates under the plan's static adornments
/// (the same left-to-right bound-variable walk EXPLAIN uses). Entry i is
/// valid only when goals[i] is a domain call whose arguments are all bound
/// at that point. `dcsm` may be null (all entries invalid).
std::vector<GoalEstimate> SnapshotGoalEstimates(
    const dcsm::Dcsm* dcsm, const std::vector<lang::Atom>& goals);

}  // namespace hermes::engine::op

#endif  // HERMES_ENGINE_OP_REPLAN_H_
