#include "engine/op/sink_ops.h"

namespace hermes::engine::op {

std::string ProjectOp::label() const {
  std::string vars;
  for (const std::string& v : var_names_) {
    if (!vars.empty()) vars += ", ";
    vars += v;
  }
  return "Project [" + vars + "]";
}

Status ProjectOp::OpenImpl(ExecContext& cx, double t_open) {
  return child_->Open(cx, t_open);
}

Result<bool> ProjectOp::NextImpl(ExecContext& cx, double t_resume,
                                 double* t_out) {
  double t = 0.0;
  Result<bool> row = child_->Next(cx, t_resume, &t);
  if (!row.ok()) return row.status();
  *t_out = t;
  if (!*row) return false;
  cx.staged_row.clear();
  cx.staged_row.reserve(var_names_.size());
  for (const std::string& var : var_names_) {
    auto it = cx.bindings->find(var);
    cx.staged_row.push_back(it == cx.bindings->end() ? Value::Null()
                                                     : it->second);
  }
  return true;
}

void ProjectOp::CloseImpl(ExecContext& cx) { child_->Close(cx); }

Status AnswerSinkOp::OpenImpl(ExecContext& cx, double t_open) {
  answers_.clear();
  has_first_ = false;
  t_first_ = 0.0;
  stopped_ = false;
  complete_ = true;
  return child_->Open(cx, t_open);
}

Result<bool> AnswerSinkOp::NextImpl(ExecContext& cx, double t_resume,
                                    double* t_out) {
  if (stopped_) {
    // Interactive cut: the batch is full; evaluation ends at the time the
    // last answer was consumed, without pulling the child again.
    *t_out = t_resume;
    return false;
  }
  double t = 0.0;
  Result<bool> row = child_->Next(cx, t_resume, &t);
  if (!row.ok()) return row.status();
  *t_out = t;
  if (!*row) return false;
  if (!has_first_) {
    has_first_ = true;
    t_first_ = t;
  }
  answers_.push_back(std::move(cx.staged_row));
  if (cx.params->mode == ExecutionMode::kInteractive &&
      answers_.size() >= cx.params->interactive_batch) {
    stopped_ = true;
    complete_ = false;
  }
  return true;
}

void AnswerSinkOp::CloseImpl(ExecContext& cx) { child_->Close(cx); }

}  // namespace hermes::engine::op
