#include "engine/op/sink_ops.h"

namespace hermes::engine::op {

std::string ProjectOp::label() const {
  std::string vars;
  for (const std::string& v : var_names_) {
    if (!vars.empty()) vars += ", ";
    vars += v;
  }
  return "Project [" + vars + "]";
}

Status ProjectOp::OpenImpl(ExecContext& cx, double t_open) {
  return child_->Open(cx, t_open);
}

Result<bool> ProjectOp::NextImpl(ExecContext& cx, double t_resume,
                                 double* t_out) {
  double t = 0.0;
  Result<bool> row = child_->Next(cx, t_resume, &t);
  if (!row.ok()) return row.status();
  *t_out = t;
  if (!*row) return false;
  // Pack the bindings into a fresh flat row. Slot storage and string
  // payloads come from the query arena; list/struct payloads become
  // arena-owned copies. Nothing here touches the global heap.
  cx.staged_row = Row::Make(cx.schema, cx.arena);
  for (size_t i = 0; i < var_names_.size(); ++i) {
    const Value* v = cx.bindings->Find(var_names_[i]);
    if (v != nullptr) cx.staged_row.Set(i, *v, cx.arena);
  }
  return true;
}

void ProjectOp::CloseImpl(ExecContext& cx) { child_->Close(cx); }

std::vector<ValueList> AnswerSinkOp::TakeAnswers() {
  std::vector<ValueList> out;
  out.reserve(rows_.size());
  for (const Row& row : rows_) out.push_back(row.ToValues());
  rows_.clear();
  return out;
}

Status AnswerSinkOp::OpenImpl(ExecContext& cx, double t_open) {
  rows_.clear();
  has_first_ = false;
  t_first_ = 0.0;
  stopped_ = false;
  complete_ = true;
  return child_->Open(cx, t_open);
}

Result<bool> AnswerSinkOp::NextImpl(ExecContext& cx, double t_resume,
                                    double* t_out) {
  if (stopped_) {
    // Interactive cut: the batch is full; evaluation ends at the time the
    // last answer was consumed, without pulling the child again.
    *t_out = t_resume;
    return false;
  }
  double t = 0.0;
  Result<bool> row = child_->Next(cx, t_resume, &t);
  if (!row.ok()) return row.status();
  *t_out = t;
  if (!*row) return false;
  if (!has_first_) {
    has_first_ = true;
    t_first_ = t;
  }
  rows_.push_back(cx.staged_row);  // 2-word handle; payload stays in arena
  if (cx.params->mode == ExecutionMode::kInteractive &&
      rows_.size() >= cx.params->interactive_batch) {
    stopped_ = true;
    complete_ = false;
  }
  return true;
}

void AnswerSinkOp::CloseImpl(ExecContext& cx) { child_->Close(cx); }

}  // namespace hermes::engine::op
