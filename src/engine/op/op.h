#ifndef HERMES_ENGINE_OP_OP_H_
#define HERMES_ENGINE_OP_OP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/result.h"
#include "common/row.h"
#include "common/sim_costs.h"
#include "common/value.h"
#include "domain/pipeline.h"
#include "engine/bindings.h"
#include "lang/ast.h"

namespace hermes::dcsm {
class StatsInterceptor;
}  // namespace hermes::dcsm

namespace hermes::engine::op {

struct ExecOpMetrics;
class ExplainPrinter;
class ReplanManager;

/// The paper's two modes of operation (Section 3). Lives here so the
/// operator layer does not depend on the executor driver; engine/executor.h
/// re-exports it under the historical name hermes::engine::ExecutionMode.
enum class ExecutionMode {
  kAllAnswers,   ///< Compute every answer.
  kInteractive,  ///< Stop after the first batch of answers.
};

/// Physical operator kinds; OpKindName() gives the stable identifier used
/// as the `op` label of the hermes_exec_op_* metric series.
enum class OpKind {
  kDomainCall,
  kRulePredicate,
  kFilter,
  kNestedLoopJoin,
  kScatterGather,
  kProject,
  kAnswerSink,
  kUnit,
};

/// Stable snake_case name of an operator kind ("domain_call", ...).
const char* OpKindName(OpKind kind);

/// Per-query tuning knobs read by the operators at runtime. One instance
/// is shared by every operator of a compiled tree; the driver owns it.
struct ExecParams {
  ExecutionMode mode = ExecutionMode::kAllAnswers;
  /// Answers per batch in interactive mode; the sink stops the pipeline
  /// after the first batch.
  size_t interactive_batch = 1;
  double comparison_cost_ms = kDefaultComparisonCostMs;
  double unification_cost_ms = kDefaultUnificationCostMs;
  size_t max_recursion_depth = 64;
  /// Feed per-predicate invocation cost vectors to the stats layer (the
  /// Section 8 predicate-Tf extension), recorded by RulePredicateOp.
  bool record_predicate_statistics = true;
  /// Emit one obs::Tracer span per operator open/close (category
  /// "operator"). Off by default so the trace shape of the walker era —
  /// query/rule/domain-call spans only — is preserved exactly.
  bool trace_operators = false;
  /// Graceful degradation: a domain call that fails Unavailable (or at its
  /// call deadline) produces zero rows instead of failing the query; the
  /// lost source is recorded in CallContext::source_errors and the query
  /// result is reported partial. Off by default — the historical contract
  /// is that a lost source fails the query.
  bool tolerate_source_failures = false;
};

/// Everything one query's operators share while the tree runs: the plan's
/// program, the per-query CallContext, the executor-level call pipeline,
/// the stats sink, the tuning knobs, and the single mutable binding scope.
///
/// `bindings` points at the scope of the *currently executing* subtree;
/// RulePredicateOp swaps it to the rule's local scope around body calls and
/// restores it around back-binding, exactly mirroring the walker's explicit
/// `Bindings local` threading.
struct ExecContext {
  const lang::Program* program = nullptr;
  CallContext* ctx = nullptr;              ///< Per-query call context.
  const CallPipeline* pipeline = nullptr;  ///< Executor-level call path.
  dcsm::StatsInterceptor* stats = nullptr; ///< May be null.
  const ExecParams* params = nullptr;
  Bindings* bindings = nullptr;
  ExecOpMetrics* op_metrics = nullptr;     ///< May be null.
  /// Per-query scratch arena: row slots, string payloads and any other
  /// per-row storage come from here and are reclaimed wholesale when the
  /// executor finishes the query. Owned by the executor driver.
  Arena* arena = nullptr;
  /// Result-row shape, resolved at plan-compile time (CompiledQuery owns
  /// it); ProjectOp packs rows against this schema by position.
  const RowSchema* schema = nullptr;
  /// Row staged by ProjectOp for AnswerSinkOp — the one-slot handoff
  /// between the top of the tree and the sink. A flat arena-backed row;
  /// conversion to heap Values happens only at the mediator boundary.
  Row staged_row;
  /// Set by DomainCallOp when a source's answers were incomplete (a lost
  /// source tolerated as zero rows, or a degraded/partial cache serve);
  /// the executor folds it into QueryExecution::complete.
  bool source_incomplete = false;
  /// Mid-query re-optimization hook; null when replanning is disabled.
  /// Spine joins consult it before opening their right subtree and splice
  /// in a replanned suffix when it fires. Owned by the mediator.
  ReplanManager* replan = nullptr;
};

/// Per-instance execution counters, folded into EXPLAIN "actual" output.
struct OpStats {
  uint64_t opens = 0;
  uint64_t rows = 0;          ///< Rows produced across all opens.
  double sim_open_ms = 0.0;   ///< Virtual time of the latest Open.
  double sim_last_ms = 0.0;   ///< Latest virtual timestamp seen.
  double sim_total_ms = 0.0;  ///< Σ (close − open) virtual envelopes.
};

/// A Volcano-style physical operator over the simulated clock.
///
/// The virtual-timestamp contract (the paper's Section 7 semantics, ported
/// from the recursive walker — every operator must uphold it bit-for-bit):
///
///  - `Open(cx, t_open)` prepares the operator at virtual time `t_open`.
///    Source operators whose first action is externally timed (the domain
///    call itself) perform it here, at `t_open`.
///  - `Next(cx, t_resume, &t_out)` produces the next row. `t_resume` is the
///    virtual time at which the *consumer* finished processing the previous
///    row (the producer stalls until then — pipelined nested loops never
///    run ahead of their consumer). On `true`, the row's bindings are in
///    `*cx.bindings` and `*t_out` is the row's virtual availability time.
///    On `false` the stream is exhausted and `*t_out` is the stream's
///    completion time (the paper's T_a contribution of this operator).
///  - `Close(cx)` rolls back bindings and releases per-open state. Safe to
///    call at any point after Open, including after an error; idempotent.
///
/// Open/Next/Close are non-virtual wrappers that keep OpStats, the
/// per-operator hermes_exec_op_* metrics, and the optional "operator"
/// tracing spans; subclasses implement OpenImpl/NextImpl/CloseImpl.
class PhysicalOp {
 public:
  virtual ~PhysicalOp() = default;

  PhysicalOp(const PhysicalOp&) = delete;
  PhysicalOp& operator=(const PhysicalOp&) = delete;

  virtual OpKind kind() const = 0;

  /// One-line EXPLAIN label, e.g. `DomainCall in(O, video:f(...))`.
  virtual std::string label() const = 0;

  Status Open(ExecContext& cx, double t_open);
  Result<bool> Next(ExecContext& cx, double t_resume, double* t_out);
  void Close(ExecContext& cx);

  const OpStats& stats() const { return stats_; }

  /// Renders this operator (and its subtree) into `printer`. The default
  /// prints label() and recurses into children(); operators with richer
  /// structure (rules, adornments, estimates) override it.
  virtual void Explain(ExplainPrinter& printer);

  /// Extra tokens appended inside the EXPLAIN "(actual: ...)" suffix.
  /// Empty by default (and when nothing noteworthy happened) so existing
  /// EXPLAIN output is byte-identical; DomainCallOp reports resilience
  /// events (" retries=N", " degraded", " lost").
  virtual std::string ActualExtras() const { return {}; }

  /// Pre-order walk over this subtree: `fn(op, depth)` for this operator,
  /// then each child at depth+1. The structured sibling of Explain(),
  /// used by the diagnostics layer's per-operator est-vs-actual rows.
  void VisitTree(const std::function<void(PhysicalOp&, size_t)>& fn,
                 size_t depth = 0);

  /// Resets execution counters across the whole subtree, returning a
  /// cached plan instance to its never-executed state between queries.
  /// Overrides recurse by hand (children() allocates a vector — this path
  /// must stay allocation-free for the plan-cache hit path).
  virtual void ResetStatsTree() { stats_ = OpStats{}; }

 protected:
  PhysicalOp() = default;

  virtual Status OpenImpl(ExecContext& cx, double t_open) = 0;
  virtual Result<bool> NextImpl(ExecContext& cx, double t_resume,
                                double* t_out) = 0;
  virtual void CloseImpl(ExecContext& cx) = 0;

  /// Direct children, for the default Explain() rendering.
  virtual std::vector<PhysicalOp*> children() { return {}; }

 private:
  OpStats stats_;
  bool open_ = false;
  uint64_t op_span_ = 0;
};

/// Produces exactly one (empty) row at its open time — the neutral source
/// that makes empty goal lists (facts, the empty query) uniform: the
/// walker's "index == goals.size() → emit immediately" base case.
class UnitOp final : public PhysicalOp {
 public:
  OpKind kind() const override { return OpKind::kUnit; }
  std::string label() const override { return "Unit"; }

 protected:
  Status OpenImpl(ExecContext& cx, double t_open) override;
  Result<bool> NextImpl(ExecContext& cx, double t_resume,
                        double* t_out) override;
  void CloseImpl(ExecContext& cx) override;

 private:
  double t_open_ = 0.0;
  bool emitted_ = false;
};

}  // namespace hermes::engine::op

#endif  // HERMES_ENGINE_OP_OP_H_
