#include "engine/op/op.h"

#include <cstdio>

#include "engine/op/explain.h"
#include "engine/op/op_metrics.h"
#include "obs/trace.h"

namespace hermes::engine::op {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kDomainCall:
      return "domain_call";
    case OpKind::kRulePredicate:
      return "rule_predicate";
    case OpKind::kFilter:
      return "filter";
    case OpKind::kNestedLoopJoin:
      return "nested_loop_join";
    case OpKind::kScatterGather:
      return "scatter_gather";
    case OpKind::kProject:
      return "project";
    case OpKind::kAnswerSink:
      return "answer_sink";
    case OpKind::kUnit:
      return "unit";
  }
  return "unknown";
}

Status PhysicalOp::Open(ExecContext& cx, double t_open) {
  ++stats_.opens;
  stats_.sim_open_ms = t_open;
  stats_.sim_last_ms = t_open;
  open_ = true;
  ExecOpMetrics::PerKind* pk =
      cx.op_metrics == nullptr ? nullptr : &cx.op_metrics->ForKind(kind());
  if (pk != nullptr) pk->opens->Add(1);
  if (cx.params->trace_operators && cx.ctx != nullptr &&
      cx.ctx->tracer != nullptr) {
    op_span_ = cx.ctx->tracer->BeginSpan(
        "op:" + std::string(OpKindName(kind())), "operator", t_open);
  }
  Status st = OpenImpl(cx, t_open);
  if (!st.ok() && pk != nullptr) pk->errors->Add(1);
  return st;
}

Result<bool> PhysicalOp::Next(ExecContext& cx, double t_resume,
                              double* t_out) {
  Result<bool> produced = NextImpl(cx, t_resume, t_out);
  ExecOpMetrics::PerKind* pk =
      cx.op_metrics == nullptr ? nullptr : &cx.op_metrics->ForKind(kind());
  if (!produced.ok()) {
    if (pk != nullptr) pk->errors->Add(1);
    return produced;
  }
  if (*t_out > stats_.sim_last_ms) stats_.sim_last_ms = *t_out;
  if (*produced) {
    ++stats_.rows;
    if (pk != nullptr) pk->rows->Add(1);
  }
  return produced;
}

void PhysicalOp::Close(ExecContext& cx) {
  if (!open_) return;
  open_ = false;
  CloseImpl(cx);
  double envelope = stats_.sim_last_ms - stats_.sim_open_ms;
  stats_.sim_total_ms += envelope;
  if (cx.op_metrics != nullptr) {
    cx.op_metrics->ForKind(kind()).sim_ms->Observe(envelope);
  }
  if (op_span_ != 0 && cx.ctx != nullptr && cx.ctx->tracer != nullptr) {
    cx.ctx->tracer->EndSpan(op_span_, stats_.sim_last_ms);
  }
  op_span_ = 0;
}

void PhysicalOp::VisitTree(const std::function<void(PhysicalOp&, size_t)>& fn,
                           size_t depth) {
  fn(*this, depth);
  for (PhysicalOp* child : children()) {
    if (child != nullptr) child->VisitTree(fn, depth + 1);
  }
}

void PhysicalOp::Explain(ExplainPrinter& printer) {
  std::vector<std::function<void()>> kids;
  for (PhysicalOp* child : children()) {
    kids.push_back([child, &printer] { child->Explain(printer); });
  }
  printer.NodeFor(*this, "", std::move(kids));
}

Status UnitOp::OpenImpl(ExecContext& cx, double t_open) {
  (void)cx;
  t_open_ = t_open;
  emitted_ = false;
  return Status::OK();
}

Result<bool> UnitOp::NextImpl(ExecContext& cx, double t_resume,
                              double* t_out) {
  (void)cx;
  if (!emitted_) {
    emitted_ = true;
    *t_out = t_open_;
    return true;
  }
  *t_out = t_resume;
  return false;
}

void UnitOp::CloseImpl(ExecContext& cx) { (void)cx; }

}  // namespace hermes::engine::op
