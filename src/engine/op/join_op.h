#ifndef HERMES_ENGINE_OP_JOIN_OP_H_
#define HERMES_ENGINE_OP_JOIN_OP_H_

#include <memory>
#include <utility>

#include "engine/op/op.h"

namespace hermes::engine::op {

/// The paper's Section 7 join: left-to-right pipelined nested loops with
/// no duplicate elimination. For every left row (available at time t) the
/// right subtree is re-opened at t — re-issuing its domain calls, exactly
/// as the walker re-entered the next goal per binding. The right stream's
/// completion time becomes the left producer's resume time, and the left
/// stream's completion is the join's completion.
class NestedLoopJoinOp final : public PhysicalOp {
 public:
  NestedLoopJoinOp(std::unique_ptr<PhysicalOp> left,
                   std::unique_ptr<PhysicalOp> right)
      : left_(std::move(left)), right_(std::move(right)) {}

  OpKind kind() const override { return OpKind::kNestedLoopJoin; }
  std::string label() const override { return "NestedLoopJoin"; }

 protected:
  Status OpenImpl(ExecContext& cx, double t_open) override;
  Result<bool> NextImpl(ExecContext& cx, double t_resume,
                        double* t_out) override;
  void CloseImpl(ExecContext& cx) override;
  std::vector<PhysicalOp*> children() override {
    return {left_.get(), right_.get()};
  }

 private:
  std::unique_ptr<PhysicalOp> left_;
  std::unique_ptr<PhysicalOp> right_;
  bool right_open_ = false;
};

}  // namespace hermes::engine::op

#endif  // HERMES_ENGINE_OP_JOIN_OP_H_
