#ifndef HERMES_ENGINE_OP_JOIN_OP_H_
#define HERMES_ENGINE_OP_JOIN_OP_H_

#include <memory>
#include <string>
#include <utility>

#include "engine/op/op.h"

namespace hermes::engine::op {

/// The paper's Section 7 join: left-to-right pipelined nested loops with
/// no duplicate elimination. For every left row (available at time t) the
/// right subtree is re-opened at t — re-issuing its domain calls, exactly
/// as the walker re-entered the next goal per binding. The right stream's
/// completion time becomes the left producer's resume time, and the left
/// stream's completion is the join's completion.
///
/// Spine joins (the top-level left-deep chain of a query) additionally
/// participate in mid-query re-optimization: before opening the right
/// subtree for a fresh left row they give ExecContext::replan a chance to
/// splice a re-planned subtree in via ReplaceRight(). The splice point is
/// safe by construction — at that moment this join's right subtree and
/// every ancestor spine join's right subtree are closed.
class NestedLoopJoinOp final : public PhysicalOp {
 public:
  NestedLoopJoinOp(std::unique_ptr<PhysicalOp> left,
                   std::unique_ptr<PhysicalOp> right)
      : left_(std::move(left)), right_(std::move(right)) {}

  OpKind kind() const override { return OpKind::kNestedLoopJoin; }
  std::string label() const override {
    return replanned_marker_.empty() ? "NestedLoopJoin"
                                     : "NestedLoopJoin [" + replanned_marker_ +
                                           "]";
  }

  /// Position of this join on the top-level spine (-1 when it is not a
  /// spine join — rule bodies never replan). Set by CompileGoals when
  /// CompileOptions::record_spine is on.
  void set_spine_index(int index) { spine_index_ = index; }
  int spine_index() const { return spine_index_; }

  /// Swaps in a re-planned right subtree. Only legal while the right
  /// subtree is closed (the replan hook point guarantees it).
  void ReplaceRight(std::unique_ptr<PhysicalOp> right) {
    right_ = std::move(right);
  }
  PhysicalOp* right() const { return right_.get(); }

  /// Marks this join's EXPLAIN label `[replanned@...]`.
  void set_replanned_marker(std::string marker) {
    replanned_marker_ = std::move(marker);
  }

  void ResetStatsTree() override {
    PhysicalOp::ResetStatsTree();
    left_->ResetStatsTree();
    right_->ResetStatsTree();
  }

 protected:
  Status OpenImpl(ExecContext& cx, double t_open) override;
  Result<bool> NextImpl(ExecContext& cx, double t_resume,
                        double* t_out) override;
  void CloseImpl(ExecContext& cx) override;
  std::vector<PhysicalOp*> children() override {
    return {left_.get(), right_.get()};
  }

 private:
  std::unique_ptr<PhysicalOp> left_;
  std::unique_ptr<PhysicalOp> right_;
  bool right_open_ = false;
  int spine_index_ = -1;
  std::string replanned_marker_;
};

}  // namespace hermes::engine::op

#endif  // HERMES_ENGINE_OP_JOIN_OP_H_
