#ifndef HERMES_ENGINE_OP_DOMAIN_CALL_OP_H_
#define HERMES_ENGINE_OP_DOMAIN_CALL_OP_H_

#include <cstddef>
#include <optional>

#include "engine/op/op.h"

namespace hermes::engine::op {

/// Executes one `in(Output, domain:function(args))` goal through the call
/// pipeline (executor layers → registry → per-domain cache/network stack).
///
/// The call itself runs at Open time — that is when the walker issued it —
/// and the rows stream out of the already-materialized CallOutput with the
/// paper's interpolated arrival offsets:
///
///  - enumeration (output variable free): answer i becomes available at
///    max(t_open + ArrivalOffsetMs(i), t_resume); exhaustion completes at
///    max(t_resume, t_open + all_ms).
///  - membership (output already ground): at most one row, at the matching
///    answer's arrival time; a miss completes at t_open + all_ms (the full
///    set had to arrive to know).
///
/// A cache-redirected plan simply points the goal at the CIM's wrapper
/// domain ("cim_<site>") — the operator is oblivious; EXPLAIN annotates it.
///
/// Async issue path: a ScatterGatherOp parent may call IssueAsync() to run
/// the call once, up front, at the gather group's open time. Subsequent
/// Open()s then reuse the materialized CallOutput (keeping the issue time
/// as the arrival base, so sibling latencies overlap instead of adding)
/// until ResetAsync() clears the issued state.
class DomainCallOp final : public PhysicalOp {
 public:
  /// `goal` (kind kDomainCall) is borrowed; it must outlive the operator
  /// (the compiled tree's plan owns the program/query the goals live in).
  explicit DomainCallOp(const lang::Atom* goal) : goal_(goal) {}

  OpKind kind() const override { return OpKind::kDomainCall; }
  std::string label() const override;
  void Explain(ExplainPrinter& printer) override;
  std::string ActualExtras() const override;

  const lang::Atom& goal() const { return *goal_; }

  /// Grounds the call from the current bindings and runs it at virtual
  /// time `t_issue`. Until ResetAsync(), Open() reuses the result instead
  /// of re-issuing, and Close() keeps it. Only a gather parent calls this;
  /// the call's arguments must not depend on sibling outputs.
  Status IssueAsync(ExecContext& cx, double t_issue);

  /// Drops the async-issued result; the next Open() issues the call again.
  void ResetAsync();

  /// Marks this call's EXPLAIN annotation `async` (set by the compiler
  /// when the call is grouped under a ScatterGatherOp).
  void set_async_marker(bool marker) { async_marker_ = marker; }

  /// The DCSM estimation pattern of this call as executed: constant args
  /// stay constants, variable args (ground by run time) become `$b`. Used
  /// by the drift tracker and the slow-query log, matching what EXPLAIN
  /// asks the DCSM for a fully-bound plan position.
  lang::DomainCallSpec EstimationPattern() const;

  /// Runtime adornment matching EstimationPattern(): 'c' per constant
  /// argument, 'b' per variable argument.
  std::string RuntimeAdornment() const;

  void ResetStatsTree() override {
    PhysicalOp::ResetStatsTree();
    retries_seen_ = 0;
    degraded_seen_ = 0;
    lost_seen_ = 0;
    coalesced_seen_ = 0;
  }

 protected:
  Status OpenImpl(ExecContext& cx, double t_open) override;
  Result<bool> NextImpl(ExecContext& cx, double t_resume,
                        double* t_out) override;
  void CloseImpl(ExecContext& cx) override;

 private:
  /// Grounds, dispatches and materializes the call at `t_issue`; shared by
  /// the synchronous Open() path and IssueAsync().
  Status RunCall(ExecContext& cx, double t_issue);

  const lang::Atom* goal_;
  bool async_marker_ = false;

  // Per-open state.
  CallOutput output_;
  bool async_issued_ = false;  ///< output_ pinned by IssueAsync().
  double t_base_ = 0.0;
  bool membership_ = false;
  bool match_found_ = false;
  size_t match_index_ = 0;
  bool delivered_ = false;  ///< Membership: the single row was produced.
  size_t index_ = 0;        ///< Enumeration cursor.
  std::optional<BindingFrame> frame_;

  // Resilience events accumulated across opens, surfaced by ActualExtras().
  uint64_t retries_seen_ = 0;    ///< Retry attempts below this call.
  uint64_t degraded_seen_ = 0;   ///< Calls served degraded from cache.
  uint64_t lost_seen_ = 0;       ///< Failures tolerated as zero rows.
  uint64_t coalesced_seen_ = 0;  ///< Calls coalesced onto another query's.
};

}  // namespace hermes::engine::op

#endif  // HERMES_ENGINE_OP_DOMAIN_CALL_OP_H_
