#ifndef HERMES_ENGINE_OP_DOMAIN_CALL_OP_H_
#define HERMES_ENGINE_OP_DOMAIN_CALL_OP_H_

#include <cstddef>
#include <optional>

#include "engine/op/op.h"

namespace hermes::engine::op {

/// Executes one `in(Output, domain:function(args))` goal through the call
/// pipeline (executor layers → registry → per-domain cache/network stack).
///
/// The call itself runs at Open time — that is when the walker issued it —
/// and the rows stream out of the already-materialized CallOutput with the
/// paper's interpolated arrival offsets:
///
///  - enumeration (output variable free): answer i becomes available at
///    max(t_open + ArrivalOffsetMs(i), t_resume); exhaustion completes at
///    max(t_resume, t_open + all_ms).
///  - membership (output already ground): at most one row, at the matching
///    answer's arrival time; a miss completes at t_open + all_ms (the full
///    set had to arrive to know).
///
/// A cache-redirected plan simply points the goal at the CIM's wrapper
/// domain ("cim_<site>") — the operator is oblivious; EXPLAIN annotates it.
class DomainCallOp final : public PhysicalOp {
 public:
  /// `goal` (kind kDomainCall) is borrowed; it must outlive the operator
  /// (the compiled tree's plan owns the program/query the goals live in).
  explicit DomainCallOp(const lang::Atom* goal) : goal_(goal) {}

  OpKind kind() const override { return OpKind::kDomainCall; }
  std::string label() const override;
  void Explain(ExplainPrinter& printer) override;
  std::string ActualExtras() const override;

  const lang::Atom& goal() const { return *goal_; }

 protected:
  Status OpenImpl(ExecContext& cx, double t_open) override;
  Result<bool> NextImpl(ExecContext& cx, double t_resume,
                        double* t_out) override;
  void CloseImpl(ExecContext& cx) override;

 private:
  const lang::Atom* goal_;

  // Per-open state.
  CallOutput output_;
  double t_base_ = 0.0;
  bool membership_ = false;
  bool match_found_ = false;
  size_t match_index_ = 0;
  bool delivered_ = false;  ///< Membership: the single row was produced.
  size_t index_ = 0;        ///< Enumeration cursor.
  std::optional<BindingFrame> frame_;

  // Resilience events accumulated across opens, surfaced by ActualExtras().
  uint64_t retries_seen_ = 0;   ///< Retry attempts below this call.
  uint64_t degraded_seen_ = 0;  ///< Calls served degraded from cache.
  uint64_t lost_seen_ = 0;      ///< Failures tolerated as zero rows.
};

}  // namespace hermes::engine::op

#endif  // HERMES_ENGINE_OP_DOMAIN_CALL_OP_H_
