#include "engine/op/compile.h"

#include <utility>

#include "engine/op/domain_call_op.h"
#include "engine/op/filter_op.h"
#include "engine/op/join_op.h"
#include "engine/op/rule_predicate_op.h"
#include "engine/op/scatter_gather_op.h"

namespace hermes::engine::op {

std::vector<std::string> QueryVariables(const lang::Query& query) {
  std::vector<std::string> out;
  auto add = [&out](const lang::Term& t) {
    if (!t.is_variable()) return;
    for (const std::string& existing : out) {
      if (existing == t.var_name) return;
    }
    out.push_back(t.var_name);
  };
  for (const lang::Atom& goal : query.goals) {
    switch (goal.kind) {
      case lang::Atom::Kind::kPredicate:
        for (const lang::Term& t : goal.args) add(t);
        break;
      case lang::Atom::Kind::kDomainCall:
        add(goal.output);
        for (const lang::Term& t : goal.call.args) add(t);
        break;
      case lang::Atom::Kind::kComparison:
        add(goal.lhs);
        add(goal.rhs);
        break;
    }
  }
  return out;
}

namespace {

RowFieldType FieldTypeOf(const Value& v) {
  switch (v.type()) {
    case Value::Type::kNull:
      return RowFieldType::kNull;
    case Value::Type::kBool:
      return RowFieldType::kBool;
    case Value::Type::kInt:
      return RowFieldType::kInt;
    case Value::Type::kDouble:
      return RowFieldType::kDouble;
    case Value::Type::kString:
      return RowFieldType::kString;
    case Value::Type::kList:
      return RowFieldType::kList;
    case Value::Type::kStruct:
      return RowFieldType::kStruct;
  }
  return RowFieldType::kAny;
}

}  // namespace

RowSchema InferSchema(const lang::Program& program, const lang::Query& query) {
  RowSchema schema = RowSchema::ForVariables(QueryVariables(query));
  auto pin = [&schema](const std::string& var, RowFieldType type) {
    int idx = schema.FieldIndex(var);
    if (idx >= 0 && schema.fields()[idx].type == RowFieldType::kAny) {
      schema.fields()[idx].type = type;
    }
  };
  for (const lang::Atom& goal : query.goals) {
    switch (goal.kind) {
      case lang::Atom::Kind::kComparison: {
        // `=(V, const)` fixes V's type to the constant's.
        if (goal.op != lang::RelOp::kEq) break;
        if (goal.lhs.is_variable() && goal.lhs.path.empty() &&
            goal.rhs.is_constant()) {
          pin(goal.lhs.var_name, FieldTypeOf(goal.rhs.constant));
        } else if (goal.rhs.is_variable() && goal.rhs.path.empty() &&
                   goal.lhs.is_constant()) {
          pin(goal.rhs.var_name, FieldTypeOf(goal.lhs.constant));
        }
        break;
      }
      case lang::Atom::Kind::kPredicate: {
        // A variable argument inherits a type when every matching rule
        // head carries a same-typed constant at that position.
        for (size_t i = 0; i < goal.args.size(); ++i) {
          const lang::Term& arg = goal.args[i];
          if (!arg.is_variable() || !arg.path.empty()) continue;
          bool seen = false, uniform = true;
          RowFieldType type = RowFieldType::kAny;
          for (const lang::Rule& rule : program.rules) {
            if (rule.head.predicate != goal.predicate ||
                rule.head.args.size() != goal.args.size()) {
              continue;
            }
            if (!rule.head.args[i].is_constant()) {
              uniform = false;
              break;
            }
            RowFieldType t = FieldTypeOf(rule.head.args[i].constant);
            if (!seen) {
              type = t;
              seen = true;
            } else if (t != type) {
              uniform = false;
              break;
            }
          }
          if (seen && uniform) pin(arg.var_name, type);
        }
        break;
      }
      case lang::Atom::Kind::kDomainCall:
        break;  // dynamically typed source output
    }
  }
  return schema;
}

std::unique_ptr<PhysicalOp> CompileGoal(const lang::Atom& goal,
                                        const lang::Program& program,
                                        size_t depth,
                                        const CompileOptions& options) {
  switch (goal.kind) {
    case lang::Atom::Kind::kDomainCall:
      return std::make_unique<DomainCallOp>(&goal);
    case lang::Atom::Kind::kComparison:
      return std::make_unique<FilterOp>(&goal);
    case lang::Atom::Kind::kPredicate:
      return std::make_unique<RulePredicateOp>(&goal, &program, depth,
                                               options);
  }
  return std::make_unique<UnitOp>();  // unreachable
}

namespace {

/// True when the domain-call goal reads `var` in its call arguments or
/// touches it as its output term (a later enumerate of the same variable
/// is really a membership check against the earlier binding).
bool CallTouchesVar(const lang::Atom& goal, const std::string& var) {
  for (const lang::Term& arg : goal.call.args) {
    if (arg.is_variable() && arg.var_name == var) return true;
  }
  return goal.output.is_variable() && goal.output.var_name == var;
}

/// Length of the maximal scatter-gather run starting at goals[start]: the
/// longest prefix of consecutive domain-call goals none of which depends on
/// an output variable bound by an earlier member of the run.
size_t IndependentRunLength(const std::vector<lang::Atom>& goals,
                            size_t start) {
  size_t end = start;
  while (end < goals.size() &&
         goals[end].kind == lang::Atom::Kind::kDomainCall) {
    bool dependent = false;
    for (size_t k = start; k < end && !dependent; ++k) {
      const lang::Term& out = goals[k].output;
      if (out.is_variable() && CallTouchesVar(goals[end], out.var_name)) {
        dependent = true;
      }
    }
    if (dependent) break;
    ++end;
  }
  return end - start;
}

}  // namespace

std::unique_ptr<PhysicalOp> CompileGoals(const std::vector<lang::Atom>& goals,
                                         const lang::Program& program,
                                         size_t depth,
                                         const CompileOptions& options,
                                         std::vector<SpineSlot>* spine) {
  if (goals.empty()) return std::make_unique<UnitOp>();
  if (!options.record_spine) spine = nullptr;
  std::unique_ptr<PhysicalOp> chain;
  auto append = [&chain, spine](std::unique_ptr<PhysicalOp> op,
                                size_t goal_start, size_t goal_count,
                                bool single_domain_call) {
    if (chain == nullptr) {
      chain = std::move(op);
      return;
    }
    auto join = std::make_unique<NestedLoopJoinOp>(std::move(chain),
                                                   std::move(op));
    if (spine != nullptr) {
      join->set_spine_index(spine->size());
      spine->push_back(
          {join.get(), goal_start, goal_count, single_domain_call});
    }
    chain = std::move(join);
  };
  size_t i = 0;
  while (i < goals.size()) {
    if (options.async_scatter_gather &&
        goals[i].kind == lang::Atom::Kind::kDomainCall) {
      size_t run = IndependentRunLength(goals, i);
      if (run >= 2) {
        std::vector<std::unique_ptr<DomainCallOp>> members;
        members.reserve(run);
        for (size_t k = i; k < i + run; ++k) {
          members.push_back(std::make_unique<DomainCallOp>(&goals[k]));
        }
        append(std::make_unique<ScatterGatherOp>(std::move(members)), i, run,
               false);
        i += run;
        continue;
      }
    }
    append(CompileGoal(goals[i], program, depth, options), i, 1,
           goals[i].kind == lang::Atom::Kind::kDomainCall);
    ++i;
  }
  return chain;
}

CompiledQuery Compile(const lang::Program& program, const lang::Query& query,
                      const CompileOptions& options) {
  CompiledQuery compiled;
  compiled.var_names = QueryVariables(query);
  compiled.schema = InferSchema(program, query);
  auto project = std::make_unique<ProjectOp>(
      CompileGoals(query.goals, program, 0, options, &compiled.spine),
      compiled.var_names);
  auto sink = std::make_unique<AnswerSinkOp>(std::move(project));
  compiled.sink = sink.get();
  compiled.root = std::move(sink);
  return compiled;
}

}  // namespace hermes::engine::op
