#include "engine/op/compile.h"

#include <utility>

#include "engine/op/domain_call_op.h"
#include "engine/op/filter_op.h"
#include "engine/op/join_op.h"
#include "engine/op/rule_predicate_op.h"

namespace hermes::engine::op {

std::vector<std::string> QueryVariables(const lang::Query& query) {
  std::vector<std::string> out;
  auto add = [&out](const lang::Term& t) {
    if (!t.is_variable()) return;
    for (const std::string& existing : out) {
      if (existing == t.var_name) return;
    }
    out.push_back(t.var_name);
  };
  for (const lang::Atom& goal : query.goals) {
    switch (goal.kind) {
      case lang::Atom::Kind::kPredicate:
        for (const lang::Term& t : goal.args) add(t);
        break;
      case lang::Atom::Kind::kDomainCall:
        add(goal.output);
        for (const lang::Term& t : goal.call.args) add(t);
        break;
      case lang::Atom::Kind::kComparison:
        add(goal.lhs);
        add(goal.rhs);
        break;
    }
  }
  return out;
}

namespace {

RowFieldType FieldTypeOf(const Value& v) {
  switch (v.type()) {
    case Value::Type::kNull:
      return RowFieldType::kNull;
    case Value::Type::kBool:
      return RowFieldType::kBool;
    case Value::Type::kInt:
      return RowFieldType::kInt;
    case Value::Type::kDouble:
      return RowFieldType::kDouble;
    case Value::Type::kString:
      return RowFieldType::kString;
    case Value::Type::kList:
      return RowFieldType::kList;
    case Value::Type::kStruct:
      return RowFieldType::kStruct;
  }
  return RowFieldType::kAny;
}

}  // namespace

RowSchema InferSchema(const lang::Program& program, const lang::Query& query) {
  RowSchema schema = RowSchema::ForVariables(QueryVariables(query));
  auto pin = [&schema](const std::string& var, RowFieldType type) {
    int idx = schema.FieldIndex(var);
    if (idx >= 0 && schema.fields()[idx].type == RowFieldType::kAny) {
      schema.fields()[idx].type = type;
    }
  };
  for (const lang::Atom& goal : query.goals) {
    switch (goal.kind) {
      case lang::Atom::Kind::kComparison: {
        // `=(V, const)` fixes V's type to the constant's.
        if (goal.op != lang::RelOp::kEq) break;
        if (goal.lhs.is_variable() && goal.lhs.path.empty() &&
            goal.rhs.is_constant()) {
          pin(goal.lhs.var_name, FieldTypeOf(goal.rhs.constant));
        } else if (goal.rhs.is_variable() && goal.rhs.path.empty() &&
                   goal.lhs.is_constant()) {
          pin(goal.rhs.var_name, FieldTypeOf(goal.lhs.constant));
        }
        break;
      }
      case lang::Atom::Kind::kPredicate: {
        // A variable argument inherits a type when every matching rule
        // head carries a same-typed constant at that position.
        for (size_t i = 0; i < goal.args.size(); ++i) {
          const lang::Term& arg = goal.args[i];
          if (!arg.is_variable() || !arg.path.empty()) continue;
          bool seen = false, uniform = true;
          RowFieldType type = RowFieldType::kAny;
          for (const lang::Rule& rule : program.rules) {
            if (rule.head.predicate != goal.predicate ||
                rule.head.args.size() != goal.args.size()) {
              continue;
            }
            if (!rule.head.args[i].is_constant()) {
              uniform = false;
              break;
            }
            RowFieldType t = FieldTypeOf(rule.head.args[i].constant);
            if (!seen) {
              type = t;
              seen = true;
            } else if (t != type) {
              uniform = false;
              break;
            }
          }
          if (seen && uniform) pin(arg.var_name, type);
        }
        break;
      }
      case lang::Atom::Kind::kDomainCall:
        break;  // dynamically typed source output
    }
  }
  return schema;
}

std::unique_ptr<PhysicalOp> CompileGoal(const lang::Atom& goal,
                                        const lang::Program& program,
                                        size_t depth) {
  switch (goal.kind) {
    case lang::Atom::Kind::kDomainCall:
      return std::make_unique<DomainCallOp>(&goal);
    case lang::Atom::Kind::kComparison:
      return std::make_unique<FilterOp>(&goal);
    case lang::Atom::Kind::kPredicate:
      return std::make_unique<RulePredicateOp>(&goal, &program, depth);
  }
  return std::make_unique<UnitOp>();  // unreachable
}

std::unique_ptr<PhysicalOp> CompileGoals(const std::vector<lang::Atom>& goals,
                                         const lang::Program& program,
                                         size_t depth) {
  if (goals.empty()) return std::make_unique<UnitOp>();
  std::unique_ptr<PhysicalOp> chain = CompileGoal(goals[0], program, depth);
  for (size_t i = 1; i < goals.size(); ++i) {
    chain = std::make_unique<NestedLoopJoinOp>(
        std::move(chain), CompileGoal(goals[i], program, depth));
  }
  return chain;
}

CompiledQuery Compile(const lang::Program& program, const lang::Query& query) {
  CompiledQuery compiled;
  compiled.var_names = QueryVariables(query);
  compiled.schema = InferSchema(program, query);
  auto project = std::make_unique<ProjectOp>(
      CompileGoals(query.goals, program, 0), compiled.var_names);
  auto sink = std::make_unique<AnswerSinkOp>(std::move(project));
  compiled.sink = sink.get();
  compiled.root = std::move(sink);
  return compiled;
}

}  // namespace hermes::engine::op
