#include "engine/op/compile.h"

#include <utility>

#include "engine/op/domain_call_op.h"
#include "engine/op/filter_op.h"
#include "engine/op/join_op.h"
#include "engine/op/rule_predicate_op.h"

namespace hermes::engine::op {

std::vector<std::string> QueryVariables(const lang::Query& query) {
  std::vector<std::string> out;
  auto add = [&out](const lang::Term& t) {
    if (!t.is_variable()) return;
    for (const std::string& existing : out) {
      if (existing == t.var_name) return;
    }
    out.push_back(t.var_name);
  };
  for (const lang::Atom& goal : query.goals) {
    switch (goal.kind) {
      case lang::Atom::Kind::kPredicate:
        for (const lang::Term& t : goal.args) add(t);
        break;
      case lang::Atom::Kind::kDomainCall:
        add(goal.output);
        for (const lang::Term& t : goal.call.args) add(t);
        break;
      case lang::Atom::Kind::kComparison:
        add(goal.lhs);
        add(goal.rhs);
        break;
    }
  }
  return out;
}

std::unique_ptr<PhysicalOp> CompileGoal(const lang::Atom& goal,
                                        const lang::Program& program,
                                        size_t depth) {
  switch (goal.kind) {
    case lang::Atom::Kind::kDomainCall:
      return std::make_unique<DomainCallOp>(&goal);
    case lang::Atom::Kind::kComparison:
      return std::make_unique<FilterOp>(&goal);
    case lang::Atom::Kind::kPredicate:
      return std::make_unique<RulePredicateOp>(&goal, &program, depth);
  }
  return std::make_unique<UnitOp>();  // unreachable
}

std::unique_ptr<PhysicalOp> CompileGoals(const std::vector<lang::Atom>& goals,
                                         const lang::Program& program,
                                         size_t depth) {
  if (goals.empty()) return std::make_unique<UnitOp>();
  std::unique_ptr<PhysicalOp> chain = CompileGoal(goals[0], program, depth);
  for (size_t i = 1; i < goals.size(); ++i) {
    chain = std::make_unique<NestedLoopJoinOp>(
        std::move(chain), CompileGoal(goals[i], program, depth));
  }
  return chain;
}

CompiledQuery Compile(const lang::Program& program, const lang::Query& query) {
  CompiledQuery compiled;
  compiled.var_names = QueryVariables(query);
  auto project = std::make_unique<ProjectOp>(
      CompileGoals(query.goals, program, 0), compiled.var_names);
  auto sink = std::make_unique<AnswerSinkOp>(std::move(project));
  compiled.sink = sink.get();
  compiled.root = std::move(sink);
  return compiled;
}

}  // namespace hermes::engine::op
