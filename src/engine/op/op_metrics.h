#ifndef HERMES_ENGINE_OP_OP_METRICS_H_
#define HERMES_ENGINE_OP_OP_METRICS_H_

#include <memory>

#include "engine/op/op.h"
#include "obs/metrics.h"

namespace hermes::engine::op {

/// Per-operator-kind instruments, one label set per OpKind:
///
///   hermes_exec_op_opens_total{op="domain_call"}   operator Opens
///   hermes_exec_op_rows_total{op=...}              rows produced
///   hermes_exec_op_errors_total{op=...}            Open/Next failures
///   hermes_exec_op_sim_ms{op=...}                  virtual open→close envelope
///
/// Bound once per registry (Mediator owns one instance shared by every
/// per-query Executor); the PhysicalOp wrappers update it on the hot path
/// through ExecContext::op_metrics, which may be null (raw Executor use).
struct ExecOpMetrics {
  struct PerKind {
    std::shared_ptr<obs::Counter> opens;
    std::shared_ptr<obs::Counter> rows;
    std::shared_ptr<obs::Counter> errors;
    std::shared_ptr<obs::Histogram> sim_ms;
  };

  /// Registers the series for every operator kind in `registry`.
  static std::shared_ptr<ExecOpMetrics> Bind(obs::MetricsRegistry& registry);

  PerKind& ForKind(OpKind kind);

  /// hermes_exec_arena_bytes: bytes handed out by the per-query execution
  /// arena, set by the executor when a query finishes (last query wins —
  /// the usual gauge semantics).
  std::shared_ptr<obs::Gauge> arena_bytes;

  PerKind domain_call;
  PerKind rule_predicate;
  PerKind filter;
  PerKind nested_loop_join;
  PerKind scatter_gather;
  PerKind project;
  PerKind answer_sink;
  PerKind unit;
};

}  // namespace hermes::engine::op

#endif  // HERMES_ENGINE_OP_OP_METRICS_H_
