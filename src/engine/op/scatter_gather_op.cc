#include "engine/op/scatter_gather_op.h"

#include <functional>
#include <string>
#include <utility>

#include "engine/op/explain.h"
#include "obs/flight_recorder.h"

namespace hermes::engine::op {

ScatterGatherOp::ScatterGatherOp(
    std::vector<std::unique_ptr<DomainCallOp>> calls)
    : calls_(std::move(calls)) {
  for (std::unique_ptr<DomainCallOp>& call : calls_) {
    call->set_async_marker(true);
  }
}

std::string ScatterGatherOp::label() const { return "ScatterGather"; }

Status ScatterGatherOp::OpenImpl(ExecContext& cx, double t_open) {
  open_depth_ = 0;
  if (cx.ctx->recorder != nullptr) {
    obs::FlightEvent ev = obs::FlightEvent::Make(
        obs::FlightEventKind::kScatterFanout, cx.ctx->query_id,
        cx.ctx->recorder_seq++, t_open);
    ev.value = static_cast<double>(calls_.size());
    cx.ctx->recorder->Emit(ev);
  }
  // Scatter: issue every member's call at the group's open time. The
  // virtual clock does not advance between issues, so the members' round
  // trips overlap — the gather below observes each answer at
  // t_open + that member's own arrival offset.
  for (std::unique_ptr<DomainCallOp>& call : calls_) {
    HERMES_RETURN_IF_ERROR(call->IssueAsync(cx, t_open));
  }
  open_depth_ = 1;  // before Open: Close must reach a partial open
  return calls_[0]->Open(cx, t_open);
}

Result<bool> ScatterGatherOp::NextImpl(ExecContext& cx, double t_resume,
                                       double* t_out) {
  // The n-ary pipelined nested-loop odometer: pull the deepest open
  // member; a row descends (opening the next member's cursor at the row's
  // time — a cursor re-open, not a re-issue), exhaustion ascends (the
  // inner stream's completion resumes the outer member).
  while (open_depth_ > 0) {
    DomainCallOp* current = calls_[open_depth_ - 1].get();
    double t = 0.0;
    Result<bool> row = current->Next(cx, t_resume, &t);
    if (!row.ok()) return row.status();
    if (*row) {
      if (open_depth_ == calls_.size()) {
        *t_out = t;
        return true;
      }
      ++open_depth_;
      HERMES_RETURN_IF_ERROR(calls_[open_depth_ - 1]->Open(cx, t));
      t_resume = t;
      continue;
    }
    current->Close(cx);
    --open_depth_;
    if (open_depth_ == 0) {
      *t_out = t;
      return false;
    }
    t_resume = t;
  }
  *t_out = t_resume;
  return false;
}

void ScatterGatherOp::CloseImpl(ExecContext& cx) {
  while (open_depth_ > 0) {
    calls_[open_depth_ - 1]->Close(cx);
    --open_depth_;
  }
  // Release the issued outputs; the next Open scatters afresh (outer
  // bindings may have changed the grounded arguments).
  for (std::unique_ptr<DomainCallOp>& call : calls_) {
    call->ResetAsync();
  }
}

std::vector<PhysicalOp*> ScatterGatherOp::children() {
  std::vector<PhysicalOp*> kids;
  kids.reserve(calls_.size());
  for (std::unique_ptr<DomainCallOp>& call : calls_) {
    kids.push_back(call.get());
  }
  return kids;
}

void ScatterGatherOp::Explain(ExplainPrinter& printer) {
  std::vector<std::function<void()>> kids;
  kids.reserve(calls_.size());
  for (std::unique_ptr<DomainCallOp>& call : calls_) {
    DomainCallOp* raw = call.get();
    kids.push_back([raw, &printer] { raw->Explain(printer); });
  }
  printer.NodeFor(*this, "[fanout=" + std::to_string(calls_.size()) + "]",
                  std::move(kids));
}

}  // namespace hermes::engine::op
