#ifndef HERMES_ENGINE_OP_COMPILE_H_
#define HERMES_ENGINE_OP_COMPILE_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/op/op.h"
#include "engine/op/sink_ops.h"

namespace hermes::engine::op {

class NestedLoopJoinOp;

/// One position on the top-level left-deep join spine: the join whose
/// right child evaluates `goals[goal_start .. goal_start+goal_count)` of
/// the compiled query. Recorded only when CompileOptions::record_spine is
/// set; the replan layer uses it to splice re-optimized suffixes.
struct SpineSlot {
  NestedLoopJoinOp* join = nullptr;  ///< Borrowed from the tree.
  size_t goal_start = 0;             ///< First query-goal index covered.
  size_t goal_count = 1;             ///< >1 for a scatter-gather run.
  bool single_domain_call = false;   ///< Right child is one DomainCallOp.
};

/// One query lowered to a physical operator tree:
///
///   AnswerSink ← Project ← left-deep NestedLoopJoin chain over the goals
///
/// The goal operators borrow the Atoms of `program`/`query` passed to
/// Compile — both must outlive the compiled tree (optimizer::CompiledPlan
/// packages tree + owned plan for callers that need a self-contained
/// artifact).
struct CompiledQuery {
  std::unique_ptr<PhysicalOp> root;
  AnswerSinkOp* sink = nullptr;  ///< Borrowed from `root`.
  std::vector<std::string> var_names;
  /// Result-row shape: one field per var_names entry, with types pinned at
  /// compile time where the query text determines them (see InferSchema).
  /// The executor points ExecContext::schema at this.
  RowSchema schema;
  /// Top-level join spine, outer to inner; empty unless
  /// CompileOptions::record_spine was set (replanning needs it).
  std::vector<SpineSlot> spine;
};

/// Compile-time knobs of the lowering. The defaults reproduce the
/// historical tree shape exactly — no ScatterGather nodes — so EXPLAIN
/// output and virtual-clock accounting are byte-identical with the async
/// feature off.
struct CompileOptions {
  /// Group maximal runs of *consecutive, independent* domain-call goals
  /// (no member reads or re-binds another member's output variable) into a
  /// ScatterGatherOp, which issues their source calls concurrently so the
  /// run's simulated latency is the max over members rather than the sum.
  bool async_scatter_gather = false;
  /// Record the top-level join spine in CompiledQuery::spine and number
  /// its joins so the replan layer can address them. Off by default: the
  /// tree shape is identical either way, this only captures pointers.
  bool record_spine = false;
};

/// Lowers one goal atom: kDomainCall → DomainCallOp, kComparison →
/// FilterOp, kPredicate → RulePredicateOp. `depth` is the goal's
/// rule-nesting depth (the recursion guard's measure).
std::unique_ptr<PhysicalOp> CompileGoal(const lang::Atom& goal,
                                        const lang::Program& program,
                                        size_t depth,
                                        const CompileOptions& options = {});

/// Lowers a goal conjunction into a left-deep NestedLoopJoin chain
/// (a UnitOp when the conjunction is empty — facts, the empty query),
/// with independent domain-call runs grouped per `options`. When `spine`
/// is non-null (and options.record_spine set) the join spine is appended
/// to it in goal order (innermost join first, root join last).
std::unique_ptr<PhysicalOp> CompileGoals(const std::vector<lang::Atom>& goals,
                                         const lang::Program& program,
                                         size_t depth,
                                         const CompileOptions& options = {},
                                         std::vector<SpineSlot>* spine =
                                             nullptr);

/// Lowers a whole query: goals → Project(var_names) → AnswerSink.
CompiledQuery Compile(const lang::Program& program, const lang::Query& query,
                      const CompileOptions& options = {});

/// Query variables in order of first occurrence (plain variables only;
/// `$b` and paths do not introduce result columns).
std::vector<std::string> QueryVariables(const lang::Query& query);

/// Static result-row schema of `query`: one column per result variable,
/// typed where the query pins the type — an `=(V, const)` comparison types
/// V as the constant, and a variable passed to a predicate whose matching
/// rule heads all carry same-typed constants at that position inherits that
/// type. Everything else stays kAny (domains are dynamically typed).
RowSchema InferSchema(const lang::Program& program, const lang::Query& query);

}  // namespace hermes::engine::op

#endif  // HERMES_ENGINE_OP_COMPILE_H_
