#ifndef HERMES_ENGINE_OP_SINK_OPS_H_
#define HERMES_ENGINE_OP_SINK_OPS_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/op/op.h"

namespace hermes::engine::op {

/// Builds the result row (`var_names` order, unbound variables → Null)
/// from the current bindings into ExecContext::staged_row as a flat
/// arena-backed Row against ExecContext::schema. Timing-neutral.
class ProjectOp final : public PhysicalOp {
 public:
  ProjectOp(std::unique_ptr<PhysicalOp> child,
            std::vector<std::string> var_names)
      : child_(std::move(child)), var_names_(std::move(var_names)) {}

  OpKind kind() const override { return OpKind::kProject; }
  std::string label() const override;

  void ResetStatsTree() override {
    PhysicalOp::ResetStatsTree();
    child_->ResetStatsTree();
  }

 protected:
  Status OpenImpl(ExecContext& cx, double t_open) override;
  Result<bool> NextImpl(ExecContext& cx, double t_resume,
                        double* t_out) override;
  void CloseImpl(ExecContext& cx) override;
  std::vector<PhysicalOp*> children() override { return {child_.get()}; }

 private:
  std::unique_ptr<PhysicalOp> child_;
  std::vector<std::string> var_names_;
};

/// Accumulates the projected rows and implements the paper's two modes of
/// operation: all-answers drains the pipeline; interactive stops it after
/// the first batch (the sink keeps returning the batch's rows but never
/// pulls its child again, so no further domain calls are issued — the
/// walker's `state->stop` cut). Tracks T_f and completeness for the driver.
class AnswerSinkOp final : public PhysicalOp {
 public:
  explicit AnswerSinkOp(std::unique_ptr<PhysicalOp> child)
      : child_(std::move(child)) {}

  OpKind kind() const override { return OpKind::kAnswerSink; }
  std::string label() const override { return "AnswerSink"; }

  /// Materializes the accumulated flat rows as heap-owned value lists —
  /// the mediator-boundary conversion. Must run before the query's arena
  /// is reset (the rows alias arena storage).
  std::vector<ValueList> TakeAnswers();
  bool has_first() const { return has_first_; }
  double t_first() const { return t_first_; }
  bool complete() const { return complete_; }

  void ResetStatsTree() override {
    PhysicalOp::ResetStatsTree();
    child_->ResetStatsTree();
  }

 protected:
  Status OpenImpl(ExecContext& cx, double t_open) override;
  Result<bool> NextImpl(ExecContext& cx, double t_resume,
                        double* t_out) override;
  void CloseImpl(ExecContext& cx) override;
  std::vector<PhysicalOp*> children() override { return {child_.get()}; }

 private:
  std::unique_ptr<PhysicalOp> child_;
  std::vector<Row> rows_;  ///< Arena-backed; 2-word handles, no heap data.
  bool has_first_ = false;
  double t_first_ = 0.0;
  bool stopped_ = false;
  bool complete_ = true;
};

}  // namespace hermes::engine::op

#endif  // HERMES_ENGINE_OP_SINK_OPS_H_
