#include "engine/op/filter_op.h"

#include "engine/op/explain.h"

namespace hermes::engine::op {

std::string FilterOp::label() const { return "Filter " + goal_->ToString(); }

Status FilterOp::OpenImpl(ExecContext& cx, double t_open) {
  frame_.reset();
  has_row_ = false;
  delivered_ = false;

  const lang::Atom& goal = *goal_;
  t_emit_ = t_open + cx.params->comparison_cost_ms;
  bool lhs_ok = TermIsResolvable(goal.lhs, *cx.bindings);
  bool rhs_ok = TermIsResolvable(goal.rhs, *cx.bindings);
  if (lhs_ok && rhs_ok) {
    // View resolution: both sides are compared in place — per-row filter
    // evaluation copies no Values.
    HERMES_ASSIGN_OR_RETURN(const Value* lhs,
                            ResolveTermPtr(goal.lhs, *cx.bindings));
    HERMES_ASSIGN_OR_RETURN(const Value* rhs,
                            ResolveTermPtr(goal.rhs, *cx.bindings));
    has_row_ = lang::EvalRelOp(goal.op, *lhs, *rhs);
    return Status::OK();
  }
  if (goal.op == lang::RelOp::kEq && (lhs_ok || rhs_ok)) {
    const lang::Term& known = lhs_ok ? goal.lhs : goal.rhs;
    const lang::Term& free = lhs_ok ? goal.rhs : goal.lhs;
    if (!free.is_variable() || !free.path.empty()) {
      return Status::InvalidArgument("cannot bind through '" +
                                     free.ToString() + "' in " +
                                     goal.ToString());
    }
    // The view targets storage bound upstream of this operator (or the AST
    // constant), both of which outlive this open — LIFO discipline.
    HERMES_ASSIGN_OR_RETURN(const Value* v,
                            ResolveTermPtr(known, *cx.bindings));
    frame_.emplace(cx.bindings);
    frame_->BindView(free.var_name, v);
    has_row_ = true;
    return Status::OK();
  }
  return Status::InvalidArgument(
      "comparison over unbound variables at execution time: " +
      goal.ToString());
}

Result<bool> FilterOp::NextImpl(ExecContext& cx, double t_resume,
                                double* t_out) {
  (void)cx;
  if (has_row_ && !delivered_) {
    delivered_ = true;
    *t_out = t_emit_;
    return true;
  }
  if (has_row_) {
    *t_out = t_resume;  // the consumed row's subtree sets the completion
    return false;
  }
  *t_out = t_emit_;  // failed comparison: charged, no row
  return false;
}

void FilterOp::CloseImpl(ExecContext& cx) {
  (void)cx;
  frame_.reset();
}

void FilterOp::Explain(ExplainPrinter& printer) {
  const lang::Atom& goal = *goal_;
  std::set<std::string>& bound = printer.bound();
  auto statically_bound = [&bound](const lang::Term& t) {
    return t.is_constant() ||
           (t.is_variable() && bound.count(t.var_name) > 0);
  };
  bool lhs_ok = statically_bound(goal.lhs);
  bool rhs_ok = statically_bound(goal.rhs);
  std::string annotations;
  if (goal.op == lang::RelOp::kEq && lhs_ok != rhs_ok) {
    const lang::Term& free = lhs_ok ? goal.rhs : goal.lhs;
    if (free.is_variable() && free.path.empty()) {
      annotations = "[binds " + free.var_name + "]";
      printer.NodeFor(*this, annotations, {});
      bound.insert(free.var_name);
      return;
    }
  }
  annotations = lhs_ok && rhs_ok ? "[check]" : "[unbound at plan time]";
  printer.NodeFor(*this, annotations, {});
}

}  // namespace hermes::engine::op
