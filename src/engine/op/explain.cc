#include "engine/op/explain.h"

#include <cstdio>
#include <utility>

namespace hermes::engine::op {

void ExplainPrinter::Node(const std::string& text,
                          std::vector<std::function<void()>> children) {
  out_ += pending_prefix_ + text + "\n";
  std::string saved_indent = indent_;
  for (size_t i = 0; i < children.size(); ++i) {
    bool last = i + 1 == children.size();
    pending_prefix_ = saved_indent + (last ? "└─ " : "├─ ");
    indent_ = saved_indent + (last ? "   " : "│  ");
    children[i]();
  }
  indent_ = saved_indent;
}

void ExplainPrinter::NodeFor(PhysicalOp& oper, const std::string& annotations,
                             std::vector<std::function<void()>> children) {
  std::string text = oper.label();
  if (!annotations.empty()) text += " " + annotations;
  if (options_.actuals) {
    const OpStats& s = oper.stats();
    text += " (actual: opens=" + std::to_string(s.opens) +
            " rows=" + std::to_string(s.rows) +
            " sim=" + FormatNum(s.sim_total_ms) + "ms" + oper.ActualExtras() +
            ")";
  }
  Node(text, std::move(children));
}

bool ExplainPrinter::OnPath(const std::string& predicate) const {
  for (const std::string& p : path_) {
    if (p == predicate) return true;
  }
  return false;
}

std::string ExplainPrinter::FormatNum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string ExplainTree(PhysicalOp& root, const ExplainOptions& options) {
  ExplainPrinter printer(options);
  root.Explain(printer);
  return printer.Take();
}

}  // namespace hermes::engine::op
