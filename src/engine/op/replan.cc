#include "engine/op/replan.h"

#include <algorithm>
#include <set>
#include <utility>

#include "dcsm/dcsm.h"
#include "engine/op/domain_call_op.h"
#include "engine/op/explain.h"
#include "engine/op/join_op.h"
#include "obs/flight_recorder.h"

namespace hermes::engine::op {

namespace {

/// Variables a domain-call goal touches: argument variables are read, the
/// output variable is written (a membership check reads it — treating it
/// as touched either way keeps the criterion conservative).
bool GoalTouchesVar(const lang::Atom& goal, const std::string& var) {
  for (const lang::Term& arg : goal.call.args) {
    if (arg.is_variable() && arg.var_name == var) return true;
  }
  return goal.output.is_variable() && goal.output.var_name == var;
}

/// True when the two domain-call goals may be reordered: neither touches
/// the variable the other binds. The same criterion family as the
/// scatter-gather grouping in compile.cc, applied pairwise.
bool IndependentGoals(const lang::Atom& a, const lang::Atom& b) {
  if (a.output.is_variable() && GoalTouchesVar(b, a.output.var_name)) {
    return false;
  }
  if (b.output.is_variable() && GoalTouchesVar(a, b.output.var_name)) {
    return false;
  }
  return true;
}

std::string GoalName(const lang::Atom& goal) {
  return goal.call.domain + ":" + goal.call.function;
}

}  // namespace

std::string ReplanEvent::ToString() const {
  std::string out = "replanned@spine[" + std::to_string(spine_index) +
                    "] trigger=" + trigger + " t=" +
                    ExplainPrinter::FormatNum(sim_ms) + "ms\n";
  out += "  old: " + old_suffix;
  if (old_est_ms > 0.0) {
    out += " est=[Ta=" + ExplainPrinter::FormatNum(old_est_ms) + "ms]";
  }
  out += "\n  new: " + new_suffix;
  if (new_est_ms > 0.0) {
    out += " est=[Ta=" + ExplainPrinter::FormatNum(new_est_ms) + "ms]";
  }
  out += "\n";
  return out;
}

ReplanManager::ReplanManager(Setup setup)
    : program_(setup.program),
      compile_options_(setup.compile_options),
      site_of_(std::move(setup.site_of)),
      cim_domains_(std::move(setup.cim_domains)),
      options_(setup.options) {
  positions_.reserve(setup.spine.size());
  for (const SpineSlot& slot : setup.spine) {
    Position pos;
    pos.slot = slot;
    if (slot.single_domain_call && setup.goals != nullptr &&
        slot.goal_start < setup.goals->size()) {
      pos.atom = &(*setup.goals)[slot.goal_start];
      if (slot.goal_start < setup.estimates.size()) {
        pos.estimate = setup.estimates[slot.goal_start];
      }
      goal_positions_[pos.atom] = positions_.size();
    }
    positions_.push_back(std::move(pos));
  }
}

void ReplanManager::ObserveCall(const lang::Atom* goal, double all_ms,
                                double card) {
  if (!options_.enabled || options_.divergence_factor <= 0.0) return;
  if (divergence_pending_) return;
  auto it = goal_positions_.find(goal);
  if (it == goal_positions_.end()) return;
  const GoalEstimate& est = positions_[it->second].estimate;
  if (!est.valid) return;
  const double n = options_.divergence_factor;
  bool diverged = false;
  double ratio = 1.0;
  if (est.t_all_ms > 0.0) {
    const double r = all_ms / est.t_all_ms;
    if (r > n || r < 1.0 / n) {
      diverged = true;
      ratio = r;
    }
  }
  if (!diverged && est.cardinality > 0.0) {
    const double r = card / est.cardinality;
    if (r > n || r < 1.0 / n) {
      diverged = true;
      ratio = r;
    }
  }
  if (!diverged) return;
  divergence_pending_ = true;
  divergence_domain_ = goal->call.domain;
  divergence_ratio_ = ratio;
  divergence_detail_ =
      "divergence domain=" + GoalName(*goal) +
      " observed=[Ta=" + ExplainPrinter::FormatNum(all_ms) +
      "ms card=" + ExplainPrinter::FormatNum(card) +
      "] est=[Ta=" + ExplainPrinter::FormatNum(est.t_all_ms) +
      "ms card=" + ExplainPrinter::FormatNum(est.cardinality) + "]";
}

bool ReplanManager::BreakerTrigger(const ExecContext& cx, size_t from,
                                   std::string* trigger, std::string* site,
                                   std::string* domain) const {
  if (!options_.on_breaker_open || site_of_ == nullptr) return false;
  for (size_t p = from; p < positions_.size(); ++p) {
    const Position& pos = positions_[p];
    if (pos.atom == nullptr) continue;
    const std::string s = site_of_(pos.atom->call.domain);
    if (s.empty()) continue;
    auto it = cx.ctx->breaker_states.find(s);
    if (it == cx.ctx->breaker_states.end()) continue;
    if (it->second.state != CallContext::BreakerState::kOpen) continue;
    *site = s;
    *domain = pos.atom->call.domain;
    *trigger = "breaker_open site=" + s + " domain=" + *domain;
    return true;
  }
  return false;
}

double ReplanManager::RankOf(const Position& pos) const {
  double rank = pos.estimate.valid ? pos.estimate.t_all_ms : 0.0;
  if (divergence_pending_ && pos.atom != nullptr &&
      pos.atom->call.domain == divergence_domain_ &&
      divergence_ratio_ > 1.0) {
    rank *= divergence_ratio_;
  }
  return rank;
}

Status ReplanManager::MaybeReplan(ExecContext& cx, size_t spine_index,
                                  double t_now) {
  if (!options_.enabled) return Status::OK();
  if (events_.size() >= options_.max_replans) return Status::OK();
  if (spine_index >= positions_.size()) return Status::OK();

  std::string trigger, site, domain;
  if (!BreakerTrigger(cx, spine_index, &trigger, &site, &domain)) {
    if (divergence_pending_) {
      trigger = divergence_detail_;
      domain = divergence_domain_;
      if (site_of_ != nullptr) site = site_of_(domain);
    }
  }
  if (trigger.empty()) return Status::OK();

  SpliceSuffix(cx, spine_index, spine_index, trigger, site, domain, t_now);
  divergence_pending_ = false;
  return Status::OK();
}

void ReplanManager::SpliceSuffix(ExecContext& cx, size_t from,
                                 size_t trigger_pos,
                                 const std::string& trigger,
                                 const std::string& site,
                                 const std::string& domain, double t_now) {
  (void)trigger_pos;
  // Snapshot the old suffix for the event record.
  ReplanEvent event;
  event.spine_index = from;
  event.trigger = trigger;
  event.sim_ms = t_now;
  for (size_t p = from; p < positions_.size(); ++p) {
    const Position& pos = positions_[p];
    if (!event.old_suffix.empty()) event.old_suffix += " & ";
    event.old_suffix += pos.atom != nullptr ? pos.atom->ToString()
                                            : std::string("<subtree>");
    if (pos.estimate.valid) event.old_est_ms += pos.estimate.t_all_ms;
  }

  // 1) Redirect breaker-open goals to their CIM wrapper domain when one is
  //    registered (an owned rewritten copy of the goal; the CIM serves the
  //    cached answers locally instead of the broken site).
  for (size_t p = from; p < positions_.size(); ++p) {
    Position& pos = positions_[p];
    if (pos.atom == nullptr || site_of_ == nullptr) continue;
    const std::string s = site_of_(pos.atom->call.domain);
    if (s.empty()) continue;
    auto it = cx.ctx->breaker_states.find(s);
    if (it == cx.ctx->breaker_states.end() ||
        it->second.state != CallContext::BreakerState::kOpen) {
      continue;
    }
    bool redirectable =
        std::find(cim_domains_.begin(), cim_domains_.end(),
                  pos.atom->call.domain) != cim_domains_.end();
    if (!redirectable) continue;
    owned_atoms_.push_back(*pos.atom);
    lang::Atom& rewritten = owned_atoms_.back();
    rewritten.call.domain = "cim_" + rewritten.call.domain;
    goal_positions_.erase(pos.atom);
    pos.atom = &rewritten;
    pos.estimate = GoalEstimate{};  // the wrapper's cost is unknown
    goal_positions_[pos.atom] = p;
  }

  // 2) Stable dependency-respecting reorder of the replannable suffix:
  //    cheaper (or non-broken) goals bubble ahead of pricier ones, but a
  //    goal never moves past a goal it shares a bound variable with, and
  //    fixed positions (scatter-gather runs, rules, filters) are barriers.
  auto rank_with_breaker = [this, &cx](const Position& pos) {
    double rank = RankOf(pos);
    if (pos.atom != nullptr && site_of_ != nullptr) {
      const std::string s = site_of_(pos.atom->call.domain);
      if (!s.empty()) {
        auto it = cx.ctx->breaker_states.find(s);
        if (it != cx.ctx->breaker_states.end() &&
            it->second.state == CallContext::BreakerState::kOpen) {
          rank += 1e12;  // still broken and unredirectable: run it last
        }
      }
    }
    return rank;
  };
  for (size_t pass = from; pass < positions_.size(); ++pass) {
    for (size_t p = from; p + 1 < positions_.size(); ++p) {
      Position& a = positions_[p];
      Position& b = positions_[p + 1];
      if (a.atom == nullptr || b.atom == nullptr) continue;  // barrier
      if (rank_with_breaker(a) <= rank_with_breaker(b)) continue;
      if (!IndependentGoals(*a.atom, *b.atom)) continue;
      std::swap(a.atom, b.atom);
      std::swap(a.estimate, b.estimate);
      goal_positions_[a.atom] = p;
      goal_positions_[b.atom] = p + 1;
    }
  }

  // 3) Splice: re-lower every suffix position whose goal assignment
  //    changed and swap it into its spine join. Safe here: the right
  //    subtree of every spine join at positions >= from is closed.
  uint64_t spliced = 0;
  for (size_t p = from; p < positions_.size(); ++p) {
    Position& pos = positions_[p];
    if (pos.atom == nullptr) continue;
    NestedLoopJoinOp* join = pos.slot.join;
    DomainCallOp* current = dynamic_cast<DomainCallOp*>(join->right());
    if (current != nullptr && &current->goal() == pos.atom) continue;
    join->ReplaceRight(CompileGoal(*pos.atom, *program_, 0, compile_options_));
    join->set_replanned_marker("replanned@" + GoalName(*pos.atom));
    ++spliced;
  }
  if (spliced == 0) {
    // Nothing to change (no redirect available, no legal reorder): don't
    // record a replan, and disarm the triggers so the check does not
    // re-fire at every remaining open-right boundary.
    divergence_pending_ = false;
    options_.enabled = false;
    return;
  }
  splices_ += spliced;

  for (size_t p = from; p < positions_.size(); ++p) {
    const Position& pos = positions_[p];
    if (!event.new_suffix.empty()) event.new_suffix += " & ";
    event.new_suffix += pos.atom != nullptr ? pos.atom->ToString()
                                            : std::string("<subtree>");
    if (pos.estimate.valid) event.new_est_ms += pos.estimate.t_all_ms;
  }

  if (cx.ctx->recorder != nullptr) {
    obs::FlightEvent ev = obs::FlightEvent::Make(
        obs::FlightEventKind::kReplan, cx.ctx->query_id,
        cx.ctx->recorder_seq++, t_now);
    ev.set_site(site);
    ev.set_domain(domain);
    ev.set_detail(trigger.substr(0, trigger.find(' ')));
    ev.value = static_cast<double>(from);
    ev.aux = spliced;
    cx.ctx->recorder->Emit(ev);
  }
  events_.push_back(std::move(event));
}

std::vector<GoalEstimate> SnapshotGoalEstimates(
    const dcsm::Dcsm* dcsm, const std::vector<lang::Atom>& goals) {
  std::vector<GoalEstimate> out(goals.size());
  std::set<std::string> bound;
  for (size_t i = 0; i < goals.size(); ++i) {
    const lang::Atom& goal = goals[i];
    switch (goal.kind) {
      case lang::Atom::Kind::kDomainCall: {
        lang::DomainCallSpec pattern;
        pattern.domain = goal.call.domain;
        pattern.function = goal.call.function;
        bool estimable = true;
        for (const lang::Term& arg : goal.call.args) {
          if (arg.is_constant()) {
            pattern.args.push_back(arg);
          } else if (arg.is_variable() && bound.count(arg.var_name) > 0) {
            pattern.args.push_back(lang::Term::Bound());
          } else {
            estimable = false;
          }
        }
        if (estimable && dcsm != nullptr) {
          Result<dcsm::CostEstimate> est = dcsm->Cost(pattern);
          if (est.ok()) {
            out[i].t_all_ms = est->cost.t_all_ms;
            out[i].cardinality = est->cost.cardinality;
            out[i].valid = true;
          }
        }
        if (goal.output.is_variable()) bound.insert(goal.output.var_name);
        break;
      }
      case lang::Atom::Kind::kComparison:
        if (goal.op == lang::RelOp::kEq) {
          if (goal.lhs.is_variable()) bound.insert(goal.lhs.var_name);
          if (goal.rhs.is_variable()) bound.insert(goal.rhs.var_name);
        }
        break;
      case lang::Atom::Kind::kPredicate:
        for (const lang::Term& arg : goal.args) {
          if (arg.is_variable()) bound.insert(arg.var_name);
        }
        break;
    }
  }
  return out;
}

}  // namespace hermes::engine::op
