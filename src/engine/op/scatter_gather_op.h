#ifndef HERMES_ENGINE_OP_SCATTER_GATHER_OP_H_
#define HERMES_ENGINE_OP_SCATTER_GATHER_OP_H_

#include <memory>
#include <vector>

#include "engine/op/domain_call_op.h"
#include "engine/op/op.h"

namespace hermes::engine::op {

/// Concurrent issue over the simulated network: a run of independent
/// domain calls (no member reads another member's output variable) whose
/// calls are all launched at the group's Open time and whose rows are then
/// joined with the usual pipelined nested-loop odometer.
///
/// Because every member's arrival base is pinned at the shared issue time,
/// the group's completion is governed by the *slowest* member — max over
/// branches — where the sequential join chain pays the sum (and re-issues
/// the inner calls once per outer row). Row enumeration order is identical
/// to the equivalent left-deep NestedLoopJoin chain, so answer sets and
/// ordering do not change; only the virtual clock (and the number of
/// source calls) does.
class ScatterGatherOp final : public PhysicalOp {
 public:
  /// `calls` must have ≥ 2 members; the compiler guarantees independence.
  explicit ScatterGatherOp(std::vector<std::unique_ptr<DomainCallOp>> calls);

  OpKind kind() const override { return OpKind::kScatterGather; }
  std::string label() const override;
  void Explain(ExplainPrinter& printer) override;

  void ResetStatsTree() override {
    PhysicalOp::ResetStatsTree();
    for (auto& call : calls_) call->ResetStatsTree();
  }

 protected:
  Status OpenImpl(ExecContext& cx, double t_open) override;
  Result<bool> NextImpl(ExecContext& cx, double t_resume,
                        double* t_out) override;
  void CloseImpl(ExecContext& cx) override;
  std::vector<PhysicalOp*> children() override;

 private:
  std::vector<std::unique_ptr<DomainCallOp>> calls_;
  /// Number of members with an open cursor (members [0, open_depth_)).
  size_t open_depth_ = 0;
};

}  // namespace hermes::engine::op

#endif  // HERMES_ENGINE_OP_SCATTER_GATHER_OP_H_
