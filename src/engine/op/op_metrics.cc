#include "engine/op/op_metrics.h"

namespace hermes::engine::op {
namespace {

constexpr OpKind kAllKinds[] = {
    OpKind::kDomainCall, OpKind::kRulePredicate,  OpKind::kFilter,
    OpKind::kNestedLoopJoin, OpKind::kScatterGather, OpKind::kProject,
    OpKind::kAnswerSink, OpKind::kUnit,
};

}  // namespace

std::shared_ptr<ExecOpMetrics> ExecOpMetrics::Bind(
    obs::MetricsRegistry& registry) {
  auto m = std::make_shared<ExecOpMetrics>();
  m->arena_bytes = registry.GetOrAddGauge(
      "hermes_exec_arena_bytes",
      "Bytes allocated from the per-query execution arena (last finished "
      "query)");
  for (OpKind kind : kAllKinds) {
    obs::Labels labels = {{"op", OpKindName(kind)}};
    PerKind& pk = m->ForKind(kind);
    pk.opens = registry.GetOrAddCounter(
        "hermes_exec_op_opens_total",
        "Physical operator Open() calls by operator kind", labels);
    pk.rows = registry.GetOrAddCounter(
        "hermes_exec_op_rows_total",
        "Rows produced by physical operators by operator kind", labels);
    pk.errors = registry.GetOrAddCounter(
        "hermes_exec_op_errors_total",
        "Physical operator Open()/Next() failures by operator kind", labels);
    pk.sim_ms = registry.GetOrAddHistogram(
        "hermes_exec_op_sim_ms",
        "Virtual open-to-close envelope of physical operators (simulated ms)",
        obs::Histogram::ExponentialBounds(0.01, 4.0, 12), labels);
  }
  return m;
}

ExecOpMetrics::PerKind& ExecOpMetrics::ForKind(OpKind kind) {
  switch (kind) {
    case OpKind::kDomainCall:
      return domain_call;
    case OpKind::kRulePredicate:
      return rule_predicate;
    case OpKind::kFilter:
      return filter;
    case OpKind::kNestedLoopJoin:
      return nested_loop_join;
    case OpKind::kScatterGather:
      return scatter_gather;
    case OpKind::kProject:
      return project;
    case OpKind::kAnswerSink:
      return answer_sink;
    case OpKind::kUnit:
      return unit;
  }
  return unit;  // unreachable
}

}  // namespace hermes::engine::op
