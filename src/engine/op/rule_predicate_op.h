#ifndef HERMES_ENGINE_OP_RULE_PREDICATE_OP_H_
#define HERMES_ENGINE_OP_RULE_PREDICATE_OP_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/op/compile.h"
#include "engine/op/op.h"

namespace hermes::engine::op {

/// Expands an IDB predicate goal by trying its rules in program order.
///
/// For each rule whose head matches (name + arity), the head is unified
/// with the caller's arguments into a fresh local binding scope; the rule
/// body — lazily compiled into its own operator subtree, which is what
/// bounds recursion: a deeper level is only compiled when execution
/// actually reaches it, and Open() fails with the recursion-depth guard
/// first — streams solutions, each of which is bound back onto the
/// caller's free variables and surfaced at t + unification_cost_ms.
///
/// Rules run sequentially on the virtual clock: rule k+1's body opens at
/// the time rule k's body completed (the walker's t_cursor). On clean
/// exhaustion the operator reports the invocation's measured cost vector
/// to the stats layer under the pseudo-domain "idb" — the paper's
/// Section 8 predicate-Tf caching extension (early termination skips the
/// sample, exactly as the walker's `!state->stop` guard did).
class RulePredicateOp final : public PhysicalOp {
 public:
  /// `atom` (kind kPredicate) and `program` are borrowed; they must
  /// outlive the operator. `depth` is the rule-nesting depth of this goal.
  /// `options` carries the compile knobs down into lazily-compiled rule
  /// bodies (where scatter-gather fan-out typically lives).
  RulePredicateOp(const lang::Atom* atom, const lang::Program* program,
                  size_t depth, CompileOptions options = {});

  OpKind kind() const override { return OpKind::kRulePredicate; }
  std::string label() const override;
  void Explain(ExplainPrinter& printer) override;

  void ResetStatsTree() override {
    PhysicalOp::ResetStatsTree();
    for (auto& body : bodies_) {
      if (body != nullptr) body->ResetStatsTree();
    }
  }

 protected:
  Status OpenImpl(ExecContext& cx, double t_open) override;
  Result<bool> NextImpl(ExecContext& cx, double t_resume,
                        double* t_out) override;
  void CloseImpl(ExecContext& cx) override;

 private:
  struct BackBinding {
    std::string caller_var;       // free caller variable to bind
    const lang::Term* head_term;  // resolved against the rule's bindings
  };

  /// Lazily compiles the body subtree of matching_[rule_pos].
  PhysicalOp* EnsureBody(size_t rule_pos);

  /// Unifies the head of `rule` with the caller's arguments into a fresh
  /// `local_` scope and collects `back_`. Returns false (without error)
  /// when the rule is inapplicable.
  Result<bool> UnifyHead(ExecContext& cx, const lang::Rule& rule);

  /// Reports the finished invocation to the stats layer (pseudo-domain
  /// "idb"); unresolvable (output) arguments become null wildcards.
  void RecordInvocation(ExecContext& cx);

  const lang::Atom* atom_;
  const lang::Program* program_;
  size_t depth_;
  CompileOptions options_;
  std::vector<size_t> matching_;  ///< Rule indices with matching name+arity.
  std::vector<std::unique_ptr<PhysicalOp>> bodies_;  ///< Parallel, lazy.

  // Per-open state.
  Bindings local_;  ///< The active rule's binding scope.
  std::vector<BackBinding> back_;
  std::optional<BindingFrame> back_frame_;  ///< Caller-side output bindings.
  size_t rule_pos_ = 0;
  bool body_open_ = false;
  double body_resume_ = 0.0;
  double cursor_ = 0.0;  ///< Completion time of the rules finished so far.
  double t_open_ = 0.0;
  double last_emit_ = 0.0;
  double first_solution_t_ = -1.0;
  size_t solutions_ = 0;
  uint64_t rule_span_ = 0;
};

}  // namespace hermes::engine::op

#endif  // HERMES_ENGINE_OP_RULE_PREDICATE_OP_H_
