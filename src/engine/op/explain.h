#ifndef HERMES_ENGINE_OP_EXPLAIN_H_
#define HERMES_ENGINE_OP_EXPLAIN_H_

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "engine/op/op.h"

namespace hermes::dcsm {
class Dcsm;
}  // namespace hermes::dcsm

namespace hermes::engine::op {

/// Knobs of one EXPLAIN rendering.
struct ExplainOptions {
  /// When set, DomainCallOp nodes are annotated with the DCSM's cost
  /// estimate for their call pattern under the plan's static adornments
  /// (bound arguments become `$b`). Dcsm::Cost is const and thread-safe,
  /// so EXPLAIN can run concurrently with query execution.
  const dcsm::Dcsm* dcsm = nullptr;
  /// Include post-run per-operator actuals (rows, opens, virtual time).
  bool actuals = false;
};

/// Accumulates the ASCII operator tree. Operators call NodeFor()/Node()
/// from their Explain() overrides; the printer handles the branch glyphs
/// and carries the adornment state (which variables are bound at this
/// point of the left-to-right plan walk) plus the predicate-expansion path
/// that stops recursive rules from unrolling forever.
class ExplainPrinter {
 public:
  explicit ExplainPrinter(ExplainOptions options)
      : options_(std::move(options)) {}

  /// Emits one tree line, then renders each child one level deeper.
  void Node(const std::string& text,
            std::vector<std::function<void()>> children);

  /// Node() with the operator's label, extra annotations, and — when
  /// options().actuals — the operator's actual-execution suffix.
  void NodeFor(PhysicalOp& oper, const std::string& annotations,
               std::vector<std::function<void()>> children);

  const ExplainOptions& options() const { return options_; }
  std::string Take() { return std::move(out_); }

  /// Variables bound so far in the plan walk (adornment propagation).
  std::set<std::string>& bound() { return bound_; }

  /// Predicate-expansion guard: true when `predicate` is already being
  /// expanded on the current path (a recursive rule set).
  bool OnPath(const std::string& predicate) const;
  void PushPath(std::string predicate) { path_.push_back(std::move(predicate)); }
  void PopPath() { path_.pop_back(); }

  /// Compact deterministic number formatting ("250", "0.001").
  static std::string FormatNum(double v);

 private:
  ExplainOptions options_;
  std::string out_;
  std::string indent_;
  std::string pending_prefix_;
  std::vector<std::string> path_;
  std::set<std::string> bound_;
};

/// Renders the whole tree rooted at `root`.
std::string ExplainTree(PhysicalOp& root, const ExplainOptions& options);

}  // namespace hermes::engine::op

#endif  // HERMES_ENGINE_OP_EXPLAIN_H_
