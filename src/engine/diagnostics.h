#ifndef HERMES_ENGINE_DIAGNOSTICS_H_
#define HERMES_ENGINE_DIAGNOSTICS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "dcsm/dcsm.h"
#include "dcsm/drift.h"
#include "engine/op/op.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hermes {

/// Tuning of Mediator::EnableDiagnostics (see DESIGN.md "Diagnostics &
/// drift"). All thresholds are in simulated milliseconds.
struct DiagnosticsOptions {
  /// Per-thread flight-recorder ring capacity (events).
  size_t ring_capacity = 4096;
  /// Absolute slow-query threshold on Ta; 0 disables the absolute check.
  double slow_threshold_sim_ms = 0.0;
  /// Trailing-watermark capture: a query slower than `watermark_factor` ×
  /// the trailing p99 of recent Ta values is captured. 0 disables.
  double watermark_factor = 0.0;
  /// Ta samples kept for the trailing watermark.
  size_t watermark_window = 256;
  /// Watermark is armed only once this many samples accumulated.
  size_t watermark_min_samples = 32;
  bool capture_on_degraded = true;
  bool capture_on_partial = true;
  bool capture_on_breaker_open = true;
  /// Capture queries that re-optimized mid-flight (the bundle's replan.txt
  /// records the trigger and the before/after suffix).
  bool capture_on_replan = true;
  /// Directory debug bundles are persisted under; empty keeps bundles
  /// in memory only.
  std::string bundle_dir;
  /// Bound on retained (and persisted) bundles; older in-memory bundles
  /// are dropped first.
  size_t max_bundles = 8;
  /// Size-based rotation bound of the on-disk slow_queries.log (bytes):
  /// when an append would grow the file past this, the file is first
  /// rotated aside to slow_queries.log.1 (replacing any previous rotation).
  /// 0 disables rotation (the log grows without bound).
  size_t slow_log_max_bytes = 256 * 1024;
  /// Bound on in-memory slow-query records (oldest dropped first);
  /// 0 = unbounded.
  size_t slow_log_max_records = 256;
  /// DCSM drift EWMA tuning.
  dcsm::DriftOptions drift;
};

/// One per-operator est-vs-actual row of the slow-query log.
struct SlowQueryRow {
  size_t depth = 0;
  std::string op;     ///< OpKindName, e.g. "domain_call".
  std::string label;  ///< Full EXPLAIN label.
  uint64_t opens = 0;
  uint64_t rows = 0;
  double sim_total_ms = 0.0;
  bool has_estimate = false;  ///< DomainCall with a DCSM answer.
  double est_tf_ms = 0.0;
  double est_ta_ms = 0.0;
  double est_card = 0.0;
  std::string est_source;

  std::string ToString() const;
  std::string ToJson() const;
};

/// Everything captured about one anomalous query: the four bundle
/// components (events, trace, EXPLAIN, metrics) plus the structured
/// slow-query rows.
struct DebugBundle {
  uint64_t query_id = 0;
  std::string reason;  ///< "slow-threshold", "degraded", "breaker-open", ...
  std::string query_text;
  double t_all_ms = 0.0;
  std::string completeness;
  std::vector<obs::FlightEvent> events;
  std::string chrome_trace;   ///< ChromeTraceJson of the query's tracer.
  std::string explain_text;   ///< EXPLAIN with actuals.
  std::string prometheus;     ///< Full registry snapshot at capture time.
  /// Replan decision record (trigger + old/new suffix EXPLAIN); empty when
  /// the query executed its original plan.
  std::string replan_text;
  std::vector<SlowQueryRow> rows;
  std::string dir;  ///< Persisted location; empty when in-memory only.

  std::string ManifestJson() const;
  /// The structured slow-query log record (header + per-operator rows).
  std::string SlowQueryRecord() const;
};

/// Inputs MaybeCapture evaluates for one finished query. The pointers
/// borrow from the Query() call frame and are only used synchronously.
struct DiagnosticsCaptureInput {
  uint64_t query_id = 0;
  std::string query_text;
  double t_all_ms = 0.0;
  std::string completeness = "complete";
  bool degraded = false;
  bool partial = false;
  bool breaker_tripped = false;
  /// Mid-query replan decisions (ReplanEvent::ToString, concatenated);
  /// empty when the query ran its original plan.
  std::string replan_text;
  /// Renders EXPLAIN-with-actuals; called only when capturing.
  std::function<std::string()> explain_fn;
  const obs::Tracer* tracer = nullptr;
  engine::op::PhysicalOp* root = nullptr;
};

/// The anomaly-capture policy and bundle store behind
/// Mediator::EnableDiagnostics. Thread-safe: QueryPool workers call
/// MaybeCapture concurrently.
class DiagnosticsCenter {
 public:
  DiagnosticsCenter(DiagnosticsOptions options, obs::FlightRecorder* recorder,
                    const dcsm::Dcsm* dcsm, dcsm::DriftTracker* drift,
                    std::shared_ptr<obs::MetricsRegistry> registry);

  /// Feeds one finished query through the capture policy. Returns the
  /// capture reason, or an empty string when the query was unremarkable.
  std::string MaybeCapture(const DiagnosticsCaptureInput& input);

  /// Captures a bundle on a brownout-ladder transition (`from_level` →
  /// `to_level` at observed shed rate `shed_rate`): the flight recorder's
  /// resident events plus a metrics snapshot, preserving the system state
  /// around the level change. Called by the mediator's transition hook.
  void CaptureBrownoutTransition(int from_level, int to_level,
                                 double shed_rate);

  /// Writes an on-demand snapshot (all resident recorder events, the
  /// Prometheus exposition, the drift report, the slow-query log) to
  /// `dir`, creating it if needed.
  Status Dump(const std::string& dir) const;

  std::vector<DebugBundle> bundles() const;
  std::vector<std::string> slow_query_log() const;
  uint64_t captures() const;
  const DiagnosticsOptions& options() const { return options_; }

 private:
  /// Policy decision only; "" = no capture. Also folds `t_all_ms` into the
  /// watermark window. Caller holds mu_.
  std::string CaptureReasonLocked(const DiagnosticsCaptureInput& input);
  /// Trailing p99 of the watermark window. Caller holds mu_.
  double TrailingP99Locked() const;
  /// Builds per-operator est-vs-actual rows from the executed tree.
  std::vector<SlowQueryRow> CollectRows(engine::op::PhysicalOp* root) const;
  /// Writes the bundle's files under options_.bundle_dir; sets bundle.dir.
  Status Persist(DebugBundle& bundle, size_t index) const;
  /// Appends one record to the bounded in-memory log and — when a bundle
  /// dir is configured — the size-rotated on-disk slow_queries.log.
  /// Caller holds mu_.
  void AppendSlowRecordLocked(const std::string& record);

  const DiagnosticsOptions options_;
  obs::FlightRecorder* const recorder_;
  const dcsm::Dcsm* const dcsm_;
  dcsm::DriftTracker* const drift_;
  const std::shared_ptr<obs::MetricsRegistry> registry_;

  mutable std::mutex mu_;
  std::deque<double> recent_ta_;      ///< Watermark window.
  std::deque<DebugBundle> bundles_;   ///< Newest-last, bounded.
  std::deque<std::string> slow_log_;  ///< Structured records, bounded.
  uint64_t captures_ = 0;              ///< Total captures (incl. dropped).

  std::shared_ptr<obs::Counter> captures_total_;
};

}  // namespace hermes

#endif  // HERMES_ENGINE_DIAGNOSTICS_H_
