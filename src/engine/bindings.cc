#include "engine/bindings.h"

#include <utility>

namespace hermes::engine {

const Value* Bindings::Find(std::string_view name) const {
  for (const Slot& slot : slots_) {
    if (slot.live && slot.name == name) return slot.view;
  }
  return nullptr;
}

Bindings::BindOutcome Bindings::BindView(std::string_view name,
                                         const Value* value,
                                         size_t* slot_out) {
  Slot* dead_same_name = nullptr;
  Slot* dead_any = nullptr;
  size_t index = 0, dead_same_index = 0, dead_any_index = 0;
  for (Slot& slot : slots_) {
    if (slot.live) {
      if (slot.name == name) {
        return *slot.view == *value ? BindOutcome::kMatched
                                    : BindOutcome::kConflict;
      }
    } else if (dead_same_name == nullptr && slot.name == name) {
      dead_same_name = &slot;
      dead_same_index = index;
    } else if (dead_any == nullptr) {
      dead_any = &slot;
      dead_any_index = index;
    }
    ++index;
  }
  Slot* slot;
  size_t slot_index;
  if (dead_same_name != nullptr) {
    // Steady state: the variable was bound and rolled back before; its
    // interned name is reused, so this path performs no allocation.
    slot = dead_same_name;
    slot_index = dead_same_index;
  } else if (dead_any != nullptr) {
    slot = dead_any;
    slot_index = dead_any_index;
    slot->name.assign(name.data(), name.size());
  } else {
    slots_.emplace_back();
    slot = &slots_.back();
    slot_index = slots_.size() - 1;
    slot->name.assign(name.data(), name.size());
  }
  slot->view = value;
  slot->live = true;
  ++live_;
  if (slot_out != nullptr) *slot_out = slot_index;
  return BindOutcome::kInserted;
}

Bindings::BindOutcome Bindings::BindCopy(std::string_view name,
                                         const Value& value,
                                         size_t* slot_out) {
  size_t slot_index = 0;
  BindOutcome outcome = BindView(name, &value, &slot_index);
  if (outcome != BindOutcome::kInserted) return outcome;
  Slot& slot = slots_[slot_index];
  slot.owned = value;
  slot.view = &slot.owned;
  if (slot_out != nullptr) *slot_out = slot_index;
  return BindOutcome::kInserted;
}

void Bindings::Release(size_t slot) {
  Slot& s = slots_[slot];
  if (!s.live) return;
  s.live = false;
  s.view = nullptr;
  --live_;
}

void Bindings::clear() {
  for (Slot& slot : slots_) {
    slot.live = false;
    slot.view = nullptr;
  }
  live_ = 0;
}

Result<Value> ResolveTerm(const lang::Term& term, const Bindings& bindings) {
  HERMES_ASSIGN_OR_RETURN(const Value* found, ResolveTermPtr(term, bindings));
  return *found;
}

Result<const Value*> ResolveTermPtr(const lang::Term& term,
                                    const Bindings& bindings) {
  if (term.is_constant()) return &term.constant;
  if (term.is_bound_pattern()) {
    return Status::InvalidArgument("'$b' cannot appear in executable rules");
  }
  const Value* bound = bindings.Find(term.var_name);
  if (bound == nullptr) {
    return Status::NotFound("variable '" + term.var_name + "' is unbound");
  }
  if (term.path.empty()) return bound;
  return bound->GetPathPtr(term.path);
}

bool TermIsResolvable(const lang::Term& term, const Bindings& bindings) {
  if (term.is_constant()) return true;
  if (term.is_bound_pattern()) return false;
  return bindings.Contains(term.var_name);
}

}  // namespace hermes::engine
