#include "engine/bindings.h"

namespace hermes::engine {

Result<Value> ResolveTerm(const lang::Term& term, const Bindings& bindings) {
  if (term.is_constant()) return term.constant;
  if (term.is_bound_pattern()) {
    return Status::InvalidArgument("'$b' cannot appear in executable rules");
  }
  auto it = bindings.find(term.var_name);
  if (it == bindings.end()) {
    return Status::NotFound("variable '" + term.var_name + "' is unbound");
  }
  if (term.path.empty()) return it->second;
  return it->second.GetPath(term.path);
}

bool TermIsResolvable(const lang::Term& term, const Bindings& bindings) {
  if (term.is_constant()) return true;
  if (term.is_bound_pattern()) return false;
  return bindings.find(term.var_name) != bindings.end();
}

}  // namespace hermes::engine
