#ifndef HERMES_ENGINE_QUERY_POOL_H_
#define HERMES_ENGINE_QUERY_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/mediator.h"
#include "obs/metrics.h"

namespace hermes {

/// Counters of one QueryPool's lifetime — a snapshot view over the pool's
/// live obs counters (registered with the mediator's MetricsRegistry under
/// hermes_pool_*; a newer pool's series replace an older pool's there).
struct QueryPoolStats {
  uint64_t submitted = 0;  ///< Queries accepted into the queue.
  uint64_t completed = 0;  ///< Queries whose future was fulfilled.
  uint64_t rejected = 0;   ///< Submissions refused (queue full/shutdown).
  // Admission-control sheds (typed kResourceExhausted; see AdmissionOptions).
  uint64_t shed_deadline = 0;  ///< Deadline below the queue-wait watermark.
  uint64_t shed_codel = 0;     ///< CoDel queue-delay shedding at dequeue.
  uint64_t shed_brownout = 0;  ///< Low-priority shed at brownout level 3.
};

/// The mediator's concurrent frontend: a fixed pool of worker threads
/// draining a bounded, priority-ordered submission queue of queries,
/// results delivered through futures — how N clients share one mediator.
///
/// Created via Mediator::Serve(). While any pool is live the mediator's
/// wiring is frozen (wiring calls return FailedPrecondition), so workers
/// race only on structures designed for it: the lock-striped result cache,
/// the batch-flushed DCSM and the atomic network statistics.
///
/// Queries are drained strictly by QueryOptions::priority (high before
/// normal before low; FIFO within a class). With AdmissionOptions::enabled
/// the pool additionally sheds load instead of queueing it (typed
/// kResourceExhausted): deadline-aware admission compares a query's
/// remaining deadline against the observed queue-wait watermark, a
/// CoDel-style controller sheds at dequeue once queue sojourn stays above
/// target (never shedding kHigh), and at brownout level 3 low-priority
/// queries are refused at the door. Shed/admit outcomes feed the
/// mediator's BrownoutController, closing the overload-control loop.
///
/// Query ids are reserved at Submit time, in submission order — a query's
/// id (and therefore its per-query RNG stream, when enabled) is fixed
/// before any worker touches it, independent of scheduling.
///
/// Submit/TrySubmit are safe from any thread. Destruction (or Shutdown)
/// stops intake, drains queued work, joins the workers and unfreezes the
/// mediator.
class QueryPool {
 public:
  /// Prefer Mediator::Serve() over constructing directly. `mediator` must
  /// outlive the pool.
  QueryPool(Mediator* mediator, QueryPoolOptions options);
  ~QueryPool();

  QueryPool(const QueryPool&) = delete;
  QueryPool& operator=(const QueryPool&) = delete;

  /// Enqueues a query; blocks while the queue is full. The future carries
  /// the query's Result exactly as Mediator::Query would have returned it —
  /// or a typed kResourceExhausted when admission control shed it.
  std::future<Result<QueryResult>> Submit(std::string query_text,
                                          QueryOptions options = {});

  /// Non-blocking Submit. OK means the query was enqueued and `*out` holds
  /// its future; otherwise `*out` is untouched and the status says why —
  /// kResourceExhausted with queue-depth context when the queue is full or
  /// admission control shed the query, kFailedPrecondition after Shutdown.
  Status TrySubmit(std::string query_text, QueryOptions options,
                   std::future<Result<QueryResult>>* out);

  /// Stops intake, drains already-queued queries, joins workers.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }
  size_t queue_capacity() const { return queue_capacity_; }
  QueryPoolStats stats() const;

 private:
  struct Task {
    std::string text;
    QueryOptions options;
    std::promise<Result<QueryResult>> promise;
    /// Wall-clock enqueue instant; the dequeueing worker observes the
    /// difference as queue wait (and CoDel as queue sojourn).
    std::chrono::steady_clock::time_point enqueued_at;
  };

  void WorkerLoop();
  /// Admission checks + enqueue; requires mu_ held. On shed, fulfils the
  /// task's promise with the returned status.
  Status Enqueue(Task task, std::future<Result<QueryResult>>* out);
  /// Total queued tasks across the priority classes; requires mu_ held.
  size_t QueueDepthLocked() const;
  /// Formats "depth D/C (high=h normal=n low=l)"; requires mu_ held.
  std::string QueueContextLocked() const;
  /// CoDel drop decision for a dequeued task's sojourn; requires mu_ held.
  bool CodelShouldDropLocked(double sojourn_ms,
                             std::chrono::steady_clock::time_point now);
  /// Reports an admit/shed outcome to the mediator's BrownoutController
  /// (no-op when admission is off or no controller is installed).
  void RecordBrownoutOutcome(bool shed);

  Mediator* mediator_;
  size_t queue_capacity_;
  AdmissionOptions admission_;

  mutable std::mutex mu_;
  std::condition_variable queue_ready_;   ///< Signals workers: work/stop.
  std::condition_variable queue_space_;   ///< Signals submitters: capacity.
  /// One FIFO per priority class, drained high → normal → low.
  std::deque<Task> queues_[3];
  bool stopping_ = false;

  // CoDel controller state (guarded by mu_). `codel_first_above_` is the
  // deadline by which sojourn must recover before dropping starts;
  // `codel_drop_next_` paces drops at interval/sqrt(drop_count) while in
  // the dropping state.
  bool codel_above_ = false;
  bool codel_dropping_ = false;
  std::chrono::steady_clock::time_point codel_first_above_{};
  std::chrono::steady_clock::time_point codel_drop_next_{};
  uint64_t codel_drop_count_ = 0;

  // Live statistics (per-pool; registered with the mediator's registry at
  // construction). The histograms measure HOST wall-clock milliseconds —
  // queue wait and service time are real implementation costs, not part of
  // the simulated-latency model.
  std::shared_ptr<obs::Counter> submitted_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> completed_ = std::make_shared<obs::Counter>();
  // hermes_pool_rejected_total{reason=...}: full | shutdown | deadline |
  // codel | brownout.
  std::shared_ptr<obs::Counter> rejected_full_ =
      std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> rejected_shutdown_ =
      std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> shed_deadline_ =
      std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> shed_codel_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> shed_brownout_ =
      std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Gauge> queue_depth_ = std::make_shared<obs::Gauge>();
  std::shared_ptr<obs::Histogram> queue_wait_ms_;
  std::shared_ptr<obs::Histogram> service_ms_;

  std::vector<std::thread> workers_;
};

}  // namespace hermes

#endif  // HERMES_ENGINE_QUERY_POOL_H_
