#ifndef HERMES_ENGINE_QUERY_POOL_H_
#define HERMES_ENGINE_QUERY_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/mediator.h"
#include "obs/metrics.h"

namespace hermes {

/// Counters of one QueryPool's lifetime — a snapshot view over the pool's
/// live obs counters (registered with the mediator's MetricsRegistry under
/// hermes_pool_*; a newer pool's series replace an older pool's there).
struct QueryPoolStats {
  uint64_t submitted = 0;  ///< Queries accepted into the queue.
  uint64_t completed = 0;  ///< Queries whose future was fulfilled.
  uint64_t rejected = 0;   ///< TrySubmit calls refused (queue full/shutdown).
};

/// The mediator's concurrent frontend: a fixed pool of worker threads
/// draining a bounded submission queue of queries, results delivered
/// through futures — how N clients share one mediator.
///
/// Created via Mediator::Serve(). While any pool is live the mediator's
/// wiring is frozen (wiring calls return FailedPrecondition), so workers
/// race only on structures designed for it: the lock-striped result cache,
/// the batch-flushed DCSM and the atomic network statistics.
///
/// Query ids are reserved at Submit time, in submission order — a query's
/// id (and therefore its per-query RNG stream, when enabled) is fixed
/// before any worker touches it, independent of scheduling.
///
/// Submit/TrySubmit are safe from any thread. Destruction (or Shutdown)
/// stops intake, drains queued work, joins the workers and unfreezes the
/// mediator.
class QueryPool {
 public:
  /// Prefer Mediator::Serve() over constructing directly. `mediator` must
  /// outlive the pool.
  QueryPool(Mediator* mediator, QueryPoolOptions options);
  ~QueryPool();

  QueryPool(const QueryPool&) = delete;
  QueryPool& operator=(const QueryPool&) = delete;

  /// Enqueues a query; blocks while the queue is full. The future carries
  /// the query's Result exactly as Mediator::Query would have returned it.
  std::future<Result<QueryResult>> Submit(std::string query_text,
                                          QueryOptions options = {});

  /// Non-blocking Submit: false when the queue is full (or the pool is
  /// shutting down), leaving `*out` untouched.
  bool TrySubmit(std::string query_text, QueryOptions options,
                 std::future<Result<QueryResult>>* out);

  /// Stops intake, drains already-queued queries, joins workers.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }
  size_t queue_capacity() const { return queue_capacity_; }
  QueryPoolStats stats() const;

 private:
  struct Task {
    std::string text;
    QueryOptions options;
    std::promise<Result<QueryResult>> promise;
    /// Wall-clock enqueue instant; the dequeueing worker observes the
    /// difference as queue wait.
    std::chrono::steady_clock::time_point enqueued_at;
  };

  void WorkerLoop();
  std::future<Result<QueryResult>> Enqueue(Task task);

  Mediator* mediator_;
  size_t queue_capacity_;

  mutable std::mutex mu_;
  std::condition_variable queue_ready_;   ///< Signals workers: work/stop.
  std::condition_variable queue_space_;   ///< Signals submitters: capacity.
  std::deque<Task> queue_;
  bool stopping_ = false;

  // Live statistics (per-pool; registered with the mediator's registry at
  // construction). The histograms measure HOST wall-clock milliseconds —
  // queue wait and service time are real implementation costs, not part of
  // the simulated-latency model.
  std::shared_ptr<obs::Counter> submitted_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> completed_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> rejected_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Histogram> queue_wait_ms_;
  std::shared_ptr<obs::Histogram> service_ms_;

  std::vector<std::thread> workers_;
};

}  // namespace hermes

#endif  // HERMES_ENGINE_QUERY_POOL_H_
