#include "engine/query_pool.h"

#include <algorithm>
#include <utility>

namespace hermes {

std::unique_ptr<QueryPool> Mediator::Serve(QueryPoolOptions options) {
  return std::make_unique<QueryPool>(this, options);
}

QueryPool::QueryPool(Mediator* mediator, QueryPoolOptions options)
    : mediator_(mediator),
      queue_capacity_(options.queue_capacity > 0
                          ? options.queue_capacity
                          : 2 * std::max<size_t>(options.num_threads, 1)) {
  mediator_->BeginServing();
  size_t threads = std::max<size_t>(options.num_threads, 1);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryPool::~QueryPool() { Shutdown(); }

std::future<Result<QueryResult>> QueryPool::Enqueue(Task task) {
  std::future<Result<QueryResult>> future = task.promise.get_future();
  // Fix the query id now, in submission order, so it does not depend on
  // which worker picks the task up when.
  if (task.options.query_id == 0) {
    task.options.query_id = mediator_->ReserveQueryId();
  }
  queue_.push_back(std::move(task));
  ++stats_.submitted;
  queue_ready_.notify_one();
  return future;
}

std::future<Result<QueryResult>> QueryPool::Submit(std::string query_text,
                                                   QueryOptions options) {
  Task task;
  task.text = std::move(query_text);
  task.options = options;

  std::unique_lock<std::mutex> lock(mu_);
  queue_space_.wait(
      lock, [this] { return stopping_ || queue_.size() < queue_capacity_; });
  if (stopping_) {
    task.promise.set_value(Status::FailedPrecondition(
        "QueryPool is shut down; no further submissions accepted"));
    return task.promise.get_future();
  }
  return Enqueue(std::move(task));
}

bool QueryPool::TrySubmit(std::string query_text, QueryOptions options,
                          std::future<Result<QueryResult>>* out) {
  Task task;
  task.text = std::move(query_text);
  task.options = options;

  std::unique_lock<std::mutex> lock(mu_);
  if (stopping_ || queue_.size() >= queue_capacity_) {
    ++stats_.rejected;
    return false;
  }
  *out = Enqueue(std::move(task));
  return true;
}

void QueryPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_ready_.wait(lock,
                        [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_space_.notify_one();
    }
    Result<QueryResult> result = mediator_->Query(task.text, task.options);
    task.promise.set_value(std::move(result));
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.completed;
    }
  }
}

void QueryPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;  // already shut down
    stopping_ = true;
  }
  queue_ready_.notify_all();
  queue_space_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (!workers_.empty()) {
    workers_.clear();
    mediator_->EndServing();
  }
}

QueryPoolStats QueryPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace hermes
