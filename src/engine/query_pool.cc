#include "engine/query_pool.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace hermes {

namespace {

constexpr size_t kNumPriorities = 3;

size_t PriorityIndex(QueryPriority p) {
  size_t idx = static_cast<size_t>(p);
  return idx < kNumPriorities ? idx : kNumPriorities - 1;
}

}  // namespace

std::unique_ptr<QueryPool> Mediator::Serve(QueryPoolOptions options) {
  return std::make_unique<QueryPool>(this, options);
}

QueryPool::QueryPool(Mediator* mediator, QueryPoolOptions options)
    : mediator_(mediator),
      queue_capacity_(options.queue_capacity > 0
                          ? options.queue_capacity
                          : 2 * std::max<size_t>(options.num_threads, 1)),
      admission_(options.admission),
      queue_wait_ms_(std::make_shared<obs::Histogram>(
          obs::Histogram::ExponentialBounds(0.01, 4.0, 12))),
      service_ms_(std::make_shared<obs::Histogram>(
          obs::Histogram::ExponentialBounds(0.01, 4.0, 12))) {
  obs::MetricsRegistry& registry = mediator_->metrics();
  registry.Register("hermes_pool_submitted_total",
                    "Queries accepted into the pool's queue", {}, submitted_);
  registry.Register("hermes_pool_completed_total",
                    "Queries whose future was fulfilled", {}, completed_);
  const std::string rejected_help =
      "Submissions refused or shed, by reason (full, shutdown, deadline, "
      "codel, brownout)";
  registry.Register("hermes_pool_rejected_total", rejected_help,
                    {{"reason", "full"}}, rejected_full_);
  registry.Register("hermes_pool_rejected_total", rejected_help,
                    {{"reason", "shutdown"}}, rejected_shutdown_);
  registry.Register("hermes_pool_rejected_total", rejected_help,
                    {{"reason", "deadline"}}, shed_deadline_);
  registry.Register("hermes_pool_rejected_total", rejected_help,
                    {{"reason", "codel"}}, shed_codel_);
  registry.Register("hermes_pool_rejected_total", rejected_help,
                    {{"reason", "brownout"}}, shed_brownout_);
  registry.Register("hermes_pool_queue_depth",
                    "Queries currently waiting in the submission queue", {},
                    queue_depth_);
  registry.Register("hermes_pool_queue_wait_ms",
                    "Wall-clock milliseconds a query waited in the queue", {},
                    queue_wait_ms_);
  registry.Register("hermes_pool_service_ms",
                    "Wall-clock milliseconds a worker spent serving a query",
                    {}, service_ms_);
  mediator_->BeginServing();
  size_t threads = std::max<size_t>(options.num_threads, 1);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryPool::~QueryPool() { Shutdown(); }

size_t QueryPool::QueueDepthLocked() const {
  return queues_[0].size() + queues_[1].size() + queues_[2].size();
}

std::string QueryPool::QueueContextLocked() const {
  return "depth " + std::to_string(QueueDepthLocked()) + "/" +
         std::to_string(queue_capacity_) +
         " (high=" + std::to_string(queues_[0].size()) +
         " normal=" + std::to_string(queues_[1].size()) +
         " low=" + std::to_string(queues_[2].size()) + ")";
}

void QueryPool::RecordBrownoutOutcome(bool shed) {
  if (!admission_.enabled) return;
  overload::BrownoutController* brownout = mediator_->brownout();
  if (brownout != nullptr) brownout->RecordOutcome(shed);
}

Status QueryPool::Enqueue(Task task, std::future<Result<QueryResult>>* out) {
  // Admission control (both checks no-ops unless enabled): shed now, at the
  // door, rather than queueing work the query cannot use.
  if (admission_.enabled) {
    // Brownout ladder level 3: low-priority queries are refused while the
    // system is shedding hard (see BrownoutController).
    overload::BrownoutController* brownout = mediator_->brownout();
    if (task.options.priority == QueryPriority::kLow && brownout != nullptr &&
        brownout->level() >= overload::BrownoutController::kShedLow) {
      shed_brownout_->Add(1);
      RecordBrownoutOutcome(true);
      return Status::ResourceExhausted(
          "brownout level 3 (shed-low): low-priority query shed at "
          "admission; " +
          QueueContextLocked());
    }
    // Deadline-aware admission: if the queue-wait watermark alone would eat
    // the query's deadline, answering is pointless — shed instead. The
    // deadline is simulated ms; queue wait is host wall ms, comparable only
    // through the pacing scale (pacing 0 → simulated time never accrues
    // while queued, so skip).
    const double pacing = mediator_->service_pacing();
    if (admission_.deadline_aware && task.options.deadline_ms > 0.0 &&
        pacing > 0.0) {
      obs::HistogramSnapshot waits = queue_wait_ms_->Snapshot();
      if (waits.count >= admission_.watermark_min_samples) {
        const double watermark_ms =
            waits.Quantile(admission_.watermark_quantile);
        const double budget_ms = task.options.deadline_ms * pacing;
        if (budget_ms < watermark_ms) {
          shed_deadline_->Add(1);
          RecordBrownoutOutcome(true);
          return Status::ResourceExhausted(
              "deadline budget " + std::to_string(budget_ms) +
              "ms below queue-wait watermark " +
              std::to_string(watermark_ms) + "ms (p" +
              std::to_string(
                  static_cast<int>(admission_.watermark_quantile * 100)) +
              " of " + std::to_string(waits.count) + " waits); " +
              QueueContextLocked());
        }
      }
    }
  }

  std::future<Result<QueryResult>> future = task.promise.get_future();
  // Fix the query id now, in submission order, so it does not depend on
  // which worker picks the task up when.
  if (task.options.query_id == 0) {
    task.options.query_id = mediator_->ReserveQueryId();
  }
  task.enqueued_at = std::chrono::steady_clock::now();
  queues_[PriorityIndex(task.options.priority)].push_back(std::move(task));
  submitted_->Add(1);
  queue_depth_->Set(static_cast<double>(QueueDepthLocked()));
  queue_ready_.notify_one();
  *out = std::move(future);
  return Status::OK();
}

std::future<Result<QueryResult>> QueryPool::Submit(std::string query_text,
                                                   QueryOptions options) {
  Task task;
  task.text = std::move(query_text);
  task.options = options;

  std::unique_lock<std::mutex> lock(mu_);
  queue_space_.wait(lock, [this] {
    return stopping_ || QueueDepthLocked() < queue_capacity_;
  });
  if (stopping_) {
    rejected_shutdown_->Add(1);
    task.promise.set_value(Status::FailedPrecondition(
        "QueryPool is shut down; no further submissions accepted"));
    return task.promise.get_future();
  }
  std::future<Result<QueryResult>> future;
  Status admitted = Enqueue(std::move(task), &future);
  if (!admitted.ok()) {
    // The task was shed: deliver the typed status through the future so
    // Submit keeps its fire-and-forget contract.
    std::promise<Result<QueryResult>> shed;
    future = shed.get_future();
    shed.set_value(std::move(admitted));
  }
  return future;
}

Status QueryPool::TrySubmit(std::string query_text, QueryOptions options,
                            std::future<Result<QueryResult>>* out) {
  Task task;
  task.text = std::move(query_text);
  task.options = options;

  std::unique_lock<std::mutex> lock(mu_);
  if (stopping_) {
    rejected_shutdown_->Add(1);
    return Status::FailedPrecondition(
        "QueryPool is shut down; no further submissions accepted");
  }
  if (QueueDepthLocked() >= queue_capacity_) {
    rejected_full_->Add(1);
    RecordBrownoutOutcome(true);
    return Status::ResourceExhausted("submission queue full: " +
                                     QueueContextLocked());
  }
  return Enqueue(std::move(task), out);
}

bool QueryPool::CodelShouldDropLocked(
    double sojourn_ms, std::chrono::steady_clock::time_point now) {
  auto to_duration = [](double ms) {
    return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double, std::milli>(ms));
  };
  if (sojourn_ms < admission_.codel_target_ms) {
    // Sojourn recovered below target: leave the dropping state entirely.
    codel_above_ = false;
    codel_dropping_ = false;
    return false;
  }
  if (!codel_above_) {
    // First sighting above target: arm a grace interval before dropping.
    codel_above_ = true;
    codel_first_above_ = now + to_duration(admission_.codel_interval_ms);
    return false;
  }
  if (codel_dropping_) {
    if (now >= codel_drop_next_) {
      // Still above target: drop again, pacing up with sqrt(drop count)
      // (the CoDel control law).
      ++codel_drop_count_;
      codel_drop_next_ =
          now + to_duration(admission_.codel_interval_ms /
                            std::sqrt(static_cast<double>(codel_drop_count_)));
      return true;
    }
    return false;
  }
  if (now >= codel_first_above_) {
    // Sojourn stayed above target for a full interval: start dropping.
    codel_dropping_ = true;
    codel_drop_count_ = 1;
    codel_drop_next_ = now + to_duration(admission_.codel_interval_ms);
    return true;
  }
  return false;
}

void QueryPool::WorkerLoop() {
  using Clock = std::chrono::steady_clock;
  auto ms_between = [](Clock::time_point from, Clock::time_point to) {
    return std::chrono::duration<double, std::milli>(to - from).count();
  };
  for (;;) {
    Task task;
    bool codel_shed = false;
    double sojourn_ms = 0.0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_ready_.wait(
          lock, [this] { return stopping_ || QueueDepthLocked() > 0; });
      if (QueueDepthLocked() == 0) return;  // stopping and drained
      size_t priority = 0;
      while (queues_[priority].empty()) ++priority;
      task = std::move(queues_[priority].front());
      queues_[priority].pop_front();
      queue_depth_->Set(static_cast<double>(QueueDepthLocked()));
      queue_space_.notify_one();
      Clock::time_point now = Clock::now();
      sojourn_ms = ms_between(task.enqueued_at, now);
      // CoDel-style queue-delay shedding: once dequeue sojourn stays above
      // target for an interval, shed (never the high-priority class).
      if (admission_.enabled && admission_.codel_target_ms > 0.0 &&
          priority != PriorityIndex(QueryPriority::kHigh)) {
        codel_shed = CodelShouldDropLocked(sojourn_ms, now);
      }
    }
    queue_wait_ms_->Observe(sojourn_ms);
    if (codel_shed) {
      shed_codel_->Add(1);
      RecordBrownoutOutcome(true);
      task.promise.set_value(Status::ResourceExhausted(
          "queue sojourn " + std::to_string(sojourn_ms) +
          "ms stayed above CoDel target " +
          std::to_string(admission_.codel_target_ms) + "ms; query shed"));
      completed_->Add(1);
      continue;
    }
    RecordBrownoutOutcome(false);
    Clock::time_point started = Clock::now();
    Result<QueryResult> result = mediator_->Query(task.text, task.options);
    service_ms_->Observe(ms_between(started, Clock::now()));
    task.promise.set_value(std::move(result));
    completed_->Add(1);
  }
}

void QueryPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;  // already shut down
    stopping_ = true;
  }
  queue_ready_.notify_all();
  queue_space_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (!workers_.empty()) {
    workers_.clear();
    mediator_->EndServing();
  }
}

QueryPoolStats QueryPool::stats() const {
  QueryPoolStats snapshot;
  snapshot.submitted = submitted_->Value();
  snapshot.completed = completed_->Value();
  snapshot.rejected = static_cast<uint64_t>(rejected_full_->Value()) +
                      static_cast<uint64_t>(rejected_shutdown_->Value());
  snapshot.shed_deadline = shed_deadline_->Value();
  snapshot.shed_codel = shed_codel_->Value();
  snapshot.shed_brownout = shed_brownout_->Value();
  return snapshot;
}

}  // namespace hermes
