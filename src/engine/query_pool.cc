#include "engine/query_pool.h"

#include <algorithm>
#include <utility>

namespace hermes {

std::unique_ptr<QueryPool> Mediator::Serve(QueryPoolOptions options) {
  return std::make_unique<QueryPool>(this, options);
}

QueryPool::QueryPool(Mediator* mediator, QueryPoolOptions options)
    : mediator_(mediator),
      queue_capacity_(options.queue_capacity > 0
                          ? options.queue_capacity
                          : 2 * std::max<size_t>(options.num_threads, 1)),
      queue_wait_ms_(std::make_shared<obs::Histogram>(
          obs::Histogram::ExponentialBounds(0.01, 4.0, 12))),
      service_ms_(std::make_shared<obs::Histogram>(
          obs::Histogram::ExponentialBounds(0.01, 4.0, 12))) {
  obs::MetricsRegistry& registry = mediator_->metrics();
  registry.Register("hermes_pool_submitted_total",
                    "Queries accepted into the pool's queue", {}, submitted_);
  registry.Register("hermes_pool_completed_total",
                    "Queries whose future was fulfilled", {}, completed_);
  registry.Register("hermes_pool_rejected_total",
                    "TrySubmit calls refused (queue full or shutdown)", {},
                    rejected_);
  registry.Register("hermes_pool_queue_wait_ms",
                    "Wall-clock milliseconds a query waited in the queue", {},
                    queue_wait_ms_);
  registry.Register("hermes_pool_service_ms",
                    "Wall-clock milliseconds a worker spent serving a query",
                    {}, service_ms_);
  mediator_->BeginServing();
  size_t threads = std::max<size_t>(options.num_threads, 1);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryPool::~QueryPool() { Shutdown(); }

std::future<Result<QueryResult>> QueryPool::Enqueue(Task task) {
  std::future<Result<QueryResult>> future = task.promise.get_future();
  // Fix the query id now, in submission order, so it does not depend on
  // which worker picks the task up when.
  if (task.options.query_id == 0) {
    task.options.query_id = mediator_->ReserveQueryId();
  }
  task.enqueued_at = std::chrono::steady_clock::now();
  queue_.push_back(std::move(task));
  submitted_->Add(1);
  queue_ready_.notify_one();
  return future;
}

std::future<Result<QueryResult>> QueryPool::Submit(std::string query_text,
                                                   QueryOptions options) {
  Task task;
  task.text = std::move(query_text);
  task.options = options;

  std::unique_lock<std::mutex> lock(mu_);
  queue_space_.wait(
      lock, [this] { return stopping_ || queue_.size() < queue_capacity_; });
  if (stopping_) {
    task.promise.set_value(Status::FailedPrecondition(
        "QueryPool is shut down; no further submissions accepted"));
    return task.promise.get_future();
  }
  return Enqueue(std::move(task));
}

bool QueryPool::TrySubmit(std::string query_text, QueryOptions options,
                          std::future<Result<QueryResult>>* out) {
  Task task;
  task.text = std::move(query_text);
  task.options = options;

  std::unique_lock<std::mutex> lock(mu_);
  if (stopping_ || queue_.size() >= queue_capacity_) {
    rejected_->Add(1);
    return false;
  }
  *out = Enqueue(std::move(task));
  return true;
}

void QueryPool::WorkerLoop() {
  using Clock = std::chrono::steady_clock;
  auto ms_between = [](Clock::time_point from, Clock::time_point to) {
    return std::chrono::duration<double, std::milli>(to - from).count();
  };
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_ready_.wait(lock,
                        [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_space_.notify_one();
    }
    Clock::time_point started = Clock::now();
    queue_wait_ms_->Observe(ms_between(task.enqueued_at, started));
    Result<QueryResult> result = mediator_->Query(task.text, task.options);
    service_ms_->Observe(ms_between(started, Clock::now()));
    task.promise.set_value(std::move(result));
    completed_->Add(1);
  }
}

void QueryPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;  // already shut down
    stopping_ = true;
  }
  queue_ready_.notify_all();
  queue_space_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (!workers_.empty()) {
    workers_.clear();
    mediator_->EndServing();
  }
}

QueryPoolStats QueryPool::stats() const {
  QueryPoolStats snapshot;
  snapshot.submitted = submitted_->Value();
  snapshot.completed = completed_->Value();
  snapshot.rejected = rejected_->Value();
  return snapshot;
}

}  // namespace hermes
