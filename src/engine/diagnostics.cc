#include "engine/diagnostics.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/io.h"
#include "domain/overload.h"
#include "engine/op/domain_call_op.h"

namespace hermes {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string EventsJson(const std::vector<obs::FlightEvent>& events) {
  std::string out = "{\"events\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out += ",";
    out += events[i].ToJson();
  }
  out += "]}";
  return out;
}

}  // namespace

std::string SlowQueryRow::ToString() const {
  std::string out(depth * 2, ' ');
  out += label + "  actual=[rows=" + std::to_string(rows) +
         " opens=" + std::to_string(opens) + " sim=" + Num(sim_total_ms) +
         "ms]";
  if (has_estimate) {
    out += " est=[Tf=" + Num(est_tf_ms) + " Ta=" + Num(est_ta_ms) +
           " card=" + Num(est_card) + " src=" + est_source + "]";
  }
  return out;
}

std::string SlowQueryRow::ToJson() const {
  std::string out = "{\"depth\":" + std::to_string(depth) + ",\"op\":\"" +
                    JsonEscape(op) + "\",\"label\":\"" + JsonEscape(label) +
                    "\",\"opens\":" + std::to_string(opens) +
                    ",\"rows\":" + std::to_string(rows) +
                    ",\"sim_total_ms\":" + Num(sim_total_ms);
  if (has_estimate) {
    out += ",\"est\":{\"tf_ms\":" + Num(est_tf_ms) +
           ",\"ta_ms\":" + Num(est_ta_ms) + ",\"card\":" + Num(est_card) +
           ",\"source\":\"" + JsonEscape(est_source) + "\"}";
  }
  out += "}";
  return out;
}

std::string DebugBundle::ManifestJson() const {
  std::string out = "{\"query_id\":" + std::to_string(query_id) +
                    ",\"reason\":\"" + JsonEscape(reason) + "\",\"query\":\"" +
                    JsonEscape(query_text) +
                    "\",\"t_all_sim_ms\":" + Num(t_all_ms) +
                    ",\"completeness\":\"" + JsonEscape(completeness) +
                    "\",\"event_count\":" + std::to_string(events.size()) +
                    ",\"components\":{\"events\":\"events.json\","
                    "\"trace\":\"trace.json\",\"explain\":\"explain.txt\","
                    "\"metrics\":\"metrics.prom\"";
  if (!replan_text.empty()) out += ",\"replan\":\"replan.txt\"";
  out += "},\"rows\":[";
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) out += ",";
    out += rows[i].ToJson();
  }
  out += "]}";
  return out;
}

std::string DebugBundle::SlowQueryRecord() const {
  std::string out = "slow-query q" + std::to_string(query_id) +
                    " reason=" + reason + " t_all=" + Num(t_all_ms) +
                    "ms completeness=" + completeness + " query=" + query_text +
                    "\n";
  for (const SlowQueryRow& row : rows) out += "  " + row.ToString() + "\n";
  return out;
}

DiagnosticsCenter::DiagnosticsCenter(
    DiagnosticsOptions options, obs::FlightRecorder* recorder,
    const dcsm::Dcsm* dcsm, dcsm::DriftTracker* drift,
    std::shared_ptr<obs::MetricsRegistry> registry)
    : options_(std::move(options)),
      recorder_(recorder),
      dcsm_(dcsm),
      drift_(drift),
      registry_(std::move(registry)) {
  if (registry_ != nullptr) {
    captures_total_ = registry_->GetOrAddCounter(
        "hermes_diag_captures_total",
        "Debug bundles auto-captured by the diagnostics policy.");
  }
}

double DiagnosticsCenter::TrailingP99Locked() const {
  if (recent_ta_.empty()) return 0.0;
  std::vector<double> sorted(recent_ta_.begin(), recent_ta_.end());
  size_t idx = static_cast<size_t>(0.99 * static_cast<double>(sorted.size()));
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  std::nth_element(sorted.begin(), sorted.begin() + idx, sorted.end());
  return sorted[idx];
}

std::string DiagnosticsCenter::CaptureReasonLocked(
    const DiagnosticsCaptureInput& input) {
  // The watermark compares against queries *before* this one.
  const bool armed = recent_ta_.size() >= options_.watermark_min_samples;
  const double p99 = options_.watermark_factor > 0.0 && armed
                         ? TrailingP99Locked()
                         : 0.0;
  recent_ta_.push_back(input.t_all_ms);
  while (recent_ta_.size() > options_.watermark_window) {
    recent_ta_.pop_front();
  }

  if (options_.slow_threshold_sim_ms > 0.0 &&
      input.t_all_ms >= options_.slow_threshold_sim_ms) {
    return "slow-threshold";
  }
  if (p99 > 0.0 && input.t_all_ms > options_.watermark_factor * p99) {
    return "slow-watermark";
  }
  if (input.breaker_tripped && options_.capture_on_breaker_open) {
    return "breaker-open";
  }
  if (!input.replan_text.empty() && options_.capture_on_replan) {
    return "replan";
  }
  if (input.degraded && options_.capture_on_degraded) return "degraded";
  if (input.partial && options_.capture_on_partial) return "partial";
  return "";
}

std::vector<SlowQueryRow> DiagnosticsCenter::CollectRows(
    engine::op::PhysicalOp* root) const {
  std::vector<SlowQueryRow> rows;
  if (root == nullptr) return rows;
  root->VisitTree([this, &rows](engine::op::PhysicalOp& op, size_t depth) {
    SlowQueryRow row;
    row.depth = depth;
    row.op = engine::op::OpKindName(op.kind());
    row.label = op.label();
    row.opens = op.stats().opens;
    row.rows = op.stats().rows;
    row.sim_total_ms = op.stats().sim_total_ms;
    auto* call = dynamic_cast<engine::op::DomainCallOp*>(&op);
    if (call != nullptr && dcsm_ != nullptr) {
      Result<dcsm::CostEstimate> est = dcsm_->Cost(call->EstimationPattern());
      if (est.ok()) {
        row.has_estimate = true;
        row.est_tf_ms = est->cost.t_first_ms;
        row.est_ta_ms = est->cost.t_all_ms;
        row.est_card = est->cost.cardinality;
        row.est_source = est->source;
      }
    }
    rows.push_back(std::move(row));
  });
  return rows;
}

Status DiagnosticsCenter::Persist(DebugBundle& bundle, size_t index) const {
  char name[64];
  std::snprintf(name, sizeof(name), "bundle_%03zu_q%llu", index,
                static_cast<unsigned long long>(bundle.query_id));
  std::filesystem::path dir =
      std::filesystem::path(options_.bundle_dir) / name;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create bundle directory " + dir.string() +
                            ": " + ec.message());
  }
  HERMES_RETURN_IF_ERROR(WriteStringToFile((dir / "manifest.json").string(),
                                           bundle.ManifestJson()));
  HERMES_RETURN_IF_ERROR(WriteStringToFile((dir / "events.json").string(),
                                           EventsJson(bundle.events)));
  HERMES_RETURN_IF_ERROR(
      WriteStringToFile((dir / "trace.json").string(), bundle.chrome_trace));
  HERMES_RETURN_IF_ERROR(
      WriteStringToFile((dir / "explain.txt").string(), bundle.explain_text));
  HERMES_RETURN_IF_ERROR(
      WriteStringToFile((dir / "metrics.prom").string(), bundle.prometheus));
  if (!bundle.replan_text.empty()) {
    HERMES_RETURN_IF_ERROR(WriteStringToFile((dir / "replan.txt").string(),
                                             bundle.replan_text));
  }
  bundle.dir = dir.string();
  return Status::OK();
}

void DiagnosticsCenter::AppendSlowRecordLocked(const std::string& record) {
  slow_log_.push_back(record);
  while (options_.slow_log_max_records > 0 &&
         slow_log_.size() > options_.slow_log_max_records) {
    slow_log_.pop_front();
  }
  if (options_.bundle_dir.empty()) return;
  // The rolling structured log sits beside the bundles, rotated by size so
  // a sustained anomaly storm (e.g. a brownout) cannot grow it unbounded.
  std::error_code ec;
  std::filesystem::create_directories(options_.bundle_dir, ec);
  if (ec) return;
  std::filesystem::path path =
      std::filesystem::path(options_.bundle_dir) / "slow_queries.log";
  if (options_.slow_log_max_bytes > 0) {
    uintmax_t size = std::filesystem::file_size(path, ec);
    if (!ec && size + record.size() > options_.slow_log_max_bytes) {
      // Best effort: a failed rotation degrades to an oversized log, never
      // a failed capture.
      std::filesystem::rename(path, path.string() + ".1", ec);
    }
  }
  std::ofstream log(path, std::ios::app);
  if (log) log << record;
}

void DiagnosticsCenter::CaptureBrownoutTransition(int from_level, int to_level,
                                                  double shed_rate) {
  std::lock_guard<std::mutex> lock(mu_);
  DebugBundle bundle;
  bundle.reason = "brownout-transition";
  bundle.query_text =
      std::string("brownout ") +
      overload::BrownoutController::LevelName(from_level) + " -> " +
      overload::BrownoutController::LevelName(to_level) +
      " shed_rate=" + Num(shed_rate);
  bundle.completeness = overload::BrownoutController::LevelName(to_level);
  // No single query owns a ladder transition: snapshot the recorder's
  // resident events across queries plus the metrics at this instant.
  if (recorder_ != nullptr) bundle.events = recorder_->SnapshotAll();
  if (registry_ != nullptr) bundle.prometheus = registry_->ExposePrometheus();

  AppendSlowRecordLocked(bundle.SlowQueryRecord());
  const size_t index = captures_;
  ++captures_;
  if (captures_total_ != nullptr) captures_total_->Add(1);
  if (!options_.bundle_dir.empty() && index < options_.max_bundles) {
    (void)Persist(bundle, index);
  }
  bundles_.push_back(std::move(bundle));
  while (bundles_.size() > options_.max_bundles) bundles_.pop_front();
}

std::string DiagnosticsCenter::MaybeCapture(
    const DiagnosticsCaptureInput& input) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string reason = CaptureReasonLocked(input);
  if (reason.empty()) return reason;

  DebugBundle bundle;
  bundle.query_id = input.query_id;
  bundle.reason = reason;
  bundle.query_text = input.query_text;
  bundle.t_all_ms = input.t_all_ms;
  bundle.completeness = input.completeness;
  if (recorder_ != nullptr) {
    bundle.events = recorder_->SnapshotQuery(input.query_id);
  }
  bundle.chrome_trace = obs::ChromeTraceJson({input.tracer});
  bundle.replan_text = input.replan_text;
  if (input.explain_fn) bundle.explain_text = input.explain_fn();
  if (registry_ != nullptr) bundle.prometheus = registry_->ExposePrometheus();
  bundle.rows = CollectRows(input.root);

  AppendSlowRecordLocked(bundle.SlowQueryRecord());
  const size_t index = captures_;
  ++captures_;
  if (captures_total_ != nullptr) captures_total_->Add(1);

  if (!options_.bundle_dir.empty() && index < options_.max_bundles) {
    // Persistence failures (full disk, bad path) degrade the capture to
    // in-memory; diagnostics must never fail the query they describe.
    (void)Persist(bundle, index);
  }
  bundles_.push_back(std::move(bundle));
  while (bundles_.size() > options_.max_bundles) bundles_.pop_front();
  return reason;
}

Status DiagnosticsCenter::Dump(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create diagnostics directory " + dir +
                            ": " + ec.message());
  }
  std::filesystem::path base(dir);
  if (recorder_ != nullptr) {
    HERMES_RETURN_IF_ERROR(WriteStringToFile(
        (base / "events.json").string(), EventsJson(recorder_->SnapshotAll())));
  }
  if (registry_ != nullptr) {
    HERMES_RETURN_IF_ERROR(WriteStringToFile((base / "metrics.prom").string(),
                                             registry_->ExposePrometheus()));
  }
  if (drift_ != nullptr) {
    HERMES_RETURN_IF_ERROR(WriteStringToFile((base / "drift.txt").string(),
                                             drift_->Report().ToString()));
  }
  std::string log;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::string& record : slow_log_) log += record;
  }
  return WriteStringToFile((base / "slow_queries.log").string(), log);
}

std::vector<DebugBundle> DiagnosticsCenter::bundles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<DebugBundle>(bundles_.begin(), bundles_.end());
}

std::vector<std::string> DiagnosticsCenter::slow_query_log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<std::string>(slow_log_.begin(), slow_log_.end());
}

uint64_t DiagnosticsCenter::captures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return captures_;
}

}  // namespace hermes
