#include "engine/mediator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "cim/cache_interceptor.h"
#include "common/io.h"
#include "common/rng.h"
#include "lang/parser.h"
#include "optimizer/plan_compiler.h"

namespace hermes {

const char* QueryPriorityName(QueryPriority p) {
  switch (p) {
    case QueryPriority::kHigh: return "high";
    case QueryPriority::kNormal: return "normal";
    case QueryPriority::kLow: return "low";
  }
  return "unknown";
}

const char* QueryCompletenessName(QueryCompleteness c) {
  switch (c) {
    case QueryCompleteness::kComplete: return "complete";
    case QueryCompleteness::kDegraded: return "degraded";
    case QueryCompleteness::kPartial: return "partial";
  }
  return "unknown";
}

Mediator::Mediator() : Mediator(/*network_seed=*/1996) {}

Mediator::Mediator(uint64_t network_seed)
    : network_(std::make_shared<net::NetworkSimulator>(network_seed)) {
  network_->BindMetrics(*metrics_);
  dcsm_.BindMetrics(*metrics_);
  // Per-operator-kind execution instruments (hermes_exec_op_*), shared by
  // every query this mediator runs.
  executor_options_.op_metrics = engine::op::ExecOpMetrics::Bind(*metrics_);
  metrics_->Register("hermes_queries_total", "Queries executed to completion",
                     {}, queries_total_);
  metrics_->Register("hermes_query_failures_total",
                     "Queries that returned an error", {},
                     query_failures_total_);
  metrics_->Register("hermes_query_sim_ms",
                     "Simulated end-to-end latency (Ta) per query", {},
                     query_sim_ms_);
  metrics_->Register("hermes_query_tf_sim_ms",
                     "Simulated time to the first answer (Tf) per query", {},
                     query_tf_sim_ms_);
  metrics_->Register("hermes_query_ta_sim_ms",
                     "Simulated time to evaluation completion (Ta) per query",
                     {}, query_ta_sim_ms_);
  single_flight_->BindMetrics(*metrics_);
  metrics_->Register("hermes_replan_triggers_total",
                     "Mid-query re-optimizations triggered (breaker-open or "
                     "estimate divergence)",
                     {}, replan_triggers_total_);
  metrics_->Register("hermes_replan_splices_total",
                     "Spine subtrees re-lowered and spliced in by mid-query "
                     "re-optimization",
                     {}, replan_splices_total_);
  metrics_->Register(
      "hermes_dcsm_estimate_rel_error",
      "Relative error |predicted - actual| / actual of the executed plan's "
      "DCSM cost prediction",
      {}, estimate_rel_error_);
#define HERMES_FIELD(f)                                                \
  metrics_->Register("hermes_query_" #f "_total",                      \
                     "CallMetrics field '" #f "' folded across queries", {}, \
                     fold_.f);
  HERMES_CALL_METRICS_UINT64_FIELDS(HERMES_FIELD)
  HERMES_CALL_METRICS_DOUBLE_FIELDS(HERMES_FIELD)
#undef HERMES_FIELD
}

Status Mediator::CheckNotServing(const char* operation) const {
  if (serving()) {
    return Status::FailedPrecondition(
        std::string(operation) +
        " is not allowed while a QueryPool is serving; wire the mediator "
        "before calling Serve()");
  }
  return Status::OK();
}

Status Mediator::RegisterDomain(const std::string& name,
                                std::shared_ptr<Domain> domain) {
  std::unique_lock lock(wiring_mu_);
  HERMES_RETURN_IF_ERROR(CheckNotServing("RegisterDomain"));
  if (plan_cache_ != nullptr) plan_cache_->Clear();
  return registry_.Register(name, std::move(domain));
}

Status Mediator::RegisterRemoteDomain(const std::string& name,
                                      std::shared_ptr<Domain> inner,
                                      net::SiteParams site) {
  std::unique_lock lock(wiring_mu_);
  HERMES_RETURN_IF_ERROR(CheckNotServing("RegisterRemoteDomain"));
  if (plan_cache_ != nullptr) plan_cache_->Clear();
  // Declarative stack: [resilience → network] over the source domain. The
  // resilience layer is always present (so its metric families exist and
  // policies can be changed later); its default policy is pass-through.
  auto link =
      std::make_shared<net::NetworkInterceptor>(std::move(site), network_);
  link->BindMetrics(*metrics_, name);
  link->set_fault_injector(fault_injector_);
  link->set_single_flight(single_flight_);
  auto shield = std::make_shared<resilience::ResilienceInterceptor>(
      link->site().name, network_->seed(), link, default_resilience_policy_);
  shield->BindMetrics(*metrics_, name);
  // The overload layer sits between resilience and the link: breaker
  // probes from above are exempt from its limiter, and its hedges re-enter
  // the registry like failovers do. Default policy is pass-through.
  auto governor =
      std::make_shared<overload::OverloadInterceptor>(link->site().name);
  governor->BindMetrics(*metrics_, name);
  governor->set_policy(default_overload_policy_);
  governor->set_brownout(brownout_);
  dcsm::Dcsm* dcsm = &dcsm_;
  governor->set_baseline([dcsm](const DomainCall& call) {
    Result<dcsm::CostEstimate> est = dcsm->Cost(call.ToSpec());
    if (!est.ok() || est->source == "default") return 0.0;
    return est->cost.t_all_ms;
  });
  std::string pipeline_name = inner->name() + "@" + link->site().name;
  HERMES_RETURN_IF_ERROR(registry_.Register(
      name,
      std::make_shared<PipelineDomain>(
          std::move(pipeline_name),
          std::vector<std::shared_ptr<CallInterceptor>>{shield, governor,
                                                        link},
          std::move(inner))));
  // Keep the drift tracker's (domain → site) labels current when domains
  // are registered after EnableDiagnostics.
  if (drift_ != nullptr) drift_->SetSite(name, link->site().name);
  links_[name] = std::move(link);
  resilience_layers_[name] = std::move(shield);
  overload_layers_[name] = std::move(governor);
  return Status::OK();
}

Status Mediator::EnableOverloadControl(
    const overload::OverloadPolicy& policy,
    const overload::BrownoutController::Options& brownout) {
  std::unique_lock lock(wiring_mu_);
  HERMES_RETURN_IF_ERROR(CheckNotServing("EnableOverloadControl"));
  default_overload_policy_ = policy;
  brownout_ = std::make_shared<overload::BrownoutController>(brownout);
  brownout_->BindMetrics(*metrics_);
  brownout_->set_transition_hook([this](int from, int to, double shed_rate) {
    // Queries hold wiring_mu_ shared for their whole run, so recorder_ and
    // diag_ cannot be rewired out from under a firing hook.
    if (recorder_ != nullptr) {
      obs::FlightEvent ev = obs::FlightEvent::Make(
          obs::FlightEventKind::kBrownout, /*query_id=*/0, /*seq=*/0,
          /*sim_ms=*/0.0);
      ev.set_detail(
          std::string(overload::BrownoutController::LevelName(from)) + "->" +
          overload::BrownoutController::LevelName(to));
      ev.value = shed_rate;
      ev.aux = static_cast<uint64_t>(to);
      recorder_->Emit(ev);
    }
    if (diag_ != nullptr) {
      diag_->CaptureBrownoutTransition(from, to, shed_rate);
    }
  });
  for (auto& [name, governor] : overload_layers_) {
    governor->set_policy(policy);
    governor->set_brownout(brownout_);
  }
  return Status::OK();
}

overload::OverloadInterceptor* Mediator::overload_layer(
    const std::string& name) {
  auto it = overload_layers_.find(name);
  return it == overload_layers_.end() ? nullptr : it->second.get();
}

Status Mediator::EnableDiagnostics(const DiagnosticsOptions& options) {
  std::unique_lock lock(wiring_mu_);
  HERMES_RETURN_IF_ERROR(CheckNotServing("EnableDiagnostics"));
  // Tear the borrower down before replacing what it borrows. The new
  // recorder re-binds (replaces) the registry's callback gauges before the
  // old recorder is destroyed, so an exposition never reads a dead one.
  diag_.reset();
  auto recorder = std::make_unique<obs::FlightRecorder>(options.ring_capacity);
  recorder->BindMetrics(*metrics_);
  recorder_ = std::move(recorder);
  drift_ = std::make_unique<dcsm::DriftTracker>(&dcsm_, options.drift);
  drift_->BindMetrics(metrics_);
  for (const auto& [name, link] : links_) {
    drift_->SetSite(name, link->site().name);
  }
  diag_ = std::make_unique<DiagnosticsCenter>(options, recorder_.get(), &dcsm_,
                                              drift_.get(), metrics_);
  WireDriftInvalidation();
  return Status::OK();
}

Status Mediator::EnablePlanCache(optimizer::PlanCacheOptions options) {
  std::unique_lock lock(wiring_mu_);
  HERMES_RETURN_IF_ERROR(CheckNotServing("EnablePlanCache"));
  engine::op::CompileOptions compile_options;
  compile_options.async_scatter_gather = async_execution_;
  plan_cache_async_ = async_execution_;
  plan_cache_ = std::make_unique<optimizer::PlanCache>(options, &dcsm_,
                                                       compile_options);
  plan_cache_->BindMetrics(*metrics_);
  WireDriftInvalidation();
  return Status::OK();
}

void Mediator::WireDriftInvalidation() {
  if (drift_ == nullptr || plan_cache_ == nullptr) return;
  optimizer::PlanCache* cache = plan_cache_.get();
  drift_->set_exceeded_hook([cache](const std::string& site,
                                    const std::string& domain,
                                    const std::string& adorn) {
    cache->InvalidateDrift(site, domain, adorn);
  });
}

std::string Mediator::PlanCacheOptionsTag(const QueryOptions& options) {
  std::string tag = options.use_optimizer ? "opt" : "raw";
  if (options.use_cim) tag += "+cim";
  if (options.cim_only) tag += "+cimonly";
  if (options.goal == optimizer::OptimizationGoal::kFirstAnswer) tag += "+tf";
  return tag;
}

std::string Mediator::SiteOf(const std::string& domain) const {
  std::string logical =
      domain.rfind("cim_", 0) == 0 ? domain.substr(4) : domain;
  auto it = links_.find(logical);
  return it == links_.end() ? "" : it->second->site().name;
}

std::vector<optimizer::PlanCacheDep> Mediator::CollectPlanDeps(
    const optimizer::CandidatePlan& plan) const {
  std::vector<optimizer::PlanCacheDep> deps;
  auto add = [this, &deps](const lang::Atom& goal) {
    if (!goal.is_domain_call()) return;
    std::string logical = goal.call.domain.rfind("cim_", 0) == 0
                              ? goal.call.domain.substr(4)
                              : goal.call.domain;
    for (const optimizer::PlanCacheDep& d : deps) {
      if (d.domain == logical) return;
    }
    optimizer::PlanCacheDep dep;
    dep.site = SiteOf(logical);
    dep.domain = logical;
    // Adornment left as wildcard: a drift exceedance on any shape of the
    // domain's calls invalidates the plan.
    deps.push_back(std::move(dep));
  };
  for (const lang::Atom& goal : plan.query.goals) add(goal);
  for (const lang::Rule& rule : plan.program.rules) {
    for (const lang::Atom& goal : rule.body) add(goal);
  }
  return deps;
}

Status Mediator::DumpDiagnostics(const std::string& dir) {
  std::shared_lock lock(wiring_mu_);
  if (diag_ == nullptr) {
    return Status::FailedPrecondition(
        "DumpDiagnostics requires EnableDiagnostics");
  }
  return diag_->Dump(dir);
}

dcsm::DriftReport Mediator::DriftReport() const {
  std::shared_lock lock(wiring_mu_);
  if (drift_ == nullptr) return {};
  return drift_->Report();
}

Status Mediator::SetResiliencePolicy(
    const std::string& name, const resilience::ResiliencePolicy& policy) {
  std::unique_lock lock(wiring_mu_);
  HERMES_RETURN_IF_ERROR(CheckNotServing("SetResiliencePolicy"));
  auto it = resilience_layers_.find(name);
  if (it == resilience_layers_.end()) {
    return Status::NotFound("no remote domain '" + name +
                            "' with a resilience layer");
  }
  it->second->set_policy(policy);
  return Status::OK();
}

resilience::ResilienceInterceptor* Mediator::resilience_layer(
    const std::string& name) {
  auto it = resilience_layers_.find(name);
  return it == resilience_layers_.end() ? nullptr : it->second.get();
}

Status Mediator::AddFailover(const std::string& name,
                             const std::string& alternate) {
  std::unique_lock lock(wiring_mu_);
  HERMES_RETURN_IF_ERROR(CheckNotServing("AddFailover"));
  auto it = resilience_layers_.find(name);
  if (it == resilience_layers_.end()) {
    return Status::NotFound("no remote domain '" + name +
                            "' with a resilience layer");
  }
  HERMES_ASSIGN_OR_RETURN(std::shared_ptr<Domain> primary,
                          registry_.Get(name));
  HERMES_ASSIGN_OR_RETURN(std::shared_ptr<Domain> backup,
                          registry_.Get(alternate));
  // The alternate must export every function the primary does — checked
  // at wiring time so a failover never dangles at query time.
  std::vector<FunctionInfo> exported = backup->Functions();
  for (const FunctionInfo& fn : primary->Functions()) {
    bool found = false;
    for (const FunctionInfo& alt : exported) {
      if (alt.name == fn.name && alt.arity == fn.arity) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          "failover target '" + alternate + "' does not export " + fn.name +
          "/" + std::to_string(fn.arity) + " required by '" + name + "'");
    }
  }
  DomainRegistry* registry = &registry_;
  it->second->set_failover(
      [registry, alternate](CallContext& ctx, const DomainCall& call) {
        DomainCall rerouted = call;
        rerouted.domain = alternate;
        return registry->Run(ctx, rerouted);
      });
  // The same replica doubles as the hedge route: calls with a registered
  // failover replica are the ones eligible for speculative hedging (same
  // no-cycles caveat as failover).
  auto governor = overload_layers_.find(name);
  if (governor != overload_layers_.end()) {
    governor->second->set_hedge_route(
        [registry, alternate](CallContext& ctx, const DomainCall& call) {
          DomainCall rerouted = call;
          rerouted.domain = alternate;
          return registry->Run(ctx, rerouted);
        });
  }
  return Status::OK();
}

Status Mediator::SetFaultPlan(net::FaultPlan plan) {
  std::unique_lock lock(wiring_mu_);
  HERMES_RETURN_IF_ERROR(CheckNotServing("SetFaultPlan"));
  fault_injector_ =
      plan.empty() ? nullptr
                   : std::make_shared<const net::FaultInjector>(std::move(plan));
  for (auto& [name, link] : links_) link->set_fault_injector(fault_injector_);
  return Status::OK();
}

Status Mediator::LoadFaultPlan(const std::string& path) {
  HERMES_ASSIGN_OR_RETURN(net::FaultPlan plan, net::FaultPlan::Load(path));
  return SetFaultPlan(std::move(plan));
}

Status Mediator::EnableCaching(const std::string& name,
                               cim::CimOptions options,
                               cim::CimCostParams params,
                               size_t cache_max_entries,
                               size_t cache_max_bytes, size_t cache_shards) {
  std::unique_lock lock(wiring_mu_);
  HERMES_RETURN_IF_ERROR(CheckNotServing("EnableCaching"));
  if (plan_cache_ != nullptr) plan_cache_->Clear();
  HERMES_ASSIGN_OR_RETURN(std::shared_ptr<Domain> inner, registry_.Get(name));
  std::string cim_name = "cim_" + name;
  auto cim_domain = std::make_shared<cim::CimDomain>(
      cim_name, name, inner, options, params, cache_max_entries,
      cache_max_bytes, cache_shards);
  cim_domain->BindMetrics(*metrics_);

  // Declarative stack: [cache] prepended to the wrapped entry's own stack
  // (so e.g. "cim_video" = cache → network → avis). The shared CIM state
  // lives in cim_domain; the interceptor is its pipeline entry path.
  std::vector<std::shared_ptr<CallInterceptor>> stack;
  stack.push_back(std::make_shared<cim::CacheInterceptor>(cim_domain));
  std::shared_ptr<Domain> terminal = std::move(inner);
  if (auto* wrapped = dynamic_cast<PipelineDomain*>(terminal.get())) {
    for (const auto& layer : wrapped->stack()) stack.push_back(layer);
    terminal = wrapped->terminal();
  }
  registry_.RegisterOrReplace(
      cim_name, std::make_shared<PipelineDomain>(cim_name, std::move(stack),
                                                 std::move(terminal)));
  cims_[name] = std::move(cim_domain);
  return Status::OK();
}

Status Mediator::AddInvariants(const std::string& text) {
  std::unique_lock lock(wiring_mu_);
  HERMES_RETURN_IF_ERROR(CheckNotServing("AddInvariants"));
  if (plan_cache_ != nullptr) plan_cache_->Clear();
  HERMES_ASSIGN_OR_RETURN(std::vector<lang::Invariant> invariants,
                          lang::Parser::ParseInvariants(text));
  for (lang::Invariant& inv : invariants) {
    auto it = cims_.find(inv.lhs.domain);
    if (it == cims_.end()) {
      return Status::InvalidArgument(
          "invariant targets domain '" + inv.lhs.domain +
          "' which has no CIM; call EnableCaching first: " + inv.ToString());
    }
    it->second->AddInvariant(std::move(inv));
  }
  return Status::OK();
}

Status Mediator::UseNativeCostModel(const std::string& name) {
  std::unique_lock lock(wiring_mu_);
  HERMES_RETURN_IF_ERROR(CheckNotServing("UseNativeCostModel"));
  if (plan_cache_ != nullptr) plan_cache_->Clear();
  HERMES_ASSIGN_OR_RETURN(std::shared_ptr<Domain> domain, registry_.Get(name));
  return dcsm_.RegisterNativeModel(name, std::move(domain));
}

Status Mediator::LoadProgram(const std::string& text) {
  std::unique_lock lock(wiring_mu_);
  HERMES_RETURN_IF_ERROR(CheckNotServing("LoadProgram"));
  if (plan_cache_ != nullptr) plan_cache_->Clear();
  HERMES_ASSIGN_OR_RETURN(lang::Program parsed,
                          lang::Parser::ParseProgram(text));
  for (lang::Rule& rule : parsed.rules) {
    program_.rules.push_back(std::move(rule));
  }
  return Status::OK();
}

Status Mediator::LoadProgramFile(const std::string& path) {
  HERMES_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return LoadProgram(text);
}

Status Mediator::ClearProgram() {
  std::unique_lock lock(wiring_mu_);
  HERMES_RETURN_IF_ERROR(CheckNotServing("ClearProgram"));
  if (plan_cache_ != nullptr) plan_cache_->Clear();
  program_.rules.clear();
  return Status::OK();
}

cim::CimDomain* Mediator::cim(const std::string& name) {
  auto it = cims_.find(name);
  return it == cims_.end() ? nullptr : it->second.get();
}

net::NetworkInterceptor* Mediator::remote_link(const std::string& name) {
  Result<std::shared_ptr<Domain>> domain = registry_.Get(name);
  if (!domain.ok()) return nullptr;
  auto* pipeline = dynamic_cast<PipelineDomain*>(domain->get());
  if (pipeline == nullptr) return nullptr;
  return dynamic_cast<net::NetworkInterceptor*>(
      pipeline->FindLayer("network"));
}

std::vector<std::string> Mediator::CachedDomains() const {
  std::vector<std::string> out;
  out.reserve(cims_.size());
  for (const auto& [name, cim_domain] : cims_) out.push_back(name);
  return out;
}

optimizer::RuleRewriter::Options Mediator::EffectiveRewriterOptions(
    const QueryOptions& options) const {
  optimizer::RuleRewriter::Options rw = rewriter_options_;
  rw.cim_domains = options.use_cim ? CachedDomains() : std::vector<std::string>{};
  rw.cim_only = options.cim_only && options.use_cim;
  if (!rw.domain_has_function) {
    // Selection push-down consults the registry for exported functions.
    const DomainRegistry* registry = &registry_;
    rw.domain_has_function = [registry](const std::string& domain,
                                        const std::string& function,
                                        size_t arity) {
      Result<std::shared_ptr<Domain>> d = registry->Get(domain);
      if (!d.ok()) return false;
      for (const FunctionInfo& fn : (*d)->Functions()) {
        if (fn.name == function && fn.arity == arity) return true;
      }
      return false;
    };
  }
  return rw;
}

Result<optimizer::OptimizerResult> Mediator::Plan(
    const std::string& query_text, const QueryOptions& options) {
  std::shared_lock lock(wiring_mu_);
  HERMES_ASSIGN_OR_RETURN(lang::Query query,
                          lang::Parser::ParseQuery(query_text));
  optimizer::QueryOptimizer opt(&dcsm_, EffectiveRewriterOptions(options),
                                estimator_params_);
  return opt.Optimize(program_, query, options.goal);
}

Result<optimizer::CandidatePlan> Mediator::PickPlan(const lang::Query& query,
                                                    const QueryOptions& options,
                                                    obs::Tracer* tracer,
                                                    QueryResult* result) {
  if (options.use_optimizer) {
    optimizer::QueryOptimizer opt(&dcsm_, EffectiveRewriterOptions(options),
                                  estimator_params_);
    HERMES_ASSIGN_OR_RETURN(
        optimizer::OptimizerResult optimized,
        opt.Optimize(program_, query, options.goal));
    if (tracer != nullptr) {
      uint64_t opt_span = tracer->BeginSpan("optimize", "optimizer", 0.0);
      tracer->AddArg(opt_span, "plan", optimized.best.description);
      tracer->AddArg(opt_span, "candidates",
                     std::to_string(optimized.candidates.size()));
      tracer->EndSpan(opt_span, optimized.total_estimation_ms);
    }
    if (result != nullptr) {
      result->plan_description = optimized.best.description;
      result->predicted = optimized.best.estimated;
      result->predicted_valid = optimized.best.estimatable;
      result->optimize_ms = optimized.total_estimation_ms;
      result->candidates = std::move(optimized.candidates);
    }
    return std::move(optimized.best);
  }

  optimizer::CandidatePlan plan;
  plan.program = program_;
  plan.query = query;
  plan.description = "as-written";
  if (options.use_cim && !cims_.empty()) {
    std::vector<std::string> cached = CachedDomains();
    optimizer::RuleRewriter::RedirectToCim(&plan.query.goals, cached);
    for (lang::Rule& rule : plan.program.rules) {
      optimizer::RuleRewriter::RedirectToCim(&rule.body, cached);
    }
    plan.description = "as-written+cim";
  }
  if (result != nullptr) result->plan_description = plan.description;
  return plan;
}

Result<std::string> Mediator::Explain(const std::string& query_text,
                                      const QueryOptions& options) {
  std::shared_lock lock(wiring_mu_);
  HERMES_ASSIGN_OR_RETURN(lang::Query query,
                          lang::Parser::ParseQuery(query_text));
  HERMES_ASSIGN_OR_RETURN(
      optimizer::CandidatePlan plan,
      PickPlan(query, options, /*tracer=*/nullptr, /*result=*/nullptr));
  engine::op::CompileOptions compile_options;
  compile_options.async_scatter_gather =
      options.async_scatter_gather || async_execution_;
  optimizer::PlanCompiler compiler(&dcsm_, compile_options);
  optimizer::CompiledPlan compiled = compiler.Compile(std::move(plan));
  return compiled.Explain(/*actuals=*/false);
}

Result<QueryResult> Mediator::Query(const std::string& query_text,
                                    const QueryOptions& options) {
  // Shared hold for the whole query: wiring mutations (exclusive holders)
  // can never observe — or create — a half-wired registry mid-query.
  std::shared_lock lock(wiring_mu_);
  HERMES_ASSIGN_OR_RETURN(lang::Query query,
                          lang::Parser::ParseQuery(query_text));

  QueryResult result;

  // Root span of the query's trace; optimizer time and execution both
  // start at simulated time 0 (Ta excludes optimization throughout the
  // experiment tables, so the trace keeps them as sibling envelopes).
  obs::Tracer* tracer = options.tracer;
  // With diagnostics on, an untraced query still records into a private
  // tracer so an auto-captured bundle always carries a Chrome trace.
  obs::Tracer internal_tracer;
  if (tracer == nullptr && diag_ != nullptr) tracer = &internal_tracer;
  uint64_t root_span = 0;
  if (tracer != nullptr) {
    root_span = tracer->BeginSpan("query", "query", 0.0);
    tracer->AddArg(root_span, "text", query_text);
  }

  // Plan acquisition. With the plan cache on, a repeat query shape reuses
  // a pooled compiled instance — constants rebound in place, optimizer and
  // compiler skipped entirely; a miss runs the historical pick-and-lower
  // path and registers its skeleton. The lease (and with it the instance's
  // operator tree) stays checked out until the query — including EXPLAIN
  // and diagnostics capture — is done with the tree.
  // Brownout ladder: snapshot the level once per query. At kDegrade and
  // above low-priority queries lose their scatter-gather fanout (their
  // branches re-serialize, shedding concurrent source load) and every
  // query prefers stale-cache serves; hedging is off from kNoHedge up.
  const int brownout_level = brownout_ != nullptr ? brownout_->level() : 0;
  result.brownout_level = brownout_level;
  const bool brownout_force_sync =
      brownout_level >= overload::BrownoutController::kDegrade &&
      options.priority == QueryPriority::kLow;

  engine::op::CompileOptions compile_options;
  compile_options.async_scatter_gather =
      (options.async_scatter_gather || async_execution_) &&
      !brownout_force_sync;
  compile_options.record_spine = replan_options_.enabled;
  const bool cacheable =
      plan_cache_ != nullptr &&
      compile_options.async_scatter_gather == plan_cache_async_;
  optimizer::PlanCacheKey cache_key;
  std::vector<Value> cache_constants;
  optimizer::PlanCache::Lease lease;
  optimizer::CompiledPlan compiled_local;
  optimizer::CompiledPlan* compiled = nullptr;
  if (cacheable) {
    cache_key = optimizer::PlanCache::MakeKey(
        query, PlanCacheOptionsTag(options), &cache_constants);
    lease = plan_cache_->Acquire(cache_key, cache_constants);
    if (lease) {
      compiled = lease.plan();
      result.plan_cache_hit = true;
      result.plan_description = compiled->plan().description;
      result.predicted = compiled->plan().estimated;
      result.predicted_valid = compiled->plan().estimatable;
    }
  }
  if (compiled == nullptr) {
    HERMES_ASSIGN_OR_RETURN(optimizer::CandidatePlan plan,
                            PickPlan(query, options, tracer, &result));
    // Lower the chosen plan to its physical operator tree; execution
    // drives the tree, and the same compiled artifact renders EXPLAIN
    // afterwards.
    optimizer::PlanCompiler compiler(&dcsm_, compile_options);
    compiled_local = compiler.Compile(std::move(plan));
    compiled = &compiled_local;
    if (cacheable) {
      plan_cache_->Insert(cache_key, cache_constants, compiled->plan(),
                          result.predicted, result.predicted_valid,
                          CollectPlanDeps(compiled->plan()));
    }
  }

  // Mid-query re-optimization: arm a per-query manager over the tree's
  // join spine. Its divergence baseline is snapshotted now — never read
  // from the live DCSM mid-flight — so decisions depend only on per-query
  // state and replay identically under any thread count.
  std::unique_ptr<engine::op::ReplanManager> replan;
  if (replan_options_.enabled && !compiled->tree().spine.empty()) {
    engine::op::ReplanManager::Setup setup;
    setup.program = &compiled->plan().program;
    setup.goals = &compiled->plan().query.goals;
    setup.spine = compiled->tree().spine;
    setup.compile_options = compile_options;
    setup.site_of = [this](const std::string& domain) {
      return SiteOf(domain);
    };
    setup.cim_domains = CachedDomains();
    if (replan_options_.divergence_factor > 0.0) {
      setup.estimates = engine::op::SnapshotGoalEstimates(
          &dcsm_, compiled->plan().query.goals);
    }
    setup.options = replan_options_;
    replan = std::make_unique<engine::op::ReplanManager>(std::move(setup));
  }

  engine::ExecutorOptions exec_options = executor_options_;
  exec_options.mode = options.mode;
  exec_options.interactive_batch = options.interactive_batch;
  exec_options.record_statistics = options.record_statistics;
  exec_options.collect_trace =
      options.collect_trace || executor_options_.collect_trace;
  // Predicate statistics are a sub-category of statistics recording.
  exec_options.record_predicate_statistics =
      options.record_statistics &&
      executor_options_.record_predicate_statistics;
  exec_options.tolerate_source_failures =
      options.partial_results || executor_options_.tolerate_source_failures;
  engine::Executor executor(&registry_, &dcsm_, exec_options);
  CallContext ctx;
  if (options.deadline_ms > 0.0) ctx.deadline_ms = options.deadline_ms;
  ctx.prefer_stale =
      brownout_level >= overload::BrownoutController::kDegrade;
  ctx.hedging_disabled =
      brownout_level >= overload::BrownoutController::kNoHedge;
  ctx.query_id = options.query_id != 0 ? options.query_id : ReserveQueryId();
  result.query_id = ctx.query_id;
  ctx.tracer = tracer;
  if (tracer != nullptr) {
    tracer->set_query_id(ctx.query_id);
    tracer->AddArg(root_span, "query_id", std::to_string(ctx.query_id));
  }
  ctx.recorder = recorder_.get();
  ctx.drift = drift_.get();
  if (ctx.recorder != nullptr) {
    obs::FlightEvent ev =
        obs::FlightEvent::Make(obs::FlightEventKind::kQueryStart, ctx.query_id,
                               ctx.recorder_seq++, /*sim_ms=*/0.0);
    ev.set_detail(result.plan_description);
    ctx.recorder->Emit(ev);
  }
  if (ctx.recorder != nullptr && cacheable) {
    obs::FlightEvent ev = obs::FlightEvent::Make(
        result.plan_cache_hit ? obs::FlightEventKind::kPlanCacheHit
                              : obs::FlightEventKind::kPlanCacheMiss,
        ctx.query_id, ctx.recorder_seq++, /*sim_ms=*/0.0);
    ev.set_detail(result.plan_description);
    ctx.recorder->Emit(ev);
  }

  // Per-query network randomness: the stream is a function of (base seed,
  // query id) only, so this query's simulated latencies replay identically
  // whatever other queries run concurrently.
  Rng net_stream(0);
  if (per_query_net_rng_) {
    net_stream = Rng(Rng::StreamSeed(network_->seed(), ctx.query_id));
    ctx.net_rng = &net_stream;
  }

  Result<engine::QueryExecution> executed = executor.ExecuteCompiled(
      compiled->plan().program, compiled->tree(), &ctx, replan.get());
  if (replan != nullptr && replan->replanned()) {
    result.replan_events = replan->events();
    replan_triggers_total_->Add(replan->triggers());
    replan_splices_total_->Add(replan->splices());
    // A replanned tree no longer matches its cached skeleton; the release
    // below drops it instead of pooling it.
    if (lease) lease.MarkDirty();
  }
  if (!executed.ok()) {
    query_failures_total_->Add(1);
    // Failed queries still fold their per-layer counters into the registry
    // series: the calls they executed (and the failures that killed them)
    // happened, and e.g. remote_failures must keep matching the network
    // simulator's global failure count.
#define HERMES_FIELD(f) fold_.f->Add(ctx.metrics.f);
    HERMES_CALL_METRICS_UINT64_FIELDS(HERMES_FIELD)
    HERMES_CALL_METRICS_DOUBLE_FIELDS(HERMES_FIELD)
#undef HERMES_FIELD
    if (tracer != nullptr) {
      tracer->MarkFailed(root_span, executed.status().ToString());
      tracer->EndSpan(root_span, 0.0);  // clamps up to the children's ends
    }
    if (ctx.recorder != nullptr) {
      obs::FlightEvent ev =
          obs::FlightEvent::Make(obs::FlightEventKind::kQueryEnd, ctx.query_id,
                                 ctx.recorder_seq++, ctx.now_ms);
      ev.set_detail("failed");
      ctx.recorder->Emit(ev);
    }
    if (lease) plan_cache_->Release(std::move(lease));
    return executed.status();
  }
  result.execution = std::move(executed).value();
  result.lost_sources = std::move(ctx.source_errors);
  bool any_lost = false;
  for (const SourceError& e : result.lost_sources) {
    if (!e.masked) {
      any_lost = true;
      break;
    }
  }
  if (any_lost) {
    result.completeness = QueryCompleteness::kPartial;
  } else if (!result.lost_sources.empty()) {
    result.completeness = QueryCompleteness::kDegraded;
  } else if (options.partial_results && !result.execution.complete &&
             ctx.metrics.deadline_aborts > 0) {
    // The deadline cut evaluation short without losing a specific source.
    result.completeness = QueryCompleteness::kPartial;
  }
  if (options.explain) {
    result.explain_text = compiled->Explain(/*actuals=*/true);
    for (const engine::op::ReplanEvent& ev : result.replan_events) {
      result.explain_text += ev.ToString();
    }
    if (brownout_level > 0) {
      // Only non-normal levels annotate, so goldens captured with the
      // ladder cold (or the subsystem off) stay byte-identical.
      result.explain_text +=
          "brownout: level=" + std::to_string(brownout_level) + " (" +
          overload::BrownoutController::LevelName(brownout_level) +
          ") hedging=off";
      if (brownout_level >= overload::BrownoutController::kDegrade) {
        result.explain_text += " prefer_stale=on";
      }
      if (brownout_force_sync) result.explain_text += " fanout=sequential";
      result.explain_text += "\n";
    }
  }
  result.metrics = ctx.metrics;
  result.tf_sim_ms = result.execution.t_first_ms;
  result.ta_sim_ms = result.execution.t_all_ms;
  result.traffic.remote_calls = ctx.metrics.remote_calls;
  result.traffic.failures = ctx.metrics.remote_failures;
  result.traffic.bytes = ctx.metrics.bytes_transferred;
  result.traffic.charge = ctx.metrics.network_charge;

  if (tracer != nullptr) {
    tracer->AddArg(root_span, "plan", result.plan_description);
    tracer->AddArg(root_span, "answers",
                   std::to_string(result.execution.answers.size()));
    tracer->AddArg(root_span, "arena_bytes",
                   std::to_string(result.execution.arena_bytes));
    if (result.completeness != QueryCompleteness::kComplete) {
      tracer->AddArg(root_span, "completeness",
                     QueryCompletenessName(result.completeness));
    }
    tracer->EndSpan(root_span,
                    std::max(result.execution.t_all_ms, result.optimize_ms));
  }

  // Fold this query's per-layer counters into the process-level registry
  // series (the macro covers every CallMetrics field by construction).
  queries_total_->Add(1);
  query_sim_ms_->Observe(result.execution.t_all_ms);
  query_tf_sim_ms_->Observe(result.execution.t_first_ms);
  query_ta_sim_ms_->Observe(result.execution.t_all_ms);
#define HERMES_FIELD(f) fold_.f->Add(ctx.metrics.f);
  HERMES_CALL_METRICS_UINT64_FIELDS(HERMES_FIELD)
  HERMES_CALL_METRICS_DOUBLE_FIELDS(HERMES_FIELD)
#undef HERMES_FIELD
  if (result.predicted_valid && result.execution.t_all_ms > 0.0) {
    estimate_rel_error_->Observe(
        std::abs(result.predicted.t_all_ms - result.execution.t_all_ms) /
        result.execution.t_all_ms);
  }

  bool breaker_tripped = false;
  for (const auto& [site, breaker] : ctx.breaker_states) {
    if (breaker.state == CallContext::BreakerState::kOpen) {
      breaker_tripped = true;
      break;
    }
  }
  if (plan_cache_ != nullptr && breaker_tripped) {
    // Plans routing through a site whose breaker opened would re-trip it;
    // drop them so the next miss plans around the outage.
    for (const auto& [site, breaker] : ctx.breaker_states) {
      if (breaker.state != CallContext::BreakerState::kOpen) continue;
      plan_cache_->InvalidateSite(site);
      if (ctx.recorder != nullptr) {
        obs::FlightEvent ev = obs::FlightEvent::Make(
            obs::FlightEventKind::kPlanCacheInvalidate, ctx.query_id,
            ctx.recorder_seq++, result.execution.t_all_ms);
        ev.set_site(site);
        ev.set_detail("breaker_open");
        ctx.recorder->Emit(ev);
      }
    }
  }
  if (ctx.recorder != nullptr) {
    obs::FlightEvent ev =
        obs::FlightEvent::Make(obs::FlightEventKind::kQueryEnd, ctx.query_id,
                               ctx.recorder_seq++, result.execution.t_all_ms);
    ev.set_detail(QueryCompletenessName(result.completeness));
    ev.value = result.execution.t_all_ms;
    ev.aux = result.execution.answers.size();
    ctx.recorder->Emit(ev);
  }
  if (diag_ != nullptr) {
    DiagnosticsCaptureInput capture;
    capture.query_id = ctx.query_id;
    capture.query_text = query_text;
    capture.t_all_ms = result.execution.t_all_ms;
    capture.completeness = QueryCompletenessName(result.completeness);
    capture.degraded = result.completeness == QueryCompleteness::kDegraded;
    capture.partial = result.completeness == QueryCompleteness::kPartial;
    capture.breaker_tripped = breaker_tripped;
    for (const engine::op::ReplanEvent& ev : result.replan_events) {
      capture.replan_text += ev.ToString();
    }
    capture.explain_fn = [compiled] { return compiled->Explain(true); };
    capture.tracer = tracer;
    capture.root = compiled->tree().root.get();
    diag_->MaybeCapture(capture);
  }
  if (lease) plan_cache_->Release(std::move(lease));

  if (pacing_scale_ > 0.0) {
    // Realize the simulated service time as wall-clock wait (scaled), so
    // concurrent callers overlap their waits like clients of a real
    // mediator blocked on remote sources would.
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        result.execution.t_all_ms * pacing_scale_));
  }
  return result;
}

}  // namespace hermes
