#ifndef HERMES_ENGINE_BINDINGS_H_
#define HERMES_ENGINE_BINDINGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "lang/ast.h"

namespace hermes::engine {

/// Runtime variable bindings of one evaluation branch.
using Bindings = std::map<std::string, Value>;

/// Records bindings added to a Bindings map so they can be undone when the
/// evaluator backtracks past the atom that introduced them.
class BindingFrame {
 public:
  explicit BindingFrame(Bindings* bindings) : bindings_(bindings) {}
  ~BindingFrame() { Rollback(); }

  BindingFrame(const BindingFrame&) = delete;
  BindingFrame& operator=(const BindingFrame&) = delete;

  /// Binds `var` to `value`, returning false when `var` is already bound
  /// to a different value (the binding then acts as an equality check).
  bool Bind(const std::string& var, const Value& value) {
    auto [it, inserted] = bindings_->emplace(var, value);
    if (inserted) {
      added_.push_back(var);
      return true;
    }
    return it->second == value;
  }

  /// Undoes every binding added through this frame.
  void Rollback() {
    for (const std::string& var : added_) bindings_->erase(var);
    added_.clear();
  }

 private:
  Bindings* bindings_;
  std::vector<std::string> added_;
};

/// Resolves `term` to a ground value under `bindings`: constants pass
/// through; variables must be bound, then the attribute path is applied.
Result<Value> ResolveTerm(const lang::Term& term, const Bindings& bindings);

/// True when `term` can be resolved to a ground value under `bindings`.
bool TermIsResolvable(const lang::Term& term, const Bindings& bindings);

}  // namespace hermes::engine

#endif  // HERMES_ENGINE_BINDINGS_H_
