#ifndef HERMES_ENGINE_BINDINGS_H_
#define HERMES_ENGINE_BINDINGS_H_

#include <cstddef>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "lang/ast.h"

namespace hermes::engine {

/// Runtime variable bindings of one evaluation branch.
///
/// A flat slot table replacing the historical `std::map<std::string,
/// Value>`: each slot is (name, value-view[, owned copy]). The data-plane
/// discipline is *views* — a binding normally points at a Value owned by
/// whoever produced it (a domain call's answer buffer, a rule-local slot, a
/// term constant in the AST), so binding a row costs zero heap allocations
/// and zero Value copies. Owned binds (deep copies) remain available for
/// the cold paths that need them.
///
/// Lifetime contract for views: the pointed-at Value must stay valid until
/// the binding is released. The operator tree guarantees this by LIFO frame
/// discipline — a frame's views always target storage bound (or opened)
/// strictly earlier, and frames roll back in reverse order before that
/// storage is touched. Slots live in a deque and are never erased (clear()
/// just marks them dead), so slot indices and the address of an owned
/// Value stay stable for the lifetime of the Bindings.
class Bindings {
 public:
  enum class BindOutcome {
    kInserted,  ///< The name was free; the binding was added.
    kMatched,   ///< Already bound to an equal value; nothing changed.
    kConflict,  ///< Already bound to a different value; nothing changed.
  };

  Bindings() = default;
  Bindings(const Bindings&) = delete;
  Bindings& operator=(const Bindings&) = delete;

  /// The value bound to `name`, or nullptr. The pointer is stable while
  /// the binding is live.
  const Value* Find(std::string_view name) const;

  bool Contains(std::string_view name) const { return Find(name) != nullptr; }

  /// Binds `name` to a borrowed `*value` (no copy). On kInserted,
  /// `*slot_out` (when non-null) receives the slot index for Release().
  BindOutcome BindView(std::string_view name, const Value* value,
                       size_t* slot_out = nullptr);

  /// Binds `name` to a deep copy owned by this scope.
  BindOutcome BindCopy(std::string_view name, const Value& value,
                       size_t* slot_out = nullptr);

  /// Releases the binding in `slot` (from a kInserted outcome). The slot —
  /// including its interned name — is recycled by later binds of the same
  /// variable, which is what keeps steady-state re-binding allocation-free.
  void Release(size_t slot);

  /// Marks every binding dead. Slot storage and names are retained for
  /// reuse; outstanding views into owned values become invalid.
  void clear();

  /// Number of live bindings.
  size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }

 private:
  struct Slot {
    std::string name;
    const Value* view = nullptr;  ///< Borrowed target, or &owned.
    Value owned;                  ///< Storage for copy binds.
    bool live = false;
  };

  // Deque: slot addresses (and therefore &slot.owned) must survive growth,
  // because live views may target another slot's owned value.
  std::deque<Slot> slots_;
  size_t live_ = 0;
};

/// Records bindings added to a Bindings scope so they can be undone when
/// the evaluator backtracks past the atom that introduced them. Holds the
/// first few slot indices inline: taking a frame and binding one variable —
/// the per-row pattern — touches no heap.
class BindingFrame {
 public:
  explicit BindingFrame(Bindings* bindings) : bindings_(bindings) {}
  ~BindingFrame() { Rollback(); }

  BindingFrame(const BindingFrame&) = delete;
  BindingFrame& operator=(const BindingFrame&) = delete;

  /// Binds `var` to a copy of `value`, returning false when `var` is
  /// already bound to a different value (the binding then acts as an
  /// equality check).
  bool Bind(const std::string& var, const Value& value) {
    size_t slot = 0;
    switch (bindings_->BindCopy(var, value, &slot)) {
      case Bindings::BindOutcome::kInserted:
        Record(slot);
        return true;
      case Bindings::BindOutcome::kMatched:
        return true;
      case Bindings::BindOutcome::kConflict:
        return false;
    }
    return false;
  }

  /// View-binding flavor: binds `var` to borrowed `*value`. Same equality
  /// semantics as Bind(); the caller guarantees `*value` outlives the
  /// frame (LIFO rollback discipline).
  bool BindView(std::string_view var, const Value* value) {
    size_t slot = 0;
    switch (bindings_->BindView(var, value, &slot)) {
      case Bindings::BindOutcome::kInserted:
        Record(slot);
        return true;
      case Bindings::BindOutcome::kMatched:
        return true;
      case Bindings::BindOutcome::kConflict:
        return false;
    }
    return false;
  }

  /// Undoes every binding added through this frame.
  void Rollback() {
    for (size_t i = 0; i < count_ && i < kInlineSlots; ++i) {
      bindings_->Release(inline_[i]);
    }
    for (size_t slot : overflow_) bindings_->Release(slot);
    count_ = 0;
    overflow_.clear();
  }

 private:
  static constexpr size_t kInlineSlots = 4;

  void Record(size_t slot) {
    if (count_ < kInlineSlots) {
      inline_[count_] = slot;
    } else {
      overflow_.push_back(slot);
    }
    ++count_;
  }

  Bindings* bindings_;
  size_t inline_[kInlineSlots] = {};
  size_t count_ = 0;
  std::vector<size_t> overflow_;
};

/// Resolves `term` to a ground value under `bindings`: constants pass
/// through; variables must be bound, then the attribute path is applied.
Result<Value> ResolveTerm(const lang::Term& term, const Bindings& bindings);

/// View flavor of ResolveTerm: the returned pointer aliases the AST
/// constant, the bound value, or a sub-value inside it — no copies. Valid
/// while the binding (and the storage it views) is live.
Result<const Value*> ResolveTermPtr(const lang::Term& term,
                                    const Bindings& bindings);

/// True when `term` can be resolved to a ground value under `bindings`.
bool TermIsResolvable(const lang::Term& term, const Bindings& bindings);

}  // namespace hermes::engine

#endif  // HERMES_ENGINE_BINDINGS_H_
