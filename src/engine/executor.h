#ifndef HERMES_ENGINE_EXECUTOR_H_
#define HERMES_ENGINE_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_costs.h"
#include "dcsm/stats_interceptor.h"
#include "domain/pipeline.h"
#include "domain/registry.h"
#include "engine/bindings.h"
#include "engine/op/compile.h"
#include "engine/op/op.h"
#include "engine/op/op_metrics.h"
#include "lang/ast.h"

namespace hermes::engine {

/// The paper's two modes of operation (Section 3). The enum lives with the
/// operator layer (engine/op/op.h); this is the historical name.
using ExecutionMode = op::ExecutionMode;

/// Tuning knobs of the executor.
struct ExecutorOptions {
  ExecutionMode mode = ExecutionMode::kAllAnswers;
  /// Answers per batch in interactive mode; evaluation stops after the
  /// first batch (callers re-query for more, as the paper's UI does).
  size_t interactive_batch = 1;
  /// Simulated per-comparison CPU.
  double comparison_cost_ms = kDefaultComparisonCostMs;
  /// Simulated per-tuple plumbing.
  double unification_cost_ms = kDefaultUnificationCostMs;
  size_t max_recursion_depth = 64;
  uint64_t max_domain_calls = 1000000;  ///< Runaway-query guard.
  bool record_statistics = true;  ///< Feed executed-call cost vectors to DCSM.
  /// Also record per-predicate invocation statistics (under the pseudo
  /// domain "idb") — the paper's Section 8 remedy for the estimator's
  /// blindness to backtracking: "cache, especially the time for the first
  /// answer of predicates in the same way we cache statistics for domain
  /// calls". Unresolvable (output) arguments are recorded as null and act
  /// as wildcards during estimation.
  bool record_predicate_statistics = true;
  /// Record every domain call (with timing and outcome) into
  /// QueryExecution::trace — the execution explain/debug facility.
  bool collect_trace = false;
  /// Emit an obs::Tracer span per physical operator (category "operator").
  /// Off by default: the walker-era trace shape stays unchanged.
  bool trace_operators = false;
  /// Graceful degradation: lost sources yield zero rows (query reported
  /// partial) and a query-deadline abort returns the answers gathered so
  /// far instead of an error. Off by default.
  bool tolerate_source_failures = false;
  /// Per-operator-kind hermes_exec_op_* instruments, shared by every query
  /// of one mediator (see op::ExecOpMetrics::Bind). May be null.
  std::shared_ptr<op::ExecOpMetrics> op_metrics;
};

/// One domain call as the trace layer saw it — the execution trace element
/// (now recorded by TraceInterceptor; the type lives in domain/pipeline.h).
using CallTrace = ::hermes::CallTrace;

/// The answers and simulated timing of one executed query.
struct QueryExecution {
  /// Query variables, in order of first textual occurrence.
  std::vector<std::string> var_names;
  /// One row per answer: the values of `var_names`.
  std::vector<ValueList> answers;
  double t_first_ms = 0.0;  ///< Simulated time to the first answer.
  double t_all_ms = 0.0;    ///< Simulated time to evaluation completion.
  uint64_t domain_calls = 0;
  /// Bytes the query drew from its execution arena (row slots, string
  /// payloads); the arena itself is reclaimed before Execute returns.
  size_t arena_bytes = 0;
  bool complete = true;  ///< False when interactive mode stopped early.
  /// Per-call trace, populated when ExecutorOptions::collect_trace is on.
  std::vector<CallTrace> trace;

  std::string ToString() const;
};

/// The execution driver over the physical operator layer (engine/op/).
///
/// Execute() compiles the query into an operator tree — AnswerSink ←
/// Project ← left-deep NestedLoopJoin chain (Section 7's left-to-right
/// pipelined nested loops) — and pulls it to exhaustion on the simulated
/// clock: answer i of a call opened at time t becomes consumable at
/// t + ArrivalOffsetMs(i), and processing an answer cannot start before
/// the previous sibling's subtree finished. T_f and T_a are read off these
/// virtual timestamps, reproducing the paper's measurements (including the
/// backtracking effects Section 8 discusses) without ever sleeping.
class Executor {
 public:
  /// `dcsm` may be null; when set and record_statistics is on, the stats
  /// layer (dcsm::StatsInterceptor) records every executed call's cost
  /// vector.
  Executor(const DomainRegistry* registry, dcsm::Dcsm* dcsm,
           ExecutorOptions options = {});

  /// Evaluates `query` against `program`, with domain calls routed through
  /// the call pipeline: executor → trace → stats → (per-domain stack via
  /// the registry) → domain.
  Result<QueryExecution> Execute(const lang::Program& program,
                                 const lang::Query& query);

  /// Same, threading the caller's `ctx` through every domain call so the
  /// caller can read per-query CallMetrics afterwards. The executor sets
  /// the call budget and the trace sink; query_id is the caller's to set.
  Result<QueryExecution> Execute(const lang::Program& program,
                                 const lang::Query& query, CallContext* ctx);

  /// Runs a pre-compiled operator tree (see op::Compile /
  /// optimizer::PlanCompiler). `program` must be the program the tree was
  /// compiled against. The tree is reset by Open, so a compiled plan can
  /// be executed repeatedly; per-operator OpStats accumulate across runs.
  /// When `replan` is non-null, the tree's spine joins consult it for
  /// mid-query re-optimization (the manager must outlive the call).
  Result<QueryExecution> ExecuteCompiled(const lang::Program& program,
                                         op::CompiledQuery& compiled,
                                         CallContext* ctx,
                                         op::ReplanManager* replan = nullptr);

 private:
  const DomainRegistry* registry_;
  ExecutorOptions options_;
  /// The stats layer; also receives predicate-invocation samples (the
  /// Section 8 predicate-Tf extension). Null when no DCSM was supplied.
  std::shared_ptr<dcsm::StatsInterceptor> stats_layer_;
};

/// Query variables in order of first occurrence (plain variables only;
/// `$b` and paths do not introduce result columns). Lives with the
/// operator compiler; re-exported under the historical name.
using op::QueryVariables;

}  // namespace hermes::engine

#endif  // HERMES_ENGINE_EXECUTOR_H_
