#ifndef HERMES_ENGINE_EXECUTOR_H_
#define HERMES_ENGINE_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "dcsm/stats_interceptor.h"
#include "domain/pipeline.h"
#include "domain/registry.h"
#include "engine/bindings.h"
#include "lang/ast.h"

namespace hermes::engine {

/// The paper's two modes of operation (Section 3).
enum class ExecutionMode {
  kAllAnswers,   ///< Compute every answer.
  kInteractive,  ///< Stop after the first batch of answers.
};

/// Tuning knobs of the executor.
struct ExecutorOptions {
  ExecutionMode mode = ExecutionMode::kAllAnswers;
  /// Answers per batch in interactive mode; evaluation stops after the
  /// first batch (callers re-query for more, as the paper's UI does).
  size_t interactive_batch = 1;
  double comparison_cost_ms = 0.001;  ///< Simulated per-comparison CPU.
  double unification_cost_ms = 0.0005;  ///< Simulated per-tuple plumbing.
  size_t max_recursion_depth = 64;
  uint64_t max_domain_calls = 1000000;  ///< Runaway-query guard.
  bool record_statistics = true;  ///< Feed executed-call cost vectors to DCSM.
  /// Also record per-predicate invocation statistics (under the pseudo
  /// domain "idb") — the paper's Section 8 remedy for the estimator's
  /// blindness to backtracking: "cache, especially the time for the first
  /// answer of predicates in the same way we cache statistics for domain
  /// calls". Unresolvable (output) arguments are recorded as null and act
  /// as wildcards during estimation.
  bool record_predicate_statistics = true;
  /// Record every domain call (with timing and outcome) into
  /// QueryExecution::trace — the execution explain/debug facility.
  bool collect_trace = false;
};

/// One domain call as the trace layer saw it — the execution trace element
/// (now recorded by TraceInterceptor; the type lives in domain/pipeline.h).
using CallTrace = ::hermes::CallTrace;

/// The answers and simulated timing of one executed query.
struct QueryExecution {
  /// Query variables, in order of first textual occurrence.
  std::vector<std::string> var_names;
  /// One row per answer: the values of `var_names`.
  std::vector<ValueList> answers;
  double t_first_ms = 0.0;  ///< Simulated time to the first answer.
  double t_all_ms = 0.0;    ///< Simulated time to evaluation completion.
  uint64_t domain_calls = 0;
  bool complete = true;  ///< False when interactive mode stopped early.
  /// Per-call trace, populated when ExecutorOptions::collect_trace is on.
  std::vector<CallTrace> trace;

  std::string ToString() const;
};

/// Pipelined nested-loop evaluator with backtracking (Section 7's
/// execution model: left-to-right joins, no duplicate elimination).
///
/// Every domain call returns its answers together with a simulated latency
/// profile; the executor threads virtual timestamps through the pipeline —
/// answer i of a call opened at time t becomes consumable at
/// t + ArrivalOffsetMs(i), and processing an answer cannot start before
/// the previous sibling's subtree finished. T_f and T_a are read off these
/// timestamps, reproducing the paper's measurements (including the
/// backtracking effects Section 8 discusses) without ever sleeping.
class Executor {
 public:
  /// `dcsm` may be null; when set and record_statistics is on, the stats
  /// layer (dcsm::StatsInterceptor) records every executed call's cost
  /// vector.
  Executor(const DomainRegistry* registry, dcsm::Dcsm* dcsm,
           ExecutorOptions options = {});

  /// Evaluates `query` against `program`, with domain calls routed through
  /// the call pipeline: executor → trace → stats → (per-domain stack via
  /// the registry) → domain.
  Result<QueryExecution> Execute(const lang::Program& program,
                                 const lang::Query& query);

  /// Same, threading the caller's `ctx` through every domain call so the
  /// caller can read per-query CallMetrics afterwards. The executor sets
  /// the call budget and the trace sink; query_id is the caller's to set.
  Result<QueryExecution> Execute(const lang::Program& program,
                                 const lang::Query& query, CallContext* ctx);

 private:
  struct EvalState {
    const lang::Program* program = nullptr;
    CallContext* ctx = nullptr;            // per-query call context
    const CallPipeline* pipeline = nullptr;  // executor-level call path
    size_t emitted = 0;
    bool stop = false;  // interactive-mode early termination
  };

  /// Called for each solution of a body with the emission timestamp;
  /// returns the simulated time at which the consumer finished processing
  /// the solution (the producer stalls until then).
  using EmitFn =
      std::function<Result<double>(const Bindings& bindings, double t)>;

  /// Evaluates goals[index..] and returns the simulated completion time.
  Result<double> EvalGoals(const std::vector<lang::Atom>& goals, size_t index,
                           Bindings* bindings, double t_now, size_t depth,
                           EvalState* state, const EmitFn& emit);

  /// Evaluates a predicate atom by trying its rules in program order.
  Result<double> EvalPredicate(const lang::Atom& atom,
                               const std::vector<lang::Atom>& goals,
                               size_t index, Bindings* bindings, double t_now,
                               size_t depth, EvalState* state,
                               const EmitFn& emit);

  const DomainRegistry* registry_;
  ExecutorOptions options_;
  /// The stats layer; also receives predicate-invocation samples (the
  /// Section 8 predicate-Tf extension). Null when no DCSM was supplied.
  std::shared_ptr<dcsm::StatsInterceptor> stats_layer_;
};

/// Query variables in order of first occurrence (plain variables only;
/// `$b` and paths do not introduce result columns).
std::vector<std::string> QueryVariables(const lang::Query& query);

}  // namespace hermes::engine

#endif  // HERMES_ENGINE_EXECUTOR_H_
