#include "flatfile/flatfile_domain.h"

namespace hermes::flatfile {

void FlatFileDomain::PutFile(const std::string& file,
                             std::vector<ValueList> records) {
  files_[file] = std::move(records);
}

void FlatFileDomain::AppendRecord(const std::string& file, ValueList record) {
  files_[file].push_back(std::move(record));
}

std::vector<FunctionInfo> FlatFileDomain::Functions() const {
  return {
      {"scan", 1, "scan(file): every record as a positional list"},
      {"match", 3, "match(file, field_no, value): records whose field equals value"},
      {"field", 2, "field(file, field_no): the given field of every record"},
      {"lines", 1, "lines(file): singleton record count"},
  };
}

Result<CallOutput> FlatFileDomain::Run(const DomainCall& call) {
  if (call.args.empty() || !call.args[0].is_string()) {
    return Status::InvalidArgument(call.ToString() +
                                   ": first argument must be a file name");
  }
  auto it = files_.find(call.args[0].as_string());
  if (it == files_.end()) {
    return Status::NotFound("no flat file '" + call.args[0].as_string() + "'");
  }
  const std::vector<ValueList>& records = it->second;

  // Flat files are always fully scanned, so T_f is essentially the scan
  // position of the first matching record.
  auto finish = [this, &records](AnswerSet answers) {
    CallOutput out;
    size_t n = answers.size();
    double scan_ms =
        params_.per_line_ms * static_cast<double>(records.size());
    out.all_ms = params_.open_ms + scan_ms +
                 params_.per_result_ms * static_cast<double>(n);
    out.first_ms = n == 0 ? out.all_ms
                          : params_.open_ms +
                                scan_ms / static_cast<double>(n + 1) +
                                params_.per_result_ms;
    out.answers = std::move(answers);
    return out;
  };

  const std::string& fn = call.function;
  if (fn == "scan") {
    if (call.args.size() != 1) {
      return Status::InvalidArgument(call.ToString() + ": scan takes 1 arg");
    }
    AnswerSet answers;
    answers.reserve(records.size());
    for (const ValueList& rec : records) answers.push_back(Value::List(rec));
    return finish(std::move(answers));
  }
  if (fn == "match") {
    if (call.args.size() != 3 || !call.args[1].is_int()) {
      return Status::InvalidArgument(
          call.ToString() + ": match takes (file, field_no, value)");
    }
    size_t field = static_cast<size_t>(call.args[1].as_int());
    if (field == 0) {
      return Status::InvalidArgument("field numbers are 1-based");
    }
    AnswerSet answers;
    for (const ValueList& rec : records) {
      if (field <= rec.size() && rec[field - 1] == call.args[2]) {
        answers.push_back(Value::List(rec));
      }
    }
    return finish(std::move(answers));
  }
  if (fn == "field") {
    if (call.args.size() != 2 || !call.args[1].is_int()) {
      return Status::InvalidArgument(call.ToString() +
                                     ": field takes (file, field_no)");
    }
    size_t field = static_cast<size_t>(call.args[1].as_int());
    if (field == 0) {
      return Status::InvalidArgument("field numbers are 1-based");
    }
    AnswerSet answers;
    for (const ValueList& rec : records) {
      if (field <= rec.size()) answers.push_back(rec[field - 1]);
    }
    return finish(std::move(answers));
  }
  if (fn == "lines") {
    if (call.args.size() != 1) {
      return Status::InvalidArgument(call.ToString() + ": lines takes 1 arg");
    }
    return finish(
        AnswerSet{Value::Int(static_cast<int64_t>(records.size()))});
  }
  return Status::NotFound("domain '" + name_ + "' has no function '" + fn +
                          "'");
}

}  // namespace hermes::flatfile
