#ifndef HERMES_FLATFILE_FLATFILE_DOMAIN_H_
#define HERMES_FLATFILE_FLATFILE_DOMAIN_H_

#include <map>
#include <string>
#include <vector>

#include "domain/domain.h"

namespace hermes::flatfile {

/// Simulated compute-cost parameters of the flat-file store.
struct FlatFileCostParams {
  double open_ms = 1.5;          ///< Per-call file open/seek overhead.
  double per_line_ms = 0.004;    ///< Per line read (flat files always scan).
  double per_result_ms = 0.008;  ///< Per matching record materialized.
};

/// An in-memory store of named "flat files", each a list of records with
/// positional fields — the paper's flat-file data source.
///
/// Unlike the relational engine, a flat file has no indexes: every access
/// is a full scan, so selective calls cost as much as full reads. Exported
/// functions:
///   scan(file)                    — every record, as a positional list
///   match(file, field_no, value)  — records whose 1-based field equals value
///   field(file, field_no)         — the given field of every record
///   lines(file)                   — singleton record count
class FlatFileDomain : public Domain {
 public:
  explicit FlatFileDomain(std::string name, FlatFileCostParams params = {})
      : name_(std::move(name)), params_(params) {}

  /// Creates or replaces a file with the given records.
  void PutFile(const std::string& file, std::vector<ValueList> records);

  /// Appends one record to a file (creating the file if needed).
  void AppendRecord(const std::string& file, ValueList record);

  bool HasFile(const std::string& file) const {
    return files_.find(file) != files_.end();
  }

  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override;
  Result<CallOutput> Run(const DomainCall& call) override;

 private:
  std::string name_;
  FlatFileCostParams params_;
  std::map<std::string, std::vector<ValueList>> files_;
};

}  // namespace hermes::flatfile

#endif  // HERMES_FLATFILE_FLATFILE_DOMAIN_H_
