#include "relational/schema.h"

namespace hermes::relational {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt: return "int";
    case ColumnType::kDouble: return "double";
    case ColumnType::kString: return "string";
    case ColumnType::kBool: return "bool";
  }
  return "?";
}

bool ValueMatchesType(const Value& v, ColumnType type) {
  switch (type) {
    case ColumnType::kInt:
      return v.is_int();
    case ColumnType::kDouble:
      return v.is_numeric();
    case ColumnType::kString:
      return v.is_string();
    case ColumnType::kBool:
      return v.is_bool();
  }
  return false;
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column '" + name + "' in schema " + ToString());
}

Status Schema::ValidateRow(const ValueList& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        ToString());
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!ValueMatchesType(row[i], columns_[i].type)) {
      return Status::TypeError("value " + row[i].ToString() +
                               " does not match column '" + columns_[i].name +
                               "' of type " + ColumnTypeName(columns_[i].type));
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ColumnTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace hermes::relational
