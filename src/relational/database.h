#ifndef HERMES_RELATIONAL_DATABASE_H_
#define HERMES_RELATIONAL_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/table.h"

namespace hermes::relational {

/// Catalog of named tables — the mini DBMS instance a RelationalDomain
/// serves.
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates an empty table. Fails if the name exists.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Looks up a table by name.
  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const {
    return tables_.find(name) != tables_.end();
  }

  /// Drops a table; NotFound when absent.
  Status DropTable(const std::string& name);

  /// Table names, sorted.
  std::vector<std::string> TableNames() const;

  /// Creates a table from CSV-style text. The first line is a header of
  /// `name:type` pairs (type ∈ int,double,string,bool; default string).
  /// Example:
  ///   name:string,role:string,salary:int
  ///   'jimmy stewart',rupert,120
  Result<Table*> LoadCsv(const std::string& table_name,
                         const std::string& csv_text);

  /// LoadCsv from a file on disk.
  Result<Table*> LoadCsvFile(const std::string& table_name,
                             const std::string& path);

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace hermes::relational

#endif  // HERMES_RELATIONAL_DATABASE_H_
