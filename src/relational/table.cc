#include "relational/table.h"

#include <algorithm>

namespace hermes::relational {

Status Table::Insert(ValueList row) {
  HERMES_RETURN_IF_ERROR(schema_.ValidateRow(row));
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status Table::CreateHashIndex(const std::string& column) {
  HERMES_ASSIGN_OR_RETURN(size_t col, schema_.ColumnIndex(column));
  hash_indexes_[col] = {};
  hash_index_rows_[col] = 0;
  EnsureHashIndexFresh(col);
  return Status::OK();
}

Status Table::CreateOrderedIndex(const std::string& column) {
  HERMES_ASSIGN_OR_RETURN(size_t col, schema_.ColumnIndex(column));
  ordered_indexes_[col] = {};
  ordered_index_rows_[col] = 0;
  EnsureOrderedIndexFresh(col);
  return Status::OK();
}

bool Table::HasHashIndex(const std::string& column) const {
  Result<size_t> col = schema_.ColumnIndex(column);
  return col.ok() && hash_indexes_.count(*col) > 0;
}

bool Table::HasOrderedIndex(const std::string& column) const {
  Result<size_t> col = schema_.ColumnIndex(column);
  return col.ok() && ordered_indexes_.count(*col) > 0;
}

void Table::EnsureHashIndexFresh(size_t column_index) const {
  auto it = hash_indexes_.find(column_index);
  if (it == hash_indexes_.end()) return;
  size_t& built_rows = hash_index_rows_[column_index];
  if (built_rows == rows_.size()) return;
  it->second.clear();
  for (RowId id = 0; id < rows_.size(); ++id) {
    it->second[rows_[id][column_index]].push_back(id);
  }
  built_rows = rows_.size();
}

void Table::EnsureOrderedIndexFresh(size_t column_index) const {
  auto it = ordered_indexes_.find(column_index);
  if (it == ordered_indexes_.end()) return;
  size_t& built_rows = ordered_index_rows_[column_index];
  if (built_rows == rows_.size()) return;
  it->second.clear();
  it->second.reserve(rows_.size());
  for (RowId id = 0; id < rows_.size(); ++id) {
    it->second.push_back({rows_[id][column_index], id});
  }
  std::stable_sort(it->second.begin(), it->second.end(),
                   [](const OrderedEntry& a, const OrderedEntry& b) {
                     return a.value < b.value;
                   });
  built_rows = rows_.size();
}

Result<Table::ScanResult> Table::FindEqual(const std::string& column,
                                           const Value& value) const {
  HERMES_ASSIGN_OR_RETURN(size_t col, schema_.ColumnIndex(column));
  ScanResult result;
  auto idx = hash_indexes_.find(col);
  if (idx != hash_indexes_.end()) {
    EnsureHashIndexFresh(col);
    auto hit = idx->second.find(value);
    if (hit != idx->second.end()) {
      result.row_ids = hit->second;
      result.rows_examined = hit->second.size();
    } else {
      result.rows_examined = 1;  // one bucket probe
    }
    return result;
  }
  // Full scan.
  result.rows_examined = rows_.size();
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (rows_[id][col] == value) result.row_ids.push_back(id);
  }
  return result;
}

Result<Table::ScanResult> Table::FindCompare(const std::string& column,
                                             lang::RelOp op,
                                             const Value& value) const {
  if (op == lang::RelOp::kEq) return FindEqual(column, value);
  HERMES_ASSIGN_OR_RETURN(size_t col, schema_.ColumnIndex(column));
  ScanResult result;

  auto idx = ordered_indexes_.find(col);
  if (idx != ordered_indexes_.end() && op != lang::RelOp::kNeq) {
    EnsureOrderedIndexFresh(col);
    const std::vector<OrderedEntry>& entries = idx->second;
    auto lower = std::lower_bound(
        entries.begin(), entries.end(), value,
        [](const OrderedEntry& e, const Value& v) { return e.value < v; });
    auto upper = std::upper_bound(
        entries.begin(), entries.end(), value,
        [](const Value& v, const OrderedEntry& e) { return v < e.value; });
    auto emit = [&result](auto first, auto last) {
      for (auto it = first; it != last; ++it) {
        result.row_ids.push_back(it->row);
      }
      result.rows_examined += static_cast<size_t>(last - first);
    };
    switch (op) {
      case lang::RelOp::kLt:
        emit(entries.begin(), lower);
        break;
      case lang::RelOp::kLe:
        emit(entries.begin(), upper);
        break;
      case lang::RelOp::kGt:
        emit(upper, entries.end());
        break;
      case lang::RelOp::kGe:
        emit(lower, entries.end());
        break;
      default:
        break;
    }
    result.rows_examined += 2;  // binary-search probes
    std::sort(result.row_ids.begin(), result.row_ids.end());
    return result;
  }

  // Full scan.
  result.rows_examined = rows_.size();
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (lang::EvalRelOp(op, rows_[id][col], value)) {
      result.row_ids.push_back(id);
    }
  }
  return result;
}

Table::ScanResult Table::FindAll() const {
  ScanResult result;
  result.rows_examined = rows_.size();
  result.row_ids.reserve(rows_.size());
  for (RowId id = 0; id < rows_.size(); ++id) result.row_ids.push_back(id);
  return result;
}

Value Table::RowAsStruct(RowId id) const {
  StructFields fields;
  fields.reserve(schema_.num_columns());
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    fields.emplace_back(schema_.column(i).name, rows_[id][i]);
  }
  return Value::Struct(std::move(fields));
}

Value Table::RowAsList(RowId id) const { return Value::List(rows_[id]); }

Result<size_t> Table::DistinctCount(const std::string& column) const {
  HERMES_ASSIGN_OR_RETURN(size_t col, schema_.ColumnIndex(column));
  std::unordered_map<Value, bool, ValueHash> seen;
  for (const ValueList& row : rows_) seen[row[col]] = true;
  return seen.size();
}

}  // namespace hermes::relational
