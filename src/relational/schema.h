#ifndef HERMES_RELATIONAL_SCHEMA_H_
#define HERMES_RELATIONAL_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace hermes::relational {

/// Column value types of the mini relational engine.
enum class ColumnType { kInt, kDouble, kString, kBool };

const char* ColumnTypeName(ColumnType type);

/// True when `v` is acceptable in a column of type `type` (ints are
/// accepted in double columns).
bool ValueMatchesType(const Value& v, ColumnType type);

/// One column definition.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kString;
};

/// Ordered list of columns making up a relation's schema.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Validates a row against this schema (arity and types).
  Status ValidateRow(const ValueList& row) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace hermes::relational

#endif  // HERMES_RELATIONAL_SCHEMA_H_
