#include "relational/database.h"

#include <cctype>

#include "common/io.h"
#include "common/strings.h"

namespace hermes::relational {

namespace {

Result<ColumnType> ParseColumnType(const std::string& text) {
  if (text == "int") return ColumnType::kInt;
  if (text == "double") return ColumnType::kDouble;
  if (text == "string" || text.empty()) return ColumnType::kString;
  if (text == "bool") return ColumnType::kBool;
  return Status::InvalidArgument("unknown column type '" + text + "'");
}

bool LooksNumeric(const std::string& field) {
  if (field.empty()) return false;
  size_t i = field[0] == '-' ? 1 : 0;
  if (i >= field.size()) return false;
  bool digits = false;
  bool dot = false;
  for (; i < field.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(field[i]))) {
      digits = true;
    } else if (field[i] == '.' && !dot) {
      dot = true;
    } else {
      return false;
    }
  }
  return digits;
}

Result<Value> ParseCsvField(const std::string& raw, ColumnType type) {
  std::string field = TrimString(raw);
  // Quoted fields are strings with the quotes stripped.
  if (field.size() >= 2 && (field.front() == '\'' || field.front() == '"') &&
      field.back() == field.front()) {
    field = field.substr(1, field.size() - 2);
    if (type != ColumnType::kString) {
      return Status::TypeError("quoted value '" + field +
                               "' in non-string column");
    }
    return Value::Str(field);
  }
  switch (type) {
    case ColumnType::kInt:
      if (!LooksNumeric(field)) {
        return Status::TypeError("'" + field + "' is not an int");
      }
      return Value::Int(std::stoll(field));
    case ColumnType::kDouble:
      if (!LooksNumeric(field)) {
        return Status::TypeError("'" + field + "' is not a double");
      }
      return Value::Double(std::stod(field));
    case ColumnType::kBool:
      if (field == "true" || field == "1") return Value::Bool(true);
      if (field == "false" || field == "0") return Value::Bool(false);
      return Status::TypeError("'" + field + "' is not a bool");
    case ColumnType::kString:
      return Value::Str(field);
  }
  return Status::Internal("unreachable column type");
}

}  // namespace

Result<Table*> Database::CreateTable(const std::string& name, Schema schema) {
  if (HasTable(name)) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* raw = table.get();
  tables_.emplace(name, std::move(table));
  return raw;
}

Result<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + name + "'");
  }
  return it->second.get();
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + name + "'");
  }
  return static_cast<const Table*>(it->second.get());
}

Status Database::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("no table '" + name + "'");
  }
  return Status::OK();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(name);
  return out;
}

Result<Table*> Database::LoadCsv(const std::string& table_name,
                                 const std::string& csv_text) {
  std::vector<std::string> lines = SplitString(csv_text, '\n');
  size_t first = 0;
  while (first < lines.size() && TrimString(lines[first]).empty()) ++first;
  if (first >= lines.size()) {
    return Status::InvalidArgument("CSV text has no header line");
  }

  // Header: name:type pairs.
  std::vector<Column> columns;
  for (const std::string& field : SplitString(lines[first], ',')) {
    std::vector<std::string> parts = SplitString(TrimString(field), ':');
    if (parts.empty() || parts[0].empty()) {
      return Status::InvalidArgument("empty column name in CSV header");
    }
    Column col;
    col.name = TrimString(parts[0]);
    HERMES_ASSIGN_OR_RETURN(
        col.type, ParseColumnType(parts.size() > 1 ? TrimString(parts[1]) : ""));
    columns.push_back(std::move(col));
  }

  HERMES_ASSIGN_OR_RETURN(Table * table,
                          CreateTable(table_name, Schema(std::move(columns))));
  const Schema& schema = table->schema();

  for (size_t i = first + 1; i < lines.size(); ++i) {
    std::string line = TrimString(lines[i]);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = SplitString(line, ',');
    if (fields.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          "CSV line " + std::to_string(i + 1) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(schema.num_columns()));
    }
    ValueList row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      HERMES_ASSIGN_OR_RETURN(Value v,
                              ParseCsvField(fields[c], schema.column(c).type));
      row.push_back(std::move(v));
    }
    HERMES_RETURN_IF_ERROR(table->Insert(std::move(row)));
  }
  return table;
}

Result<Table*> Database::LoadCsvFile(const std::string& table_name,
                                     const std::string& path) {
  HERMES_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return LoadCsv(table_name, text);
}

}  // namespace hermes::relational
