#include "relational/relational_domain.h"

namespace hermes::relational {

namespace {

Status WrongArity(const DomainCall& call, size_t expected) {
  return Status::InvalidArgument(
      call.ToString() + ": expected " + std::to_string(expected) +
      " arguments, got " + std::to_string(call.args.size()));
}

Result<std::string> StringArg(const DomainCall& call, size_t i) {
  if (!call.args[i].is_string()) {
    return Status::TypeError(call.ToString() + ": argument " +
                             std::to_string(i + 1) + " must be a string");
  }
  return call.args[i].as_string();
}

}  // namespace

std::vector<FunctionInfo> RelationalDomain::Functions() const {
  return {
      {"all", 1, "all(table): every row of the table, as structs"},
      {"equal", 3, "equal(table, attr, value): rows with attr = value"},
      {"select_eq", 3, "select_eq(table, attr, value): rows with attr = value"},
      {"select_neq", 3, "select_neq(table, attr, value): rows with attr != value"},
      {"select_lt", 3, "select_lt(table, attr, value): rows with attr < value"},
      {"select_le", 3, "select_le(table, attr, value): rows with attr <= value"},
      {"select_gt", 3, "select_gt(table, attr, value): rows with attr > value"},
      {"select_ge", 3, "select_ge(table, attr, value): rows with attr >= value"},
      {"project", 2, "project(table, attr): attr value of every row"},
      {"distinct", 2, "distinct(table, attr): distinct attr values"},
      {"count", 1, "count(table): singleton row count"},
  };
}

CallOutput RelationalDomain::Finish(AnswerSet answers,
                                    size_t rows_examined) const {
  CallOutput out;
  size_t n = answers.size();
  double scan_ms = params_.per_row_ms * static_cast<double>(rows_examined);
  out.all_ms = params_.base_ms + scan_ms +
               params_.per_result_ms * static_cast<double>(n);
  // The first matching row is reached, on average, a fraction 1/(n+1) of
  // the way through the scan.
  out.first_ms = n == 0 ? out.all_ms
                        : params_.base_ms +
                              scan_ms / static_cast<double>(n + 1) +
                              params_.per_result_ms;
  out.answers = std::move(answers);
  return out;
}

Result<CallOutput> RelationalDomain::RunSelect(const DomainCall& call,
                                               lang::RelOp op) const {
  if (call.args.size() != 3) return WrongArity(call, 3);
  HERMES_ASSIGN_OR_RETURN(std::string table_name, StringArg(call, 0));
  HERMES_ASSIGN_OR_RETURN(std::string attr, StringArg(call, 1));
  HERMES_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(table_name));
  HERMES_ASSIGN_OR_RETURN(Table::ScanResult scan,
                          table->FindCompare(attr, op, call.args[2]));
  AnswerSet answers;
  answers.reserve(scan.row_ids.size());
  for (RowId id : scan.row_ids) answers.push_back(table->RowAsStruct(id));
  return Finish(std::move(answers), scan.rows_examined);
}

Result<CallOutput> RelationalDomain::Run(const DomainCall& call) {
  const std::string& fn = call.function;

  if (fn == "all") {
    if (call.args.size() != 1) return WrongArity(call, 1);
    HERMES_ASSIGN_OR_RETURN(std::string table_name, StringArg(call, 0));
    HERMES_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(table_name));
    Table::ScanResult scan = table->FindAll();
    AnswerSet answers;
    answers.reserve(scan.row_ids.size());
    for (RowId id : scan.row_ids) answers.push_back(table->RowAsStruct(id));
    return Finish(std::move(answers), scan.rows_examined);
  }
  if (fn == "equal" || fn == "select_eq") {
    return RunSelect(call, lang::RelOp::kEq);
  }
  if (fn == "select_neq") return RunSelect(call, lang::RelOp::kNeq);
  if (fn == "select_lt") return RunSelect(call, lang::RelOp::kLt);
  if (fn == "select_le") return RunSelect(call, lang::RelOp::kLe);
  if (fn == "select_gt") return RunSelect(call, lang::RelOp::kGt);
  if (fn == "select_ge") return RunSelect(call, lang::RelOp::kGe);

  if (fn == "project" || fn == "distinct") {
    if (call.args.size() != 2) return WrongArity(call, 2);
    HERMES_ASSIGN_OR_RETURN(std::string table_name, StringArg(call, 0));
    HERMES_ASSIGN_OR_RETURN(std::string attr, StringArg(call, 1));
    HERMES_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(table_name));
    HERMES_ASSIGN_OR_RETURN(size_t col, table->schema().ColumnIndex(attr));
    AnswerSet answers;
    if (fn == "project") {
      answers.reserve(table->num_rows());
      for (const ValueList& row : table->rows()) answers.push_back(row[col]);
    } else {
      for (const ValueList& row : table->rows()) {
        bool duplicate = false;
        for (const Value& v : answers) {
          if (v == row[col]) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) answers.push_back(row[col]);
      }
    }
    return Finish(std::move(answers), table->num_rows());
  }

  if (fn == "count") {
    if (call.args.size() != 1) return WrongArity(call, 1);
    HERMES_ASSIGN_OR_RETURN(std::string table_name, StringArg(call, 0));
    HERMES_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(table_name));
    return Finish(
        AnswerSet{Value::Int(static_cast<int64_t>(table->num_rows()))}, 1);
  }

  return Status::NotFound("domain '" + name_ + "' has no function '" + fn +
                          "/" + std::to_string(call.args.size()) + "'");
}

Result<CostVector> RelationalDomain::EstimateCost(
    const lang::DomainCallSpec& pattern) const {
  if (!provide_cost_model_) {
    return Status::Unimplemented("domain '" + name_ +
                                 "' has no native cost model");
  }
  const std::string& fn = pattern.function;
  // The table name must be a known constant for catalog-based estimation.
  if (pattern.args.empty() || !pattern.args[0].is_constant() ||
      !pattern.args[0].constant.is_string()) {
    return Status::InvalidArgument(
        "native cost model needs a constant table name: " +
        pattern.ToString());
  }
  HERMES_ASSIGN_OR_RETURN(const Table* table,
                          db_->GetTable(pattern.args[0].constant.as_string()));
  double rows = static_cast<double>(table->num_rows());

  auto make_cost = [this, rows](double expected_results) {
    double t_all = params_.base_ms + params_.per_row_ms * rows +
                   params_.per_result_ms * expected_results;
    // First answer: proportional position of the first hit in the scan.
    double frac = expected_results > 0 ? 1.0 / (expected_results + 1.0) : 1.0;
    double t_first = params_.base_ms + params_.per_row_ms * rows * frac +
                     params_.per_result_ms;
    return CostVector(t_first, t_all, expected_results);
  };

  if (fn == "all" || fn == "project") return make_cost(rows);
  if (fn == "count") return make_cost(1.0);
  if (fn == "distinct") {
    if (pattern.args.size() < 2 || !pattern.args[1].is_constant()) {
      return make_cost(rows);
    }
    HERMES_ASSIGN_OR_RETURN(
        size_t distinct,
        table->DistinctCount(pattern.args[1].constant.as_string()));
    return make_cost(static_cast<double>(distinct));
  }
  if (fn == "equal" || fn == "select_eq" || fn == "select_neq" ||
      fn == "select_lt" || fn == "select_le" || fn == "select_gt" ||
      fn == "select_ge") {
    if (pattern.args.size() < 2 || !pattern.args[1].is_constant() ||
        !pattern.args[1].constant.is_string()) {
      return make_cost(rows / 2.0);
    }
    const std::string attr = pattern.args[1].constant.as_string();
    HERMES_ASSIGN_OR_RETURN(size_t distinct, table->DistinctCount(attr));
    double selectivity =
        (fn == "equal" || fn == "select_eq")
            ? (distinct > 0 ? 1.0 / static_cast<double>(distinct) : 0.0)
            : (fn == "select_neq"
                   ? (distinct > 0
                          ? 1.0 - 1.0 / static_cast<double>(distinct)
                          : 1.0)
                   : 1.0 / 3.0);  // System-R style range default.
    return make_cost(rows * selectivity);
  }
  return Status::NotFound("no cost model for function '" + fn + "'");
}

}  // namespace hermes::relational
