#ifndef HERMES_RELATIONAL_TABLE_H_
#define HERMES_RELATIONAL_TABLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "lang/ast.h"
#include "relational/schema.h"

namespace hermes::relational {

/// Row identifier within a Table.
using RowId = size_t;

/// A heap-resident relation with optional per-column hash and ordered
/// indexes.
///
/// Scans and index probes report how many rows they *touched* so the cost
/// simulation can charge realistic, data-dependent compute time.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const ValueList& row(RowId id) const { return rows_[id]; }
  const std::vector<ValueList>& rows() const { return rows_; }

  /// Appends a row after schema validation. Invalidates indexes lazily
  /// (they are rebuilt on next use).
  Status Insert(ValueList row);

  /// Builds (or rebuilds) a hash index on `column`.
  Status CreateHashIndex(const std::string& column);
  /// Builds (or rebuilds) an ordered index on `column`.
  Status CreateOrderedIndex(const std::string& column);

  bool HasHashIndex(const std::string& column) const;
  bool HasOrderedIndex(const std::string& column) const;

  /// Result of a scan/probe: matching row ids plus the number of index or
  /// row entries examined to find them.
  struct ScanResult {
    std::vector<RowId> row_ids;
    size_t rows_examined = 0;
  };

  /// Rows where `column == value`; uses the hash index when present.
  Result<ScanResult> FindEqual(const std::string& column,
                               const Value& value) const;

  /// Rows satisfying `column <op> value`; uses the ordered index for
  /// range operators and the hash index for equality when present.
  Result<ScanResult> FindCompare(const std::string& column, lang::RelOp op,
                                 const Value& value) const;

  /// All row ids.
  ScanResult FindAll() const;

  /// Renders row `id` as a struct value with column-named attributes.
  Value RowAsStruct(RowId id) const;
  /// Renders row `id` as a positional list value.
  Value RowAsList(RowId id) const;

  /// Number of distinct values in `column` (used by the native cost model).
  Result<size_t> DistinctCount(const std::string& column) const;

 private:
  struct OrderedEntry {
    Value value;
    RowId row;
  };

  void EnsureHashIndexFresh(size_t column_index) const;
  void EnsureOrderedIndexFresh(size_t column_index) const;

  std::string name_;
  Schema schema_;
  std::vector<ValueList> rows_;

  // Index storage, keyed by column index. Mutable: indexes are caches
  // rebuilt lazily after inserts.
  mutable std::unordered_map<size_t,
                             std::unordered_map<Value, std::vector<RowId>,
                                                ValueHash>>
      hash_indexes_;
  mutable std::unordered_map<size_t, std::vector<OrderedEntry>>
      ordered_indexes_;
  mutable std::unordered_map<size_t, size_t> hash_index_rows_;     // rows at build
  mutable std::unordered_map<size_t, size_t> ordered_index_rows_;  // rows at build
};

}  // namespace hermes::relational

#endif  // HERMES_RELATIONAL_TABLE_H_
