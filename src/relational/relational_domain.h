#ifndef HERMES_RELATIONAL_RELATIONAL_DOMAIN_H_
#define HERMES_RELATIONAL_RELATIONAL_DOMAIN_H_

#include <memory>
#include <string>
#include <vector>

#include "domain/domain.h"
#include "relational/database.h"

namespace hermes::relational {

/// Simulated compute-cost parameters of the relational engine.
struct RelationalCostParams {
  double base_ms = 0.4;         ///< Fixed per-call overhead (parse/plan).
  double per_row_ms = 0.002;    ///< Per row examined during a scan/probe.
  double per_result_ms = 0.01;  ///< Per result row materialized.
};

/// Domain adapter exposing a Database as a mediator domain (the paper's
/// INGRES / Paradox / DBase role).
///
/// Exported functions (answers are structs keyed by column name unless
/// noted):
///   all(table)                      — every row
///   equal(table, attr, value)      — rows with attr = value
///   select_eq / select_neq /
///   select_lt / select_le /
///   select_gt / select_ge
///     (table, attr, value)          — comparison selects
///   project(table, attr)           — attr values of every row
///   distinct(table, attr)          — distinct attr values
///   count(table)                   — singleton int
///
/// The domain optionally exposes a *native cost model* built from exact
/// catalog statistics (row counts, distinct counts); this exercises the
/// DCSM extensibility path for sources that do ship cost estimators.
class RelationalDomain : public Domain {
 public:
  RelationalDomain(std::string name, std::shared_ptr<Database> db,
                   RelationalCostParams params = {},
                   bool provide_cost_model = false)
      : name_(std::move(name)),
        db_(std::move(db)),
        params_(params),
        provide_cost_model_(provide_cost_model) {}

  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override;
  Result<CallOutput> Run(const DomainCall& call) override;

  bool HasCostModel() const override { return provide_cost_model_; }
  Result<CostVector> EstimateCost(
      const lang::DomainCallSpec& pattern) const override;

  Database* database() { return db_.get(); }
  const RelationalCostParams& cost_params() const { return params_; }

 private:
  Result<CallOutput> RunSelect(const DomainCall& call, lang::RelOp op) const;
  /// Packs answers with the simulated latency profile of a scan that
  /// examined `rows_examined` rows.
  CallOutput Finish(AnswerSet answers, size_t rows_examined) const;

  std::string name_;
  std::shared_ptr<Database> db_;
  RelationalCostParams params_;
  bool provide_cost_model_;
};

}  // namespace hermes::relational

#endif  // HERMES_RELATIONAL_RELATIONAL_DOMAIN_H_
