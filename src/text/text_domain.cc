#include "text/text_domain.h"

#include <algorithm>
#include <cctype>

namespace hermes::text {

std::vector<std::string> TextDomain::Tokenize(const std::string& body) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : body) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

void TextDomain::AddDocument(const std::string& collection,
                             const std::string& id, const std::string& body) {
  Collection& coll = collections_[collection];
  // Replace: remove old postings first.
  auto existing = coll.documents.find(id);
  if (existing != coll.documents.end()) {
    for (const std::string& term : Tokenize(existing->second)) {
      auto postings = coll.index.find(term);
      if (postings != coll.index.end()) {
        postings->second.erase(id);
        if (postings->second.empty()) coll.index.erase(postings);
      }
    }
  }
  coll.documents[id] = body;
  for (const std::string& term : Tokenize(body)) {
    ++coll.index[term][id];
  }
}

std::vector<FunctionInfo> TextDomain::Functions() const {
  return {
      {"search", 2, "search(coll, word): {doc, hits} by descending hits"},
      {"cooccur", 3, "cooccur(coll, w1, w2): docs containing both words"},
      {"doc", 2, "doc(coll, id): singleton full text"},
      {"docs", 1, "docs(coll): all document ids"},
      {"doc_count", 1, "doc_count(coll): singleton count"},
  };
}

Result<CallOutput> TextDomain::Run(const DomainCall& call) {
  if (call.args.empty() || !call.args[0].is_string()) {
    return Status::InvalidArgument(call.ToString() +
                                   ": first argument must be a collection");
  }
  auto cit = collections_.find(call.args[0].as_string());
  if (cit == collections_.end()) {
    return Status::NotFound("no text collection '" +
                            call.args[0].as_string() + "'");
  }
  const Collection& coll = cit->second;
  const std::string& fn = call.function;

  auto finish = [this](AnswerSet answers, size_t postings,
                       size_t doc_bytes) {
    CallOutput out;
    size_t n = answers.size();
    double work_ms =
        params_.per_posting_ms * static_cast<double>(postings) +
        params_.per_doc_byte_ms * static_cast<double>(doc_bytes);
    out.all_ms = params_.base_ms + work_ms +
                 params_.per_result_ms * static_cast<double>(n);
    out.first_ms = n == 0 ? out.all_ms
                          : params_.base_ms +
                                work_ms / static_cast<double>(n + 1) +
                                params_.per_result_ms;
    out.answers = std::move(answers);
    return out;
  };

  if (fn == "search") {
    if (call.args.size() != 2 || !call.args[1].is_string()) {
      return Status::InvalidArgument(call.ToString() +
                                     ": search takes (coll, word)");
    }
    std::vector<std::string> terms = Tokenize(call.args[1].as_string());
    if (terms.size() != 1) {
      return Status::InvalidArgument(call.ToString() +
                                     ": search expects a single word");
    }
    auto postings = coll.index.find(terms[0]);
    AnswerSet answers;
    size_t scanned = 0;
    if (postings != coll.index.end()) {
      // Order by descending hit count, then id, deterministically.
      std::vector<std::pair<std::string, int>> ranked(
          postings->second.begin(), postings->second.end());
      scanned = ranked.size();
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) {
                  return a.second != b.second ? a.second > b.second
                                              : a.first < b.first;
                });
      for (const auto& [doc, hits] : ranked) {
        answers.push_back(Value::Struct(
            {{"doc", Value::Str(doc)}, {"hits", Value::Int(hits)}}));
      }
    }
    return finish(std::move(answers), scanned, 0);
  }

  if (fn == "cooccur") {
    if (call.args.size() != 3 || !call.args[1].is_string() ||
        !call.args[2].is_string()) {
      return Status::InvalidArgument(call.ToString() +
                                     ": cooccur takes (coll, w1, w2)");
    }
    std::vector<std::string> w1 = Tokenize(call.args[1].as_string());
    std::vector<std::string> w2 = Tokenize(call.args[2].as_string());
    if (w1.size() != 1 || w2.size() != 1) {
      return Status::InvalidArgument(call.ToString() +
                                     ": cooccur expects single words");
    }
    auto p1 = coll.index.find(w1[0]);
    auto p2 = coll.index.find(w2[0]);
    AnswerSet answers;
    size_t scanned = 0;
    if (p1 != coll.index.end() && p2 != coll.index.end()) {
      scanned = p1->second.size() + p2->second.size();
      for (const auto& [doc, hits] : p1->second) {
        if (p2->second.count(doc) > 0) answers.push_back(Value::Str(doc));
      }
    }
    return finish(std::move(answers), scanned, 0);
  }

  if (fn == "doc") {
    if (call.args.size() != 2 || !call.args[1].is_string()) {
      return Status::InvalidArgument(call.ToString() +
                                     ": doc takes (coll, id)");
    }
    auto dit = coll.documents.find(call.args[1].as_string());
    if (dit == coll.documents.end()) {
      return Status::NotFound("no document '" + call.args[1].as_string() +
                              "'");
    }
    return finish(AnswerSet{Value::Str(dit->second)}, 0, dit->second.size());
  }

  if (fn == "docs" || fn == "doc_count") {
    if (call.args.size() != 1) {
      return Status::InvalidArgument(call.ToString() + ": takes (coll)");
    }
    if (fn == "doc_count") {
      return finish(
          AnswerSet{Value::Int(static_cast<int64_t>(coll.documents.size()))},
          0, 0);
    }
    AnswerSet answers;
    for (const auto& [id, body] : coll.documents) {
      answers.push_back(Value::Str(id));
    }
    return finish(std::move(answers), coll.documents.size(), 0);
  }

  return Status::NotFound("domain '" + name_ + "' has no function '" + fn +
                          "'");
}

void LoadNewsCorpus(TextDomain* domain) {
  struct Article {
    const char* id;
    const char* body;
  };
  const Article articles[] = {
      {"nw01",
       "Army logistics planners demand better terrain data for route "
       "planning as supply convoys stretch across the desert."},
      {"nw02",
       "Hollywood archives digitize classic Hitchcock films; Rope and The "
       "Birds lead the restoration effort."},
      {"nw03",
       "Database researchers integrate heterogeneous sources: video "
       "archives, terrain maps and supply databases answer one query."},
      {"nw04",
       "Internet links to Italy remain slow; researchers cache query "
       "results to hide transatlantic latency."},
      {"nw05",
       "James Stewart retrospective draws crowds; the actor's role in Rope "
       "remains a critics' favorite."},
      {"nw06",
       "Supply depots report fuel shortages; the army reroutes convoys "
       "through the northern pass."},
  };
  for (const Article& a : articles) {
    domain->AddDocument("usatoday", a.id, a.body);
  }
}

}  // namespace hermes::text
