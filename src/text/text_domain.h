#ifndef HERMES_TEXT_TEXT_DOMAIN_H_
#define HERMES_TEXT_TEXT_DOMAIN_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "domain/domain.h"

namespace hermes::text {

/// Simulated compute-cost parameters of the text-retrieval package.
struct TextCostParams {
  double base_ms = 4.0;          ///< Index open / query parse.
  double per_posting_ms = 0.01;  ///< Per posting-list entry scanned.
  double per_result_ms = 0.05;   ///< Per matching document materialized.
  double per_doc_byte_ms = 0.002;  ///< Retrieving full document text.
};

/// Keyword-indexed document store (the paper's text database — the USA
/// Today news-wire corpora — as a mediator domain).
///
/// Documents are tokenized on non-alphanumerics and indexed case-folded.
/// Exported functions:
///   search(coll, word)          — {doc, hits} structs, by descending hits
///   cooccur(coll, w1, w2)       — doc ids containing both words
///   doc(coll, id)               — singleton full text
///   docs(coll)                  — all document ids
///   doc_count(coll)             — singleton count
class TextDomain : public Domain {
 public:
  explicit TextDomain(std::string name, TextCostParams params = {})
      : name_(std::move(name)), params_(params) {}

  /// Adds (or replaces) a document and indexes its terms.
  void AddDocument(const std::string& collection, const std::string& id,
                   const std::string& body);

  bool HasCollection(const std::string& collection) const {
    return collections_.find(collection) != collections_.end();
  }

  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override;
  Result<CallOutput> Run(const DomainCall& call) override;

 private:
  struct Collection {
    std::map<std::string, std::string> documents;  // id → body
    // term → (doc id → occurrence count), deterministic ordering.
    std::map<std::string, std::map<std::string, int>> index;
  };

  static std::vector<std::string> Tokenize(const std::string& body);

  std::string name_;
  TextCostParams params_;
  std::map<std::string, Collection> collections_;
};

/// Loads a miniature news-wire corpus ('usatoday' collection) used by the
/// tests and the shell demo.
void LoadNewsCorpus(TextDomain* domain);

}  // namespace hermes::text

#endif  // HERMES_TEXT_TEXT_DOMAIN_H_
