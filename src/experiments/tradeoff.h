#ifndef HERMES_EXPERIMENTS_TRADEOFF_H_
#define HERMES_EXPERIMENTS_TRADEOFF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace hermes::experiments {

/// One point of the Section 6.2 summarization tradeoff: storage footprint,
/// simulated estimation latency, and estimation error of the three
/// statistics representations at a given database size.
struct TradeoffPoint {
  size_t records = 0;           ///< Raw cost-vector records.
  size_t distinct_args = 0;     ///< Distinct argument combinations.

  size_t raw_bytes = 0;
  size_t lossless_bytes = 0;
  size_t lossy_bytes = 0;          ///< Fully dropped (one global row).
  size_t program_lossy_bytes = 0;  ///< Only the signal position retained.

  double raw_lookup_ms = 0.0;       ///< Simulated time per estimate.
  double lossless_lookup_ms = 0.0;
  double lossy_lookup_ms = 0.0;

  double lossless_error = 0.0;  ///< Mean relative Ta error vs. ground truth.
  double lossy_error = 0.0;
};

/// Sweeps the size of a synthetic cost-vector database (one call group
/// d:f(A, B) whose true cost depends on A) and measures, at each size, the
/// storage/lookup-time/accuracy triangle for (a) the raw database,
/// (b) lossless summaries, (c) fully lossy summaries. Ground truth for the
/// error metric is the per-A mean.
Result<std::vector<TradeoffPoint>> RunSummarizationTradeoff(
    const std::vector<size_t>& record_counts, size_t distinct_a = 16,
    uint64_t seed = 1996);

std::string RenderTradeoff(const std::vector<TradeoffPoint>& points);

}  // namespace hermes::experiments

#endif  // HERMES_EXPERIMENTS_TRADEOFF_H_
