#include "experiments/claims.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "engine/mediator.h"
#include "lang/parser.h"
#include "optimizer/estimator.h"
#include "optimizer/rewriter.h"
#include "testbed/scenario.h"

namespace hermes::experiments {

namespace {

struct Pair {
  std::string label;
  int number_a;
  bool primed_a;
  int number_b;
  bool primed_b;
  /// Plan B is the CIM-redirected rewriting of the same query; it is
  /// warmed `warm_b` times before prediction so the statistics cache has
  /// seen the cached path (this is where large, reliable predicted margins
  /// come from).
  bool via_cim_b = false;
  int warm_b = 0;
};

std::vector<Pair> Pairs() {
  return {{"query1 vs query1'", 1, false, 1, true, false, 0},
          {"query2 vs query2'", 2, false, 2, true, false, 0},
          {"query3 vs query4", 3, false, 4, false, false, 0},
          {"query3 vs query3+cim", 3, false, 3, false, true, 3}};
}

std::vector<std::pair<int64_t, int64_t>> Grid() {
  return {{1, 20},  {4, 47},   {4, 127},  {1, 500},   {40, 900},
          {1, 2500}, {30, 4700}, {1, 9000}, {100, 8200}, {4, 60}};
}

Result<optimizer::RuleCostEstimator::Estimate> Predict(
    dcsm::Dcsm* dcsm, const lang::Program& program,
    const std::string& query_text, bool via_cim = false,
    const std::vector<std::string>& cim_domains = {}) {
  HERMES_ASSIGN_OR_RETURN(lang::Query query,
                          lang::Parser::ParseQuery(query_text));
  lang::Program plan_program = program;
  if (via_cim) {
    optimizer::RuleRewriter::RedirectToCim(&query.goals, cim_domains);
    for (lang::Rule& rule : plan_program.rules) {
      optimizer::RuleRewriter::RedirectToCim(&rule.body, cim_domains);
    }
  }
  optimizer::RuleCostEstimator estimator(dcsm);
  return estimator.EstimateBody(plan_program, query.goals,
                                optimizer::BindingEnv());
}

}  // namespace

double PlanChoicePoint::PredictedFirstMargin() const {
  double hi = std::max(predicted_a_first, predicted_b_first);
  if (hi <= 0) return 0.0;
  return std::fabs(predicted_a_first - predicted_b_first) / hi;
}

Result<std::vector<PlanChoicePoint>> RunPlanChoice(uint64_t seed) {
  Mediator med(seed);
  testbed::RopeScenarioOptions options;
  options.sites.video_site = net::UsaSite("umd");
  options.sites.relation_site = net::UsaSite("cornell");
  // Caching stays available for the CIM-redirected pair; the direct pairs
  // bypass it (use_cim=false never routes through the wrappers).
  options.enable_caching = true;
  options.add_frame_invariants = false;
  HERMES_RETURN_IF_ERROR(testbed::SetupRopeScenario(&med, options));
  std::vector<std::string> cim_domains = med.CachedDomains();

  QueryOptions direct;
  direct.use_optimizer = false;
  direct.use_cim = false;

  QueryOptions via_cim;
  via_cim.use_optimizer = false;
  via_cim.use_cim = true;

  std::vector<PlanChoicePoint> points;
  for (const auto& [first, last] : Grid()) {
    for (const Pair& pair : Pairs()) {
      std::string qa = testbed::AppendixQuery(pair.number_a, pair.primed_a,
                                              first, last);
      std::string qb = testbed::AppendixQuery(pair.number_b, pair.primed_b,
                                              first, last);
      PlanChoicePoint point;
      point.pair_label = pair.label;
      point.first_frame = first;
      point.last_frame = last;

      // For the CIM pair, let the statistics cache see the cached path
      // first (a miss, then hits) so the DCSM has something to predict
      // from.
      if (pair.via_cim_b) {
        for (int w = 0; w < pair.warm_b; ++w) {
          HERMES_RETURN_IF_ERROR(med.Query(qb, via_cim).status());
        }
      }

      // Predict both plans from the statistics accumulated so far (the
      // sweep itself warms the DCSM online — early points rely on
      // defaults/relaxation, later ones on richer statistics, exactly the
      // operational regime the paper describes).
      HERMES_ASSIGN_OR_RETURN(auto pa, Predict(&med.dcsm(), med.program(), qa));
      HERMES_ASSIGN_OR_RETURN(auto pb,
                              Predict(&med.dcsm(), med.program(), qb,
                                      pair.via_cim_b, cim_domains));
      point.predicted_a_all = pa.cost.t_all_ms;
      point.predicted_b_all = pb.cost.t_all_ms;
      point.predicted_a_first = pa.cost.t_first_ms;
      point.predicted_b_first = pb.cost.t_first_ms;

      // Execute both.
      HERMES_ASSIGN_OR_RETURN(QueryResult ra, med.Query(qa, direct));
      HERMES_ASSIGN_OR_RETURN(
          QueryResult rb, med.Query(qb, pair.via_cim_b ? via_cim : direct));
      point.actual_a_all = ra.execution.t_all_ms;
      point.actual_b_all = rb.execution.t_all_ms;
      point.actual_a_first = ra.execution.t_first_ms;
      point.actual_b_first = rb.execution.t_first_ms;

      points.push_back(point);
    }
  }
  return points;
}

PlanChoiceSummary SummarizePlanChoice(
    const std::vector<PlanChoicePoint>& points) {
  PlanChoiceSummary summary;
  summary.points = points.size();
  size_t all_correct = 0, big_correct = 0, small_correct = 0;
  for (const PlanChoicePoint& point : points) {
    if (point.PredictedWinnerCorrectAll()) ++all_correct;
    if (point.PredictedFirstMargin() >= 0.5) {
      ++summary.big_margin_points;
      if (point.PredictedWinnerCorrectFirst()) ++big_correct;
    } else {
      ++summary.small_margin_points;
      if (point.PredictedWinnerCorrectFirst()) ++small_correct;
    }
  }
  if (summary.points > 0) {
    summary.all_answers_accuracy =
        static_cast<double>(all_correct) / summary.points;
  }
  if (summary.big_margin_points > 0) {
    summary.first_big_margin_accuracy =
        static_cast<double>(big_correct) / summary.big_margin_points;
  }
  if (summary.small_margin_points > 0) {
    summary.first_small_margin_accuracy =
        static_cast<double>(small_correct) / summary.small_margin_points;
  }
  return summary;
}

std::string RenderPlanChoice(const std::vector<PlanChoicePoint>& points) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-20s %-12s %12s %12s %12s %12s %5s\n",
                "Pair", "Range", "pred A (Ta)", "pred B (Ta)", "act A (Ta)",
                "act B (Ta)", "ok?");
  out += buf;
  out += std::string(92, '-') + "\n";
  for (const PlanChoicePoint& p : points) {
    std::string range = "[" + std::to_string(p.first_frame) + "," +
                        std::to_string(p.last_frame) + "]";
    std::snprintf(buf, sizeof(buf),
                  "%-20s %-12s %12.0f %12.0f %12.0f %12.0f %5s\n",
                  p.pair_label.c_str(), range.c_str(), p.predicted_a_all,
                  p.predicted_b_all, p.actual_a_all, p.actual_b_all,
                  p.PredictedWinnerCorrectAll() ? "yes" : "NO");
    out += buf;
  }
  PlanChoiceSummary s = SummarizePlanChoice(points);
  std::snprintf(buf, sizeof(buf),
                "\nall-answers winner accuracy: %.0f%% (%zu points)\n"
                "first-answer accuracy, margin >= 50%%: %.0f%% (%zu points)\n"
                "first-answer accuracy, margin <  50%%: %.0f%% (%zu points)\n",
                100 * s.all_answers_accuracy, s.points,
                100 * s.first_big_margin_accuracy, s.big_margin_points,
                100 * s.first_small_margin_accuracy, s.small_margin_points);
  out += buf;
  return out;
}

}  // namespace hermes::experiments
