#ifndef HERMES_EXPERIMENTS_FIG5_H_
#define HERMES_EXPERIMENTS_FIG5_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "net/site.h"

namespace hermes::experiments {

/// Cache/invariant configuration of one Figure 5 row.
enum class Fig5Config {
  kNoCacheNoInvariants,
  kCacheOnly,
  kCacheEqualityInvariant,
  kCachePartialInvariant,
};

const char* Fig5ConfigName(Fig5Config config);

/// One measured row of the paper's Figure 5 table.
struct Fig5Row {
  std::string query;    ///< Human-readable query description.
  Fig5Config config = Fig5Config::kNoCacheNoInvariants;
  std::string site;     ///< "usa" or "italy".
  double t_first_ms = 0.0;
  double t_all_ms = 0.0;
  size_t tuples = 0;
  size_t bytes = 0;     ///< Result payload size.
};

/// Reproduces Figure 5: "Executing Remote Calls with Caching and/or
/// Invariants". For each of three AVIS workloads (actors in 'rope',
/// objects in frames [4,47], objects in frames [4,127]) and each site
/// (USA, Italy), measures the four cache/invariant configurations.
///
/// Per configuration the cache is warmed the way the paper's scenarios
/// imply: kCacheOnly re-runs the identical query; the equality row warms
/// with a clamped-equivalent frame range; the partial row warms with a
/// narrower range so the subset invariant fires.
Result<std::vector<Fig5Row>> RunFig5(uint64_t seed = 1996);

/// Renders rows as an aligned text table.
std::string RenderFig5(const std::vector<Fig5Row>& rows);

}  // namespace hermes::experiments

#endif  // HERMES_EXPERIMENTS_FIG5_H_
