#ifndef HERMES_EXPERIMENTS_FIG6_H_
#define HERMES_EXPERIMENTS_FIG6_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace hermes::experiments {

/// One row of the paper's Figure 6 ("The Utility of DCSM"): actual run
/// time vs. DCSM predictions from lossless and from lossy statistics, for
/// both the first answer and all answers.
struct Fig6Row {
  std::string query;  ///< "query1", "query1'", "query2", ... "query4".
  double actual_first_ms = 0.0;
  double actual_all_ms = 0.0;
  double lossless_first_ms = 0.0;
  double lossless_all_ms = 0.0;
  double lossy_first_ms = 0.0;
  double lossy_all_ms = 0.0;
};

/// Reproduces Figure 6. The cost vector database is warmed by running the
/// six appendix queries over ~20 different frame-range instantiations
/// (mirroring the paper's "about 20 different instantiations"), then each
/// query at the measured parameters (First=4, Last=47) is
///   (a) predicted by the rule cost estimator from lossless statistics,
///   (b) predicted from fully-lossy summaries (every argument dropped),
///   (c) actually executed,
/// all against AVIS + the cast relation across the simulated network.
Result<std::vector<Fig6Row>> RunFig6(uint64_t seed = 1996);

/// Renders rows as an aligned text table.
std::string RenderFig6(const std::vector<Fig6Row>& rows);

/// Mean relative |predicted − actual| / actual over rows, for the
/// all-answers column. `lossy` selects which prediction to score.
double MeanRelativeErrorAll(const std::vector<Fig6Row>& rows, bool lossy);

}  // namespace hermes::experiments

#endif  // HERMES_EXPERIMENTS_FIG6_H_
