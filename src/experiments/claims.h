#ifndef HERMES_EXPERIMENTS_CLAIMS_H_
#define HERMES_EXPERIMENTS_CLAIMS_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace hermes::experiments {

/// One rewriting pair compared at one parameter point: DCSM predictions
/// and actual runtimes for both plans.
struct PlanChoicePoint {
  std::string pair_label;  ///< e.g. "query1 vs query1'".
  int64_t first_frame = 0;
  int64_t last_frame = 0;
  double predicted_a_all = 0, predicted_b_all = 0;
  double actual_a_all = 0, actual_b_all = 0;
  double predicted_a_first = 0, predicted_b_first = 0;
  double actual_a_first = 0, actual_b_first = 0;

  bool PredictedWinnerCorrectAll() const {
    return (predicted_a_all <= predicted_b_all) ==
           (actual_a_all <= actual_b_all);
  }
  bool PredictedWinnerCorrectFirst() const {
    return (predicted_a_first <= predicted_b_first) ==
           (actual_a_first <= actual_b_first);
  }
  /// Relative predicted T_f margin between the plans: |pa−pb|/max(pa,pb).
  double PredictedFirstMargin() const;
};

/// Section 8's plan-choice claims: for each rewriting pair (query1/1',
/// query2/2', query3/4) swept over a grid of frame ranges, predict both
/// plans with the DCSM (warmed online by the sweep itself) and execute
/// both, recording who actually won.
Result<std::vector<PlanChoicePoint>> RunPlanChoice(uint64_t seed = 1996);

/// Accuracy summary of the two claims.
struct PlanChoiceSummary {
  size_t points = 0;
  double all_answers_accuracy = 0.0;    ///< Claim 1.
  double first_big_margin_accuracy = 0.0;   ///< Claim 2, margin ≥ 50%.
  double first_small_margin_accuracy = 0.0; ///< Claim 2, margin < 50%.
  size_t big_margin_points = 0;
  size_t small_margin_points = 0;
};

PlanChoiceSummary SummarizePlanChoice(const std::vector<PlanChoicePoint>& points);

std::string RenderPlanChoice(const std::vector<PlanChoicePoint>& points);

}  // namespace hermes::experiments

#endif  // HERMES_EXPERIMENTS_CLAIMS_H_
