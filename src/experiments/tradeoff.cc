#include "experiments/tradeoff.h"

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "dcsm/dcsm.h"
#include "lang/parser.h"

namespace hermes::experiments {

namespace {

lang::DomainCallSpec PatternForA(int a) {
  lang::DomainCallSpec spec;
  spec.domain = "d";
  spec.function = "f";
  spec.args.push_back(lang::Term::Const(Value::Int(a)));
  spec.args.push_back(lang::Term::Bound());
  return spec;
}

}  // namespace

Result<std::vector<TradeoffPoint>> RunSummarizationTradeoff(
    const std::vector<size_t>& record_counts, size_t distinct_a,
    uint64_t seed) {
  std::vector<TradeoffPoint> points;

  for (size_t n : record_counts) {
    Rng rng(seed);
    dcsm::Dcsm dcsm;
    // True model: Ta(A) = 100·(A+1) with ±10% noise; B is irrelevant noise
    // with many distinct values (it bloats raw storage and lossless
    // summaries but carries no signal — the setting where lossy
    // summarization shines).
    std::vector<double> true_ta(distinct_a);
    for (size_t a = 0; a < distinct_a; ++a) {
      true_ta[a] = 100.0 * (static_cast<double>(a) + 1.0);
    }
    for (size_t i = 0; i < n; ++i) {
      int a = static_cast<int>(rng.NextBelow(distinct_a));
      int b = static_cast<int>(rng.NextBelow(10000));
      double noise = 1.0 + 0.1 * (2.0 * rng.NextDouble() - 1.0);
      double ta = true_ta[a] * noise;
      dcsm.RecordExecution(
          DomainCall{"d", "f", {Value::Int(a), Value::Int(b)}},
          CostVector(ta / 4.0, ta, 5.0));
    }

    TradeoffPoint point;
    point.records = n;
    point.distinct_args = distinct_a;
    point.raw_bytes = dcsm.database().ApproxBytes();

    dcsm::CallGroupKey key{"d", "f", 2};

    // Lossless summaries (all positions retained).
    HERMES_RETURN_IF_ERROR(dcsm.BuildLosslessSummaries());
    point.lossless_bytes = dcsm.TotalSummaryBytes();

    // Fully lossy summary alongside (dims = {}).
    HERMES_RETURN_IF_ERROR(dcsm.BuildSummary(key, {}));
    point.lossy_bytes = dcsm.TotalSummaryBytes() - point.lossless_bytes;

    // Also a partially-lossy table retaining only A — this is what the
    // program-analysis dimension dropping would build; use it as the lossy
    // *estimator* since a fully dropped table cannot answer per-A
    // questions at all.
    size_t before_partial = dcsm.TotalSummaryBytes();
    HERMES_RETURN_IF_ERROR(dcsm.BuildSummary(key, {0}));
    point.program_lossy_bytes = dcsm.TotalSummaryBytes() - before_partial;

    double raw_lookup = 0, lossless_lookup = 0, lossy_lookup = 0;
    double lossless_err = 0, lossy_err = 0;
    for (size_t a = 0; a < distinct_a; ++a) {
      lang::DomainCallSpec pattern = PatternForA(static_cast<int>(a));

      // Raw only.
      dcsm.options().use_summaries = false;
      dcsm.options().use_raw_database = true;
      HERMES_ASSIGN_OR_RETURN(dcsm::CostEstimate raw, dcsm.Cost(pattern));
      raw_lookup += raw.lookup_ms;

      // Summaries only. The most specific answering table for (A, $b) is
      // the A-retaining one (the lossless table needs aggregation since B
      // is unknown) — measure both by toggling.
      dcsm.options().use_summaries = true;
      dcsm.options().use_raw_database = false;
      HERMES_ASSIGN_OR_RETURN(dcsm::CostEstimate summarized,
                              dcsm.Cost(pattern));
      lossless_lookup += summarized.lookup_ms;
      lossless_err += std::fabs(summarized.cost.t_all_ms - true_ta[a]) /
                      true_ta[a];

      // Fully lossy view: the global average regardless of A.
      lang::DomainCallSpec blind = pattern;
      blind.args[0] = lang::Term::Bound();
      HERMES_ASSIGN_OR_RETURN(dcsm::CostEstimate lossy, dcsm.Cost(blind));
      lossy_lookup += lossy.lookup_ms;
      lossy_err += std::fabs(lossy.cost.t_all_ms - true_ta[a]) / true_ta[a];
    }
    double k = static_cast<double>(distinct_a);
    point.raw_lookup_ms = raw_lookup / k;
    point.lossless_lookup_ms = lossless_lookup / k;
    point.lossy_lookup_ms = lossy_lookup / k;
    point.lossless_error = lossless_err / k;
    point.lossy_error = lossy_err / k;
    points.push_back(point);
  }
  return points;
}

std::string RenderTradeoff(const std::vector<TradeoffPoint>& points) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%8s | %10s %10s %9s %8s | %9s %9s | %9s %9s\n", "records",
                "raw B", "lossless B", "dims{A} B", "dims{} B", "raw ms",
                "summ ms", "ll err", "lossy err");
  out += buf;
  out += std::string(98, '-') + "\n";
  for (const TradeoffPoint& p : points) {
    std::snprintf(buf, sizeof(buf),
                  "%8zu | %10zu %10zu %9zu %8zu | %9.3f %9.3f | %8.1f%% "
                  "%8.1f%%\n",
                  p.records, p.raw_bytes, p.lossless_bytes,
                  p.program_lossy_bytes, p.lossy_bytes, p.raw_lookup_ms,
                  p.lossless_lookup_ms, 100 * p.lossless_error,
                  100 * p.lossy_error);
    out += buf;
  }
  return out;
}

}  // namespace hermes::experiments
