#include "experiments/fig5.h"

#include <cstdio>

#include "engine/mediator.h"
#include "testbed/scenario.h"

namespace hermes::experiments {

namespace {

/// One Figure 5 workload: the measured query plus the warming queries that
/// make each cache configuration meaningful.
struct Workload {
  std::string description;
  std::string measured;        ///< The query whose times are reported.
  std::string equality_warm;   ///< Caches a provably-equal call.
  std::string partial_warm;    ///< Caches a provable subset.
};

std::vector<Workload> Workloads() {
  return {
      // "Find all actors in 'rope'": the whole movie, expressed with an
      // over-long frame range so the range-clamp equality invariant has an
      // equivalent cached twin.
      {"actors in 'rope'",
       "?- query3(4, 200000, Object, Actor).",
       "?- query3(4, 129999, Object, Actor).",
       "?- query3(4, 9000, Object, Actor)."},
      // "Objects between frames 4 and 47."
      {"objects in frames [4,47]",
       "?- objects(4, 47, O).",
       "?- objects(4, 60, O).",
       "?- objects(4, 30, O)."},
      // "Objects between frames 4 and 127."
      {"objects in frames [4,127]",
       "?- objects(4, 127, O).",
       "?- objects(4, 149, O).",
       "?- objects(4, 47, O)."},
  };
}

/// AVIS content-index knowledge for the 'rope' dataset: no appearance
/// segment starts inside (40,119] or (120,149], so frame ranges ending
/// anywhere within those windows return identical object sets — the same
/// kind of data-specific semantic invariant as the paper's spatial
/// range-clamping example.
constexpr const char* kRopeEqualityInvariants = R"(
  L1 >= 40 & L1 <= 119 & L2 >= 40 & L2 <= 119 =>
      video:frames_to_objects('rope', F, L1) =
      video:frames_to_objects('rope', F, L2).
  L1 >= 120 & L1 <= 149 & L2 >= 120 & L2 <= 149 =>
      video:frames_to_objects('rope', F, L1) =
      video:frames_to_objects('rope', F, L2).
)";

constexpr const char* kObjectsRule =
    "objects(F, L, O) :- in(O, video:frames_to_objects('rope', F, L)).\n";

Result<Fig5Row> MeasureOne(const Workload& workload, Fig5Config config,
                           const net::SiteParams& video_site, uint64_t seed) {
  Mediator med(seed);
  testbed::RopeScenarioOptions options;
  options.sites.video_site = video_site;
  options.sites.relation_site = net::UsaSite("cornell");
  options.cim_options.use_invariants =
      config == Fig5Config::kCacheEqualityInvariant ||
      config == Fig5Config::kCachePartialInvariant;
  HERMES_RETURN_IF_ERROR(testbed::SetupRopeScenario(&med, options));
  HERMES_RETURN_IF_ERROR(med.LoadProgram(kObjectsRule));
  if (options.cim_options.use_invariants) {
    HERMES_RETURN_IF_ERROR(med.AddInvariants(kRopeEqualityInvariants));
  }

  QueryOptions direct;
  direct.use_optimizer = false;
  direct.use_cim = false;

  QueryOptions via_cim;
  via_cim.use_optimizer = false;
  via_cim.use_cim = true;

  // Warm the caches per configuration.
  switch (config) {
    case Fig5Config::kNoCacheNoInvariants:
      break;
    case Fig5Config::kCacheOnly:
      HERMES_RETURN_IF_ERROR(med.Query(workload.measured, via_cim).status());
      break;
    case Fig5Config::kCacheEqualityInvariant:
      HERMES_RETURN_IF_ERROR(
          med.Query(workload.equality_warm, via_cim).status());
      break;
    case Fig5Config::kCachePartialInvariant:
      HERMES_RETURN_IF_ERROR(
          med.Query(workload.partial_warm, via_cim).status());
      break;
  }

  const QueryOptions& measured_options =
      config == Fig5Config::kNoCacheNoInvariants ? direct : via_cim;
  HERMES_ASSIGN_OR_RETURN(QueryResult result,
                          med.Query(workload.measured, measured_options));

  Fig5Row row;
  row.query = workload.description;
  row.config = config;
  row.site = video_site.name;
  row.t_first_ms = result.execution.t_first_ms;
  row.t_all_ms = result.execution.t_all_ms;
  row.tuples = result.execution.answers.size();
  for (const ValueList& answer : result.execution.answers) {
    for (const Value& v : answer) row.bytes += v.ApproxByteSize();
  }
  return row;
}

}  // namespace

const char* Fig5ConfigName(Fig5Config config) {
  switch (config) {
    case Fig5Config::kNoCacheNoInvariants: return "no cache, no invar.";
    case Fig5Config::kCacheOnly: return "cache only";
    case Fig5Config::kCacheEqualityInvariant: return "cache + equality inv.";
    case Fig5Config::kCachePartialInvariant: return "cache + partial inv.";
  }
  return "?";
}

Result<std::vector<Fig5Row>> RunFig5(uint64_t seed) {
  std::vector<Fig5Row> rows;
  for (const Workload& workload : Workloads()) {
    for (const net::SiteParams& site :
         {net::UsaSite("usa"), net::ItalySite("italy")}) {
      for (Fig5Config config :
           {Fig5Config::kNoCacheNoInvariants, Fig5Config::kCacheOnly,
            Fig5Config::kCacheEqualityInvariant,
            Fig5Config::kCachePartialInvariant}) {
        HERMES_ASSIGN_OR_RETURN(Fig5Row row,
                                MeasureOne(workload, config, site, seed));
        rows.push_back(row);
      }
    }
  }
  return rows;
}

std::string RenderFig5(const std::vector<Fig5Row>& rows) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-28s %-23s %-6s %12s %12s %7s %8s\n",
                "Query", "Type", "Site", "First (ms)", "All (ms)", "Tuples",
                "Bytes");
  out += buf;
  out += std::string(100, '-') + "\n";
  const std::string* last_query = nullptr;
  for (const Fig5Row& row : rows) {
    if (last_query != nullptr && *last_query != row.query) {
      out += std::string(100, '-') + "\n";
    }
    last_query = &row.query;
    std::snprintf(buf, sizeof(buf), "%-28s %-23s %-6s %12.0f %12.0f %7zu %8zu\n",
                  row.query.c_str(), Fig5ConfigName(row.config),
                  row.site.c_str(), row.t_first_ms, row.t_all_ms, row.tuples,
                  row.bytes);
    out += buf;
  }
  return out;
}

}  // namespace hermes::experiments
