#include "experiments/fig6.h"

#include <cmath>
#include <cstdio>

#include "engine/mediator.h"
#include "lang/parser.h"
#include "optimizer/estimator.h"
#include "testbed/scenario.h"

namespace hermes::experiments {

namespace {

struct QueryShape {
  std::string label;
  int number;
  bool primed;
};

std::vector<QueryShape> Shapes() {
  return {{"query1", 1, false}, {"query1'", 1, true}, {"query2", 2, false},
          {"query2'", 2, true}, {"query3", 3, false}, {"query4", 4, false}};
}

/// Frame-range instantiations used to warm the cost vector database
/// (≈20 distinct argument bindings per domain call, per the paper).
std::vector<std::pair<int64_t, int64_t>> WarmRanges() {
  return {{1, 20},    {4, 47},    {1, 100},  {40, 127},  {4, 127},
          {100, 900}, {1, 500},   {30, 60},  {4, 2000},  {1, 9000},
          {500, 800}, {2000, 3000}, {1, 47}, {10, 127},  {4, 500},
          {1, 2500},  {120, 900}, {4, 8200}, {47, 4700}, {1, 130}};
}

Result<optimizer::RuleCostEstimator::Estimate> PredictAsWritten(
    const Mediator& med_const, dcsm::Dcsm* dcsm, const lang::Program& program,
    const std::string& query_text) {
  (void)med_const;
  HERMES_ASSIGN_OR_RETURN(lang::Query query,
                          lang::Parser::ParseQuery(query_text));
  optimizer::RuleCostEstimator estimator(dcsm);
  return estimator.EstimateBody(program, query.goals,
                                optimizer::BindingEnv());
}

}  // namespace

Result<std::vector<Fig6Row>> RunFig6(uint64_t seed) {
  Mediator med(seed);
  testbed::RopeScenarioOptions options;
  options.sites.video_site = net::UsaSite("umd");
  options.sites.relation_site = net::UsaSite("cornell");
  options.enable_caching = false;  // Figure 6 studies DCSM, not CIM.
  HERMES_RETURN_IF_ERROR(testbed::SetupRopeScenario(&med, options));

  QueryOptions direct;
  direct.use_optimizer = false;
  direct.use_cim = false;

  // Phase 1: statistics gathering over the warm ranges.
  for (const auto& [first, last] : WarmRanges()) {
    for (const QueryShape& shape : Shapes()) {
      HERMES_RETURN_IF_ERROR(
          med.Query(testbed::AppendixQuery(shape.number, shape.primed, first,
                                           last),
                    direct)
              .status());
    }
  }

  std::vector<Fig6Row> rows;
  constexpr int64_t kFirst = 4, kLast = 47;
  for (const QueryShape& shape : Shapes()) {
    std::string query_text =
        testbed::AppendixQuery(shape.number, shape.primed, kFirst, kLast);
    Fig6Row row;
    row.query = shape.label;

    // (a) Lossless prediction: raw cost vector database + lossless
    // summaries.
    med.dcsm().ClearSummaries();
    HERMES_RETURN_IF_ERROR(med.dcsm().BuildLosslessSummaries());
    med.dcsm().options().use_raw_database = true;
    med.dcsm().options().use_summaries = true;
    HERMES_ASSIGN_OR_RETURN(
        optimizer::RuleCostEstimator::Estimate lossless,
        PredictAsWritten(med, &med.dcsm(), med.program(), query_text));
    row.lossless_first_ms = lossless.cost.t_first_ms;
    row.lossless_all_ms = lossless.cost.t_all_ms;

    // (b) Lossy prediction: drop every argument of every cached call
    // (the paper's lossy-table construction), raw database disabled.
    med.dcsm().ClearSummaries();
    HERMES_RETURN_IF_ERROR(med.dcsm().BuildFullyLossySummaries());
    med.dcsm().options().use_raw_database = false;
    HERMES_ASSIGN_OR_RETURN(
        optimizer::RuleCostEstimator::Estimate lossy,
        PredictAsWritten(med, &med.dcsm(), med.program(), query_text));
    row.lossy_first_ms = lossy.cost.t_first_ms;
    row.lossy_all_ms = lossy.cost.t_all_ms;

    // Restore raw statistics access before executing.
    med.dcsm().options().use_raw_database = true;

    // (c) Actual execution.
    HERMES_ASSIGN_OR_RETURN(QueryResult actual,
                            med.Query(query_text, direct));
    row.actual_first_ms = actual.execution.t_first_ms;
    row.actual_all_ms = actual.execution.t_all_ms;

    rows.push_back(row);
  }
  return rows;
}

std::string RenderFig6(const std::vector<Fig6Row>& rows) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-9s | %10s %10s %10s | %10s %10s %10s\n", "Query",
                "actual Tf", "lossless", "lossy", "actual Ta", "lossless",
                "lossy");
  out += buf;
  out += std::string(80, '-') + "\n";
  for (const Fig6Row& row : rows) {
    std::snprintf(buf, sizeof(buf),
                  "%-9s | %10.0f %10.0f %10.0f | %10.0f %10.0f %10.0f\n",
                  row.query.c_str(), row.actual_first_ms,
                  row.lossless_first_ms, row.lossy_first_ms, row.actual_all_ms,
                  row.lossless_all_ms, row.lossy_all_ms);
    out += buf;
  }
  return out;
}

double MeanRelativeErrorAll(const std::vector<Fig6Row>& rows, bool lossy) {
  if (rows.empty()) return 0.0;
  double total = 0.0;
  for (const Fig6Row& row : rows) {
    double predicted = lossy ? row.lossy_all_ms : row.lossless_all_ms;
    total += std::fabs(predicted - row.actual_all_ms) /
             std::max(row.actual_all_ms, 1e-9);
  }
  return total / static_cast<double>(rows.size());
}

}  // namespace hermes::experiments
