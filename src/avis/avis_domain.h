#ifndef HERMES_AVIS_AVIS_DOMAIN_H_
#define HERMES_AVIS_AVIS_DOMAIN_H_

#include <memory>
#include <string>
#include <vector>

#include "avis/video_db.h"
#include "domain/domain.h"

namespace hermes::avis {

/// Simulated compute-cost parameters of the AVIS package.
///
/// AVIS is the paper's example of a source for which "it is extremely
/// difficult to develop a reasonable cost model": its latency is
/// data-dependent and non-smooth. We model per-call time as
///
///   setup + per_segment·segments_examined + range_factor·(range_len)^0.7
///         + per_result·|answers|,  all scaled by a deterministic
///   per-call jitter in [1-jitter, 1+jitter] derived from the call hash.
///
/// The jitter is keyed on the call's arguments, so *repeating* a call costs
/// about the same (statistics caching works) while *curve fitting* across
/// argument space stays hard (the paper's motivation for DCSM).
struct AvisCostParams {
  double setup_ms = 55.0;        ///< Video open + content-index load.
  double per_segment_ms = 1.6;   ///< Per appearance segment examined.
  double range_factor_ms = 0.9;  ///< Multiplies (frame-range length)^0.7.
  double per_result_ms = 4.0;    ///< Per answer materialized (decode work).
  double jitter = 0.25;          ///< Relative amplitude of per-call jitter.
};

/// Domain adapter for the video store (the paper's AVIS package).
///
/// Exported functions (answers noted per function):
///   video_size(video)                  — singleton int (bytes)
///   video_frames(video)                — singleton int (frame count)
///   frames_to_objects(video, f, l)     — object names appearing in [f, l]
///   object_to_frames(video, object)    — {first, last} structs per segment
///   videos()                           — names of all stored videos
class AvisDomain : public Domain {
 public:
  AvisDomain(std::string name, std::shared_ptr<VideoDatabase> db,
             AvisCostParams params = {})
      : name_(std::move(name)), db_(std::move(db)), params_(params) {}

  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override;
  Result<CallOutput> Run(const DomainCall& call) override;

  VideoDatabase* database() { return db_.get(); }
  const AvisCostParams& cost_params() const { return params_; }

 private:
  /// Deterministic jitter multiplier for a call.
  double JitterFor(const DomainCall& call) const;

  std::string name_;
  std::shared_ptr<VideoDatabase> db_;
  AvisCostParams params_;
};

}  // namespace hermes::avis

#endif  // HERMES_AVIS_AVIS_DOMAIN_H_
