#include "avis/avis_domain.h"

#include <cmath>

#include "common/rng.h"

namespace hermes::avis {

std::vector<FunctionInfo> AvisDomain::Functions() const {
  return {
      {"video_size", 1, "video_size(video): singleton byte size"},
      {"video_frames", 1, "video_frames(video): singleton frame count"},
      {"frames_to_objects", 3,
       "frames_to_objects(video, first, last): objects in the frame range"},
      {"object_to_frames", 2,
       "object_to_frames(video, object): {first, last} appearance segments"},
      {"videos", 0, "videos(): names of all stored videos"},
  };
}

double AvisDomain::JitterFor(const DomainCall& call) const {
  Rng rng(call.Hash() ^ 0xA715D0B5ULL);
  return 1.0 + params_.jitter * (2.0 * rng.NextDouble() - 1.0);
}

Result<CallOutput> AvisDomain::Run(const DomainCall& call) {
  const std::string& fn = call.function;
  double jitter = JitterFor(call);
  // Content inspection (segments + frame decode) dominates T_a; the first
  // answer surfaces once setup plus a slice of the inspection is done.
  auto finish = [this, jitter](AnswerSet answers, size_t segments,
                               double range_len) {
    CallOutput out;
    size_t n = answers.size();
    double inspect_ms =
        params_.per_segment_ms * static_cast<double>(segments) +
        params_.range_factor_ms *
            std::pow(std::max(range_len, 0.0), 0.7);
    out.all_ms = (params_.setup_ms + inspect_ms +
                  params_.per_result_ms * static_cast<double>(n)) *
                 jitter;
    out.first_ms =
        n == 0 ? out.all_ms
               : (params_.setup_ms +
                  inspect_ms / static_cast<double>(n + 1) +
                  params_.per_result_ms) *
                     jitter;
    out.answers = std::move(answers);
    return out;
  };

  if (fn == "videos") {
    if (!call.args.empty()) {
      return Status::InvalidArgument(call.ToString() + ": videos takes 0 args");
    }
    AnswerSet answers;
    for (const std::string& name : db_->VideoNames()) {
      answers.push_back(Value::Str(name));
    }
    return finish(std::move(answers), 0, 0.0);
  }

  if (call.args.empty() || !call.args[0].is_string()) {
    return Status::InvalidArgument(call.ToString() +
                                   ": first argument must be a video name");
  }
  const std::string& video = call.args[0].as_string();

  if (fn == "video_size" || fn == "video_frames") {
    if (call.args.size() != 1) {
      return Status::InvalidArgument(call.ToString() + ": takes 1 arg");
    }
    HERMES_ASSIGN_OR_RETURN(const VideoInfo* info, db_->GetVideo(video));
    return finish(AnswerSet{Value::Int(fn == "video_size" ? info->size_bytes
                                                          : info->num_frames)},
                  0, 0.0);
  }

  if (fn == "frames_to_objects") {
    if (call.args.size() != 3 || !call.args[1].is_numeric() ||
        !call.args[2].is_numeric()) {
      return Status::InvalidArgument(
          call.ToString() + ": frames_to_objects takes (video, first, last)");
    }
    int64_t first = static_cast<int64_t>(call.args[1].as_number());
    int64_t last = static_cast<int64_t>(call.args[2].as_number());
    if (first > last) {
      return Status::InvalidArgument(call.ToString() +
                                     ": empty frame range (first > last)");
    }
    HERMES_ASSIGN_OR_RETURN(VideoDatabase::RangeResult range,
                            db_->ObjectsInRange(video, first, last));
    AnswerSet answers;
    answers.reserve(range.objects.size());
    for (const std::string& obj : range.objects) {
      answers.push_back(Value::Str(obj));
    }
    return finish(std::move(answers), range.segments_examined,
                  static_cast<double>(last - first + 1));
  }

  if (fn == "object_to_frames") {
    if (call.args.size() != 2 || !call.args[1].is_string()) {
      return Status::InvalidArgument(
          call.ToString() + ": object_to_frames takes (video, object)");
    }
    HERMES_ASSIGN_OR_RETURN(
        VideoDatabase::FramesResult frames,
        db_->FramesOfObject(video, call.args[1].as_string()));
    AnswerSet answers;
    answers.reserve(frames.segments.size());
    for (const AppearanceSegment& seg : frames.segments) {
      answers.push_back(Value::Struct({{"first", Value::Int(seg.first_frame)},
                                       {"last", Value::Int(seg.last_frame)}}));
    }
    return finish(std::move(answers), frames.segments_examined, 0.0);
  }

  return Status::NotFound("domain '" + name_ + "' has no function '" + fn +
                          "'");
}

}  // namespace hermes::avis
