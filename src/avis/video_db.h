#ifndef HERMES_AVIS_VIDEO_DB_H_
#define HERMES_AVIS_VIDEO_DB_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace hermes::avis {

/// A contiguous run of frames in which one object (character/prop) appears.
struct AppearanceSegment {
  std::string object;
  int64_t first_frame = 0;
  int64_t last_frame = 0;
};

/// One video: frame count, byte size, and its appearance segments.
struct VideoInfo {
  std::string name;
  int64_t num_frames = 0;
  int64_t size_bytes = 0;
  std::vector<AppearanceSegment> segments;
};

/// The content store behind the AVIS domain: videos annotated with which
/// objects appear in which frame ranges (the video-retrieval package of the
/// paper, reproduced synthetically).
class VideoDatabase {
 public:
  VideoDatabase() = default;

  VideoDatabase(const VideoDatabase&) = delete;
  VideoDatabase& operator=(const VideoDatabase&) = delete;

  /// Adds (or replaces) a video.
  void PutVideo(VideoInfo info);

  bool HasVideo(const std::string& name) const {
    return videos_.find(name) != videos_.end();
  }

  Result<const VideoInfo*> GetVideo(const std::string& name) const;

  /// Objects appearing in any frame of [first, last], deduplicated, in
  /// first-appearance order. Also reports how many segments were examined.
  struct RangeResult {
    std::vector<std::string> objects;
    size_t segments_examined = 0;
  };
  Result<RangeResult> ObjectsInRange(const std::string& video, int64_t first,
                                     int64_t last) const;

  /// Frame segments of `object` within `video`, in frame order.
  struct FramesResult {
    std::vector<AppearanceSegment> segments;
    size_t segments_examined = 0;
  };
  Result<FramesResult> FramesOfObject(const std::string& video,
                                      const std::string& object) const;

  std::vector<std::string> VideoNames() const;
  size_t num_videos() const { return videos_.size(); }

 private:
  std::map<std::string, VideoInfo> videos_;
};

/// Builds the canned "rope" dataset used by the paper's Section 8 queries:
/// a video named 'rope' whose objects are the role names of the cast table
/// (rupert, brandon, phillip, david, janet, mrs_wilson, ...).
void LoadRopeDataset(VideoDatabase* db);

/// Synthesizes `num_videos` videos with `objects_per_video` objects, each
/// appearing in 1–4 random segments, deterministically from `seed`.
void LoadSyntheticVideos(VideoDatabase* db, uint64_t seed, size_t num_videos,
                         size_t objects_per_video, int64_t frames_per_video);

}  // namespace hermes::avis

#endif  // HERMES_AVIS_VIDEO_DB_H_
