#include "avis/video_db.h"

namespace hermes::avis {

void VideoDatabase::PutVideo(VideoInfo info) {
  videos_[info.name] = std::move(info);
}

Result<const VideoInfo*> VideoDatabase::GetVideo(
    const std::string& name) const {
  auto it = videos_.find(name);
  if (it == videos_.end()) {
    return Status::NotFound("no video '" + name + "' in AVIS store");
  }
  return &it->second;
}

Result<VideoDatabase::RangeResult> VideoDatabase::ObjectsInRange(
    const std::string& video, int64_t first, int64_t last) const {
  HERMES_ASSIGN_OR_RETURN(const VideoInfo* info, GetVideo(video));
  RangeResult result;
  result.segments_examined = info->segments.size();
  for (const AppearanceSegment& seg : info->segments) {
    if (seg.first_frame <= last && seg.last_frame >= first) {
      bool already = false;
      for (const std::string& obj : result.objects) {
        if (obj == seg.object) {
          already = true;
          break;
        }
      }
      if (!already) result.objects.push_back(seg.object);
    }
  }
  return result;
}

Result<VideoDatabase::FramesResult> VideoDatabase::FramesOfObject(
    const std::string& video, const std::string& object) const {
  HERMES_ASSIGN_OR_RETURN(const VideoInfo* info, GetVideo(video));
  FramesResult result;
  result.segments_examined = info->segments.size();
  for (const AppearanceSegment& seg : info->segments) {
    if (seg.object == object) result.segments.push_back(seg);
  }
  return result;
}

std::vector<std::string> VideoDatabase::VideoNames() const {
  std::vector<std::string> out;
  out.reserve(videos_.size());
  for (const auto& [name, info] : videos_) out.push_back(name);
  return out;
}

void LoadRopeDataset(VideoDatabase* db) {
  VideoInfo rope;
  rope.name = "rope";
  rope.num_frames = 130000;        // ~80 min at 27 fps.
  rope.size_bytes = 1214800000;    // ~1.2 GB.
  // Role names align with the 'cast' relation used by the paper's queries.
  rope.segments = {
      {"rupert", 4, 42},      {"rupert", 300, 1200},   {"rupert", 5000, 9000},
      {"brandon", 1, 47},     {"brandon", 90, 500},    {"brandon", 4500, 8000},
      {"phillip", 1, 47},     {"phillip", 600, 2500},
      {"david", 1, 12},
      {"janet", 120, 900},    {"janet", 2600, 3900},
      {"kenneth", 150, 780},
      {"mr_kentley", 2000, 3600},
      {"mrs_atwater", 2100, 3500},
      {"mrs_wilson", 40, 127},{"mrs_wilson", 1900, 2400},
      {"rope_prop", 1, 60},   {"rope_prop", 7000, 7400},
      {"chest", 30, 8200},
      {"books", 2200, 2900},  {"books", 6100, 6400},
      {"champagne", 800, 1700},
      {"metronome", 4100, 4700},
  };
  db->PutVideo(std::move(rope));

  // A second, smaller video so multi-video queries have something to join.
  VideoInfo birds;
  birds.name = "the_birds";
  birds.num_frames = 170000;
  birds.size_bytes = 1628000000;
  birds.segments = {
      {"melanie", 1, 9000},   {"mitch", 400, 8000},
      {"lydia", 2000, 6000},  {"cathy", 2500, 5000},
      {"annie", 1200, 2100},  {"birds", 3000, 9000},
  };
  db->PutVideo(std::move(birds));
}

void LoadSyntheticVideos(VideoDatabase* db, uint64_t seed, size_t num_videos,
                         size_t objects_per_video, int64_t frames_per_video) {
  Rng rng(seed);
  for (size_t v = 0; v < num_videos; ++v) {
    VideoInfo info;
    info.name = "video_" + std::to_string(v);
    info.num_frames = frames_per_video;
    info.size_bytes = frames_per_video * 9000;
    for (size_t o = 0; o < objects_per_video; ++o) {
      std::string object = "obj_" + std::to_string(v) + "_" + std::to_string(o);
      size_t segments = 1 + rng.NextBelow(4);
      for (size_t s = 0; s < segments; ++s) {
        int64_t first = rng.NextInRange(0, frames_per_video - 2);
        int64_t length = rng.NextInRange(1, frames_per_video / 10 + 1);
        int64_t last = std::min<int64_t>(first + length, frames_per_video - 1);
        info.segments.push_back({object, first, last});
      }
    }
    db->PutVideo(std::move(info));
  }
}

}  // namespace hermes::avis
