#include "lang/parser.h"

#include "lang/lexer.h"

namespace hermes::lang {

const Token& Parser::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  if (i >= tokens_.size()) i = tokens_.size() - 1;  // final kEnd token
  return tokens_[i];
}

const Token& Parser::Advance() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::Match(TokenKind kind) {
  if (Check(kind)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::Expect(TokenKind kind, const char* context) {
  if (Match(kind)) return Status::OK();
  return ErrorAt(Peek(), std::string("expected ") + TokenKindName(kind) +
                             " " + context + ", found " + Peek().Describe());
}

Status Parser::ErrorAt(const Token& token, const std::string& message) const {
  return Status::ParseError(message + " (line " + std::to_string(token.line) +
                            ", column " + std::to_string(token.column) + ")");
}

bool Parser::IsRelOpToken(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEq:
    case TokenKind::kNeq:
    case TokenKind::kLt:
    case TokenKind::kLe:
    case TokenKind::kGt:
    case TokenKind::kGe:
      return true;
    default:
      return false;
  }
}

RelOp Parser::RelOpFromToken(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEq: return RelOp::kEq;
    case TokenKind::kNeq: return RelOp::kNeq;
    case TokenKind::kLt: return RelOp::kLt;
    case TokenKind::kLe: return RelOp::kLe;
    case TokenKind::kGt: return RelOp::kGt;
    default: return RelOp::kGe;
  }
}

Result<Term> Parser::ParseTerm() {
  const Token& t = Peek();
  switch (t.kind) {
    case TokenKind::kInt: {
      Advance();
      return Term::Const(Value::Int(t.int_value));
    }
    case TokenKind::kDouble: {
      Advance();
      return Term::Const(Value::Double(t.double_value));
    }
    case TokenKind::kString: {
      Advance();
      return Term::Const(Value::Str(t.text));
    }
    case TokenKind::kIdent: {
      Advance();
      if (t.text == "true") return Term::Const(Value::Bool(true));
      if (t.text == "false") return Term::Const(Value::Bool(false));
      if (t.text == "null") return Term::Const(Value::Null());
      return Term::Const(Value::Str(t.text));
    }
    case TokenKind::kVariable: {
      Advance();
      return Term::Var(t.text, t.path);
    }
    case TokenKind::kDollarB: {
      Advance();
      return Term::Bound();
    }
    case TokenKind::kLBracket: {
      Advance();
      ValueList items;
      if (!Check(TokenKind::kRBracket)) {
        while (true) {
          HERMES_ASSIGN_OR_RETURN(Term item, ParseTerm());
          if (!item.is_constant()) {
            return ErrorAt(t, "list literals may contain only constants");
          }
          items.push_back(item.constant);
          if (!Match(TokenKind::kComma)) break;
        }
      }
      HERMES_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "to close list"));
      return Term::Const(Value::List(std::move(items)));
    }
    default:
      return ErrorAt(t, "expected a term, found " + t.Describe());
  }
}

Result<DomainCallSpec> Parser::ParseDomainCall() {
  const Token& dom = Peek();
  if (dom.kind != TokenKind::kIdent) {
    return ErrorAt(dom, "expected domain name, found " + dom.Describe());
  }
  Advance();
  HERMES_RETURN_IF_ERROR(Expect(TokenKind::kColon, "after domain name"));
  const Token& fn = Peek();
  if (fn.kind != TokenKind::kIdent) {
    return ErrorAt(fn, "expected function name, found " + fn.Describe());
  }
  Advance();
  HERMES_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after function name"));
  DomainCallSpec spec;
  spec.domain = dom.text;
  spec.function = fn.text;
  if (!Check(TokenKind::kRParen)) {
    while (true) {
      HERMES_ASSIGN_OR_RETURN(Term arg, ParseTerm());
      spec.args.push_back(std::move(arg));
      if (!Match(TokenKind::kComma)) break;
    }
  }
  HERMES_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close domain call"));
  return spec;
}

Result<Atom> Parser::ParseAtom() {
  const Token& t = Peek();

  // Prefix comparison: =(X, Y), <=(X, 5), ...
  if (IsRelOpToken(t.kind) && Peek(1).kind == TokenKind::kLParen) {
    RelOp op = RelOpFromToken(t.kind);
    Advance();
    Advance();  // '('
    HERMES_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
    HERMES_RETURN_IF_ERROR(Expect(TokenKind::kComma, "in comparison"));
    HERMES_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
    HERMES_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close comparison"));
    return Atom::Comparison(op, std::move(lhs), std::move(rhs));
  }

  // in(Output, domain:function(args))
  if (t.kind == TokenKind::kIdent && t.text == "in" &&
      Peek(1).kind == TokenKind::kLParen) {
    Advance();
    Advance();  // '('
    HERMES_ASSIGN_OR_RETURN(Term output, ParseTerm());
    HERMES_RETURN_IF_ERROR(Expect(TokenKind::kComma, "after in() output term"));
    HERMES_ASSIGN_OR_RETURN(DomainCallSpec call, ParseDomainCall());
    HERMES_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close in()"));
    return Atom::DomainCall(std::move(output), std::move(call));
  }

  // Predicate atom: ident(...) or bare ident.
  if (t.kind == TokenKind::kIdent) {
    Advance();
    std::vector<Term> args;
    if (Match(TokenKind::kLParen)) {
      if (!Check(TokenKind::kRParen)) {
        while (true) {
          HERMES_ASSIGN_OR_RETURN(Term arg, ParseTerm());
          args.push_back(std::move(arg));
          if (!Match(TokenKind::kComma)) break;
        }
      }
      HERMES_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close predicate"));
    }
    return Atom::Predicate(t.text, std::move(args));
  }

  // Infix comparison: Term relop Term.
  HERMES_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
  const Token& op_tok = Peek();
  if (!IsRelOpToken(op_tok.kind)) {
    return ErrorAt(op_tok,
                   "expected comparison operator, found " + op_tok.Describe());
  }
  RelOp op = RelOpFromToken(op_tok.kind);
  Advance();
  HERMES_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
  return Atom::Comparison(op, std::move(lhs), std::move(rhs));
}

Result<Atom> Parser::ParseHeadAtom() {
  const Token& t = Peek();
  if (t.kind != TokenKind::kIdent) {
    return ErrorAt(t, "expected predicate name, found " + t.Describe());
  }
  HERMES_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
  if (!atom.is_predicate()) {
    return ErrorAt(t, "rule head must be a predicate atom");
  }
  return atom;
}

Result<std::vector<Atom>> Parser::ParseBody() {
  std::vector<Atom> body;
  while (true) {
    HERMES_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
    body.push_back(std::move(atom));
    if (!Match(TokenKind::kAmp) && !Match(TokenKind::kComma)) break;
  }
  return body;
}

Result<Rule> Parser::ParseRuleInternal() {
  Rule rule;
  HERMES_ASSIGN_OR_RETURN(rule.head, ParseHeadAtom());
  if (Match(TokenKind::kIf)) {
    HERMES_ASSIGN_OR_RETURN(rule.body, ParseBody());
  }
  HERMES_RETURN_IF_ERROR(Expect(TokenKind::kDot, "to end rule"));
  return rule;
}

Result<Invariant> Parser::ParseInvariantInternal() {
  Invariant inv;
  if (!Match(TokenKind::kImplies)) {
    // Parse conditions up to '=>'.
    while (true) {
      HERMES_ASSIGN_OR_RETURN(Atom cond, ParseAtom());
      if (!cond.is_comparison()) {
        return Status::ParseError(
            "invariant conditions must be comparison atoms, got '" +
            cond.ToString() + "'");
      }
      inv.conditions.push_back(std::move(cond));
      if (Match(TokenKind::kAmp) || Match(TokenKind::kComma)) continue;
      break;
    }
    HERMES_RETURN_IF_ERROR(Expect(TokenKind::kImplies, "after conditions"));
  }
  HERMES_ASSIGN_OR_RETURN(inv.lhs, ParseDomainCall());
  const Token& rel = Peek();
  switch (rel.kind) {
    case TokenKind::kEq:
      inv.relation = InvariantRelation::kEqual;
      break;
    case TokenKind::kGe:
      inv.relation = InvariantRelation::kSuperset;
      break;
    case TokenKind::kLe:
      inv.relation = InvariantRelation::kSubset;
      break;
    default:
      return ErrorAt(rel, "expected invariant relation '=', '>=' or '<='");
  }
  Advance();
  HERMES_ASSIGN_OR_RETURN(inv.rhs, ParseDomainCall());
  HERMES_RETURN_IF_ERROR(Expect(TokenKind::kDot, "to end invariant"));

  // Well-formedness: no free variables — every condition variable must
  // appear in one of the two domain calls (Section 4).
  auto call_has_var = [](const DomainCallSpec& call, const std::string& name) {
    for (const Term& arg : call.args) {
      if (arg.is_variable() && arg.var_name == name) return true;
    }
    return false;
  };
  for (const Atom& cond : inv.conditions) {
    for (const std::string& var : cond.Variables()) {
      if (!call_has_var(inv.lhs, var) && !call_has_var(inv.rhs, var)) {
        return Status::ParseError("invariant condition variable '" + var +
                                  "' does not appear in either domain call");
      }
    }
  }
  return inv;
}

Result<Program> Parser::ParseProgram(const std::string& text) {
  Lexer lexer(text);
  HERMES_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  Program program;
  while (!parser.AtEnd()) {
    HERMES_ASSIGN_OR_RETURN(Rule rule, parser.ParseRuleInternal());
    program.rules.push_back(std::move(rule));
  }
  return program;
}

Result<Rule> Parser::ParseRule(const std::string& text) {
  Lexer lexer(text);
  HERMES_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  HERMES_ASSIGN_OR_RETURN(Rule rule, parser.ParseRuleInternal());
  if (!parser.AtEnd()) {
    return parser.ErrorAt(parser.Peek(), "trailing input after rule");
  }
  return rule;
}

Result<Query> Parser::ParseQuery(const std::string& text) {
  Lexer lexer(text);
  HERMES_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  parser.Match(TokenKind::kQuery);  // optional '?-'
  Query query;
  HERMES_ASSIGN_OR_RETURN(query.goals, parser.ParseBody());
  HERMES_RETURN_IF_ERROR(parser.Expect(TokenKind::kDot, "to end query"));
  if (!parser.AtEnd()) {
    return parser.ErrorAt(parser.Peek(), "trailing input after query");
  }
  return query;
}

Result<Invariant> Parser::ParseInvariant(const std::string& text) {
  Lexer lexer(text);
  HERMES_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  HERMES_ASSIGN_OR_RETURN(Invariant inv, parser.ParseInvariantInternal());
  if (!parser.AtEnd()) {
    return parser.ErrorAt(parser.Peek(), "trailing input after invariant");
  }
  return inv;
}

Result<std::vector<Invariant>> Parser::ParseInvariants(
    const std::string& text) {
  Lexer lexer(text);
  HERMES_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  std::vector<Invariant> out;
  while (!parser.AtEnd()) {
    HERMES_ASSIGN_OR_RETURN(Invariant inv, parser.ParseInvariantInternal());
    out.push_back(std::move(inv));
  }
  return out;
}

Result<DomainCallSpec> Parser::ParseCallPattern(const std::string& text) {
  Lexer lexer(text);
  HERMES_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  HERMES_ASSIGN_OR_RETURN(DomainCallSpec spec, parser.ParseDomainCall());
  parser.Match(TokenKind::kDot);  // optional terminator
  if (!parser.AtEnd()) {
    return parser.ErrorAt(parser.Peek(), "trailing input after call pattern");
  }
  for (const Term& arg : spec.args) {
    if (arg.is_variable()) {
      return Status::ParseError(
          "call patterns may not contain variables; use '$b' for bound-"
          "unknown arguments (got '" + arg.ToString() + "')");
    }
  }
  return spec;
}

}  // namespace hermes::lang
