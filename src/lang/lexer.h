#ifndef HERMES_LANG_LEXER_H_
#define HERMES_LANG_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "lang/token.h"

namespace hermes::lang {

/// Tokenizes mediator-language text.
///
/// Conventions:
///  - `%` and `//` start line comments.
///  - Identifiers beginning with a lowercase letter are constant symbols;
///    identifiers beginning with an uppercase letter, `_`, or `$` are
///    variables. `$b` is the special bound-pattern token.
///  - A variable immediately followed by `.attr` or `.3` (no whitespace)
///    lexes as a single variable token carrying the attribute path, which
///    keeps the clause-terminating dot unambiguous.
class Lexer {
 public:
  explicit Lexer(std::string text);

  /// Lexes the entire input. On success the final token is kEnd.
  Result<std::vector<Token>> Tokenize();

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  char Advance();
  void SkipWhitespaceAndComments();
  Status LexOne(std::vector<Token>* out);
  Status LexNumber(std::vector<Token>* out);
  Status LexString(std::vector<Token>* out);
  Status LexWord(std::vector<Token>* out);
  Token MakeToken(TokenKind kind) const;
  Status ErrorHere(const std::string& message) const;

  std::string text_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  int token_line_ = 1;
  int token_column_ = 1;
};

}  // namespace hermes::lang

#endif  // HERMES_LANG_LEXER_H_
