#include "lang/token.h"

namespace hermes::lang {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "end-of-input";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kVariable: return "variable";
    case TokenKind::kInt: return "integer";
    case TokenKind::kDouble: return "double";
    case TokenKind::kString: return "string";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kAmp: return "'&'";
    case TokenKind::kIf: return "':-'";
    case TokenKind::kQuery: return "'?-'";
    case TokenKind::kImplies: return "'=>'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNeq: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kDollarB: return "'$b'";
  }
  return "?";
}

std::string Token::Describe() const {
  std::string out = TokenKindName(kind);
  if (!text.empty()) {
    out += " '";
    out += text;
    out += "'";
  }
  return out;
}

}  // namespace hermes::lang
