#include "lang/ast.h"

namespace hermes::lang {

bool Term::operator==(const Term& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::kConstant:
      return constant == other.constant;
    case Kind::kVariable:
      return var_name == other.var_name && path == other.path;
    case Kind::kBoundPattern:
      return true;
  }
  return false;
}

std::string Term::ToString() const {
  switch (kind) {
    case Kind::kConstant:
      return constant.ToString();
    case Kind::kVariable: {
      std::string out = var_name;
      for (const std::string& step : path) {
        out += ".";
        out += step;
      }
      return out;
    }
    case Kind::kBoundPattern:
      return "$b";
  }
  return "<?>";
}

const char* RelOpName(RelOp op) {
  switch (op) {
    case RelOp::kEq: return "=";
    case RelOp::kNeq: return "!=";
    case RelOp::kLt: return "<";
    case RelOp::kLe: return "<=";
    case RelOp::kGt: return ">";
    case RelOp::kGe: return ">=";
  }
  return "?";
}

RelOp FlipRelOp(RelOp op) {
  switch (op) {
    case RelOp::kEq: return RelOp::kEq;
    case RelOp::kNeq: return RelOp::kNeq;
    case RelOp::kLt: return RelOp::kGt;
    case RelOp::kLe: return RelOp::kGe;
    case RelOp::kGt: return RelOp::kLt;
    case RelOp::kGe: return RelOp::kLe;
  }
  return op;
}

bool EvalRelOp(RelOp op, const Value& lhs, const Value& rhs) {
  int c = lhs.Compare(rhs);
  switch (op) {
    case RelOp::kEq: return c == 0;
    case RelOp::kNeq: return c != 0;
    case RelOp::kLt: return c < 0;
    case RelOp::kLe: return c <= 0;
    case RelOp::kGt: return c > 0;
    case RelOp::kGe: return c >= 0;
  }
  return false;
}

bool DomainCallSpec::is_ground() const {
  for (const Term& arg : args) {
    if (!arg.is_constant()) return false;
  }
  return true;
}

bool DomainCallSpec::operator==(const DomainCallSpec& other) const {
  return domain == other.domain && function == other.function &&
         args == other.args;
}

std::string DomainCallSpec::ToString() const {
  std::string out = domain;
  out += ":";
  out += function;
  out += "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  out += ")";
  return out;
}

Atom Atom::Predicate(std::string name, std::vector<Term> args) {
  Atom a;
  a.kind = Kind::kPredicate;
  a.predicate = std::move(name);
  a.args = std::move(args);
  return a;
}

Atom Atom::DomainCall(Term output, DomainCallSpec call) {
  Atom a;
  a.kind = Kind::kDomainCall;
  a.output = std::move(output);
  a.call = std::move(call);
  return a;
}

Atom Atom::Comparison(RelOp op, Term lhs, Term rhs) {
  Atom a;
  a.kind = Kind::kComparison;
  a.op = op;
  a.lhs = std::move(lhs);
  a.rhs = std::move(rhs);
  return a;
}

std::vector<std::string> Atom::Variables() const {
  std::vector<std::string> out;
  auto add = [&out](const Term& t) {
    if (t.is_variable()) {
      for (const std::string& existing : out) {
        if (existing == t.var_name) return;
      }
      out.push_back(t.var_name);
    }
  };
  switch (kind) {
    case Kind::kPredicate:
      for (const Term& t : args) add(t);
      break;
    case Kind::kDomainCall:
      add(output);
      for (const Term& t : call.args) add(t);
      break;
    case Kind::kComparison:
      add(lhs);
      add(rhs);
      break;
  }
  return out;
}

std::string Atom::ToString() const {
  switch (kind) {
    case Kind::kPredicate: {
      std::string out = predicate;
      if (!args.empty()) {
        out += "(";
        for (size_t i = 0; i < args.size(); ++i) {
          if (i > 0) out += ", ";
          out += args[i].ToString();
        }
        out += ")";
      } else {
        out += "()";
      }
      return out;
    }
    case Kind::kDomainCall:
      return "in(" + output.ToString() + ", " + call.ToString() + ")";
    case Kind::kComparison:
      return lhs.ToString() + " " + RelOpName(op) + " " + rhs.ToString();
  }
  return "<?>";
}

std::string Rule::ToString() const {
  std::string out = head.ToString();
  if (!body.empty()) {
    out += " :- ";
    for (size_t i = 0; i < body.size(); ++i) {
      if (i > 0) out += " & ";
      out += body[i].ToString();
    }
  }
  out += ".";
  return out;
}

std::string Query::ToString() const {
  std::string out = "?- ";
  for (size_t i = 0; i < goals.size(); ++i) {
    if (i > 0) out += " & ";
    out += goals[i].ToString();
  }
  out += ".";
  return out;
}

const char* InvariantRelationName(InvariantRelation rel) {
  switch (rel) {
    case InvariantRelation::kEqual: return "=";
    case InvariantRelation::kSuperset: return ">=";
    case InvariantRelation::kSubset: return "<=";
  }
  return "?";
}

std::string Invariant::ToString() const {
  std::string out;
  for (size_t i = 0; i < conditions.size(); ++i) {
    if (i > 0) out += " & ";
    out += conditions[i].ToString();
  }
  if (!conditions.empty()) out += " ";
  out += "=> ";
  out += lhs.ToString();
  out += " ";
  out += InvariantRelationName(relation);
  out += " ";
  out += rhs.ToString();
  out += ".";
  return out;
}

std::string Program::ToString() const {
  std::string out;
  for (const Rule& rule : rules) {
    out += rule.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace hermes::lang
