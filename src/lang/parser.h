#ifndef HERMES_LANG_PARSER_H_
#define HERMES_LANG_PARSER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "lang/ast.h"
#include "lang/token.h"

namespace hermes::lang {

/// Recursive-descent parser for the mediator language.
///
/// Accepted syntax (see DESIGN.md and the paper's Sections 2, 4–6):
///
///   rule       := head [ ":-" body ] "."
///   body       := atom { ("&" | ",") atom }
///   atom       := "in" "(" term "," domaincall ")"
///               | relop "(" term "," term ")"          // prefix form
///               | term relop term                      // infix form
///               | ident [ "(" terms ")" ]              // predicate
///   domaincall := ident ":" ident "(" [ terms ] ")"
///   term       := number | string | ident | Variable[.path] | "$b"
///               | "[" [ constants ] "]"
///   query      := [ "?-" ] body "."
///   invariant  := [ conditions "=>" ] domaincall rel domaincall "."
///                 where rel ∈ { "=", ">=", "<=" }  (⊇ spelled ">=")
///
/// Lowercase identifiers are symbol constants; uppercase/`$`/`_`-initial
/// identifiers are variables. `%` and `//` start comments.
class Parser {
 public:
  /// Parses a whole program (zero or more rules).
  static Result<Program> ParseProgram(const std::string& text);
  /// Parses exactly one rule.
  static Result<Rule> ParseRule(const std::string& text);
  /// Parses a query; the leading `?-` is optional.
  static Result<Query> ParseQuery(const std::string& text);
  /// Parses exactly one invariant.
  static Result<Invariant> ParseInvariant(const std::string& text);
  /// Parses zero or more invariants.
  static Result<std::vector<Invariant>> ParseInvariants(const std::string& text);
  /// Parses a domain-call pattern such as `d:f(5, $b)`.
  static Result<DomainCallSpec> ParseCallPattern(const std::string& text);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const;
  const Token& Advance();
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Match(TokenKind kind);
  Status Expect(TokenKind kind, const char* context);
  Status ErrorAt(const Token& token, const std::string& message) const;
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  Result<Rule> ParseRuleInternal();
  Result<std::vector<Atom>> ParseBody();
  Result<Atom> ParseAtom();
  Result<Atom> ParseHeadAtom();
  Result<DomainCallSpec> ParseDomainCall();
  Result<Term> ParseTerm();
  Result<Invariant> ParseInvariantInternal();
  static bool IsRelOpToken(TokenKind kind);
  static RelOp RelOpFromToken(TokenKind kind);

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace hermes::lang

#endif  // HERMES_LANG_PARSER_H_
