#include "lang/lexer.h"

#include <cctype>

namespace hermes::lang {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsVariableStart(const std::string& word) {
  char c = word[0];
  return std::isupper(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

}  // namespace

Lexer::Lexer(std::string text) : text_(std::move(text)) {}

char Lexer::Advance() {
  char c = text_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

void Lexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
    } else if (c == '%' || (c == '/' && Peek(1) == '/')) {
      while (!AtEnd() && Peek() != '\n') Advance();
    } else {
      break;
    }
  }
}

Token Lexer::MakeToken(TokenKind kind) const {
  Token t;
  t.kind = kind;
  t.line = token_line_;
  t.column = token_column_;
  return t;
}

Status Lexer::ErrorHere(const std::string& message) const {
  return Status::ParseError(message + " at line " + std::to_string(line_) +
                            ", column " + std::to_string(column_));
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> out;
  while (true) {
    SkipWhitespaceAndComments();
    token_line_ = line_;
    token_column_ = column_;
    if (AtEnd()) {
      out.push_back(MakeToken(TokenKind::kEnd));
      return out;
    }
    HERMES_RETURN_IF_ERROR(LexOne(&out));
  }
}

Status Lexer::LexOne(std::vector<Token>* out) {
  char c = Peek();
  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '-' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
    return LexNumber(out);
  }
  if (c == '\'' || c == '"') return LexString(out);
  if (IsIdentStart(c)) return LexWord(out);

  Advance();
  switch (c) {
    case '(':
      out->push_back(MakeToken(TokenKind::kLParen));
      return Status::OK();
    case ')':
      out->push_back(MakeToken(TokenKind::kRParen));
      return Status::OK();
    case '[':
      out->push_back(MakeToken(TokenKind::kLBracket));
      return Status::OK();
    case ']':
      out->push_back(MakeToken(TokenKind::kRBracket));
      return Status::OK();
    case ',':
      out->push_back(MakeToken(TokenKind::kComma));
      return Status::OK();
    case '.':
      out->push_back(MakeToken(TokenKind::kDot));
      return Status::OK();
    case '&':
      out->push_back(MakeToken(TokenKind::kAmp));
      return Status::OK();
    case ':':
      if (Peek() == '-') {
        Advance();
        out->push_back(MakeToken(TokenKind::kIf));
      } else {
        out->push_back(MakeToken(TokenKind::kColon));
      }
      return Status::OK();
    case '?':
      if (Peek() == '-') {
        Advance();
        out->push_back(MakeToken(TokenKind::kQuery));
        return Status::OK();
      }
      return ErrorHere("unexpected '?'");
    case '=':
      if (Peek() == '>') {
        Advance();
        out->push_back(MakeToken(TokenKind::kImplies));
      } else if (Peek() == '=') {
        Advance();  // '==' is accepted as '='.
        out->push_back(MakeToken(TokenKind::kEq));
      } else {
        out->push_back(MakeToken(TokenKind::kEq));
      }
      return Status::OK();
    case '!':
      if (Peek() == '=') {
        Advance();
        out->push_back(MakeToken(TokenKind::kNeq));
        return Status::OK();
      }
      return ErrorHere("unexpected '!'");
    case '<':
      if (Peek() == '=') {
        Advance();
        out->push_back(MakeToken(TokenKind::kLe));
      } else if (Peek() == '>') {
        Advance();
        out->push_back(MakeToken(TokenKind::kNeq));
      } else {
        out->push_back(MakeToken(TokenKind::kLt));
      }
      return Status::OK();
    case '>':
      if (Peek() == '=') {
        Advance();
        out->push_back(MakeToken(TokenKind::kGe));
      } else {
        out->push_back(MakeToken(TokenKind::kGt));
      }
      return Status::OK();
    default:
      return ErrorHere(std::string("unexpected character '") + c + "'");
  }
}

Status Lexer::LexNumber(std::vector<Token>* out) {
  std::string digits;
  if (Peek() == '-') digits += Advance();
  while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
    digits += Advance();
  }
  bool is_double = false;
  // A '.' continues the number only when followed by a digit; otherwise it
  // is the clause terminator.
  if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
    is_double = true;
    digits += Advance();
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      digits += Advance();
    }
  }
  if (Peek() == 'e' || Peek() == 'E') {
    size_t look = 1;
    if (Peek(1) == '+' || Peek(1) == '-') look = 2;
    if (std::isdigit(static_cast<unsigned char>(Peek(look)))) {
      is_double = true;
      digits += Advance();  // e
      if (Peek() == '+' || Peek() == '-') digits += Advance();
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        digits += Advance();
      }
    }
  }
  Token t = MakeToken(is_double ? TokenKind::kDouble : TokenKind::kInt);
  t.text = digits;
  if (is_double) {
    t.double_value = std::stod(digits);
  } else {
    t.int_value = std::stoll(digits);
  }
  out->push_back(std::move(t));
  return Status::OK();
}

Status Lexer::LexString(std::vector<Token>* out) {
  char quote = Advance();
  std::string body;
  while (true) {
    if (AtEnd()) return ErrorHere("unterminated string literal");
    char c = Advance();
    if (c == quote) break;
    if (c == '\\' && !AtEnd()) {
      char esc = Advance();
      switch (esc) {
        case 'n': body += '\n'; break;
        case 't': body += '\t'; break;
        default: body += esc; break;
      }
    } else {
      body += c;
    }
  }
  Token t = MakeToken(TokenKind::kString);
  t.text = std::move(body);
  out->push_back(std::move(t));
  return Status::OK();
}

Status Lexer::LexWord(std::vector<Token>* out) {
  std::string word;
  word += Advance();  // ident start (may be '$')
  while (!AtEnd() && IsIdentChar(Peek())) word += Advance();

  if (word == "$b") {
    out->push_back(MakeToken(TokenKind::kDollarB));
    return Status::OK();
  }
  if (word == "$") return ErrorHere("'$' must begin a variable name");

  Token t = MakeToken(IsVariableStart(word) ? TokenKind::kVariable
                                            : TokenKind::kIdent);
  t.text = std::move(word);

  // Attribute path: Var.attr, Var.2, $ans.1.name — consumed only when the
  // dot is immediately adjacent and followed by an identifier or number.
  if (t.kind == TokenKind::kVariable) {
    while (Peek() == '.' &&
           (IsIdentStart(Peek(1)) ||
            std::isdigit(static_cast<unsigned char>(Peek(1))))) {
      // A digit-led step could be the start of a new numeric token after a
      // clause terminator only if preceded by whitespace; adjacency rules
      // this out here.
      Advance();  // '.'
      std::string step;
      while (!AtEnd() && IsIdentChar(Peek())) step += Advance();
      if (step.empty()) return ErrorHere("empty attribute path step");
      t.path.push_back(std::move(step));
    }
  }
  out->push_back(std::move(t));
  return Status::OK();
}

}  // namespace hermes::lang
