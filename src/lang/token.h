#ifndef HERMES_LANG_TOKEN_H_
#define HERMES_LANG_TOKEN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hermes::lang {

/// Lexical token kinds of the mediator language.
enum class TokenKind {
  kEnd,         // end of input
  kIdent,       // lowercase-initial identifier: constant symbol / names
  kVariable,    // uppercase/underscore/$-initial identifier, with opt. path
  kInt,         // integer literal
  kDouble,      // floating literal
  kString,      // 'single-quoted' string
  kLParen,      // (
  kRParen,      // )
  kLBracket,    // [
  kRBracket,    // ]
  kComma,       // ,
  kDot,         // . (clause terminator)
  kColon,       // :
  kAmp,         // &
  kIf,          // :-
  kQuery,       // ?-
  kImplies,     // =>
  kEq,          // =
  kNeq,         // != or <>
  kLt,          // <
  kLe,          // <=
  kGt,          // >
  kGe,          // >=
  kDollarB,     // $b  (the "bound, value unknown" pattern symbol)
};

/// Human-readable token-kind name for diagnostics.
const char* TokenKindName(TokenKind kind);

/// One lexical token. For kVariable, `text` holds the variable name and
/// `path` any attribute-path steps lexed from `Var.attr.2` syntax.
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;                // identifier/variable/string spelling
  std::vector<std::string> path;   // attribute path steps (variables only)
  int64_t int_value = 0;
  double double_value = 0.0;
  int line = 1;
  int column = 1;

  std::string Describe() const;
};

}  // namespace hermes::lang

#endif  // HERMES_LANG_TOKEN_H_
