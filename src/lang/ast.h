#ifndef HERMES_LANG_AST_H_
#define HERMES_LANG_AST_H_

#include <string>
#include <vector>

#include "common/value.h"

namespace hermes::lang {

/// A term in the mediator language: a ground constant, a variable (with an
/// optional attribute path, e.g. `P.name` or `$ans.2`), or the `$b`
/// bound-but-unknown placeholder used in domain-call *patterns*.
struct Term {
  enum class Kind { kConstant, kVariable, kBoundPattern };

  Kind kind = Kind::kConstant;
  Value constant;                  ///< Valid when kind == kConstant.
  std::string var_name;            ///< Valid when kind == kVariable.
  std::vector<std::string> path;   ///< Attribute path steps on the variable.

  static Term Const(Value v) {
    Term t;
    t.kind = Kind::kConstant;
    t.constant = std::move(v);
    return t;
  }
  static Term Var(std::string name, std::vector<std::string> path = {}) {
    Term t;
    t.kind = Kind::kVariable;
    t.var_name = std::move(name);
    t.path = std::move(path);
    return t;
  }
  /// The `$b` placeholder of a call pattern (Section 6: "bound but its
  /// exact value is not available").
  static Term Bound() {
    Term t;
    t.kind = Kind::kBoundPattern;
    return t;
  }

  bool is_constant() const { return kind == Kind::kConstant; }
  bool is_variable() const { return kind == Kind::kVariable; }
  bool is_bound_pattern() const { return kind == Kind::kBoundPattern; }

  bool operator==(const Term& other) const;
  std::string ToString() const;
};

/// Comparison operator of a constraint atom (`E_i` in Section 2).
enum class RelOp { kEq, kNeq, kLt, kLe, kGt, kGe };

/// Source spelling of a RelOp ("=", "!=", "<", "<=", ">", ">=").
const char* RelOpName(RelOp op);
/// Swaps operand sides: a OP b  ==  b OP' a.
RelOp FlipRelOp(RelOp op);
/// Evaluates `lhs OP rhs` on ground values.
bool EvalRelOp(RelOp op, const Value& lhs, const Value& rhs);

/// A domain call `domain:function(arg_1, ..., arg_N)`, the D_i construct.
/// When every argument is a constant the spec is ground and executable; a
/// spec whose arguments include `$b` terms is a *call pattern* used by the
/// DCSM cost interface.
struct DomainCallSpec {
  std::string domain;
  std::string function;
  std::vector<Term> args;

  bool is_ground() const;
  bool operator==(const DomainCallSpec& other) const;
  std::string ToString() const;
};

/// One subgoal of a rule body (or the head, which is always kPredicate).
struct Atom {
  enum class Kind { kPredicate, kDomainCall, kComparison };

  Kind kind = Kind::kPredicate;

  // kPredicate: predicate(args)
  std::string predicate;
  std::vector<Term> args;

  // kDomainCall: in(output, domain:function(args))
  Term output;
  DomainCallSpec call;

  // kComparison: lhs op rhs
  RelOp op = RelOp::kEq;
  Term lhs;
  Term rhs;

  static Atom Predicate(std::string name, std::vector<Term> args);
  static Atom DomainCall(Term output, DomainCallSpec call);
  static Atom Comparison(RelOp op, Term lhs, Term rhs);

  bool is_predicate() const { return kind == Kind::kPredicate; }
  bool is_domain_call() const { return kind == Kind::kDomainCall; }
  bool is_comparison() const { return kind == Kind::kComparison; }

  /// All variable names mentioned by the atom (args + output + operands).
  std::vector<std::string> Variables() const;

  std::string ToString() const;
};

/// A mediator rule `head :- g_1 & ... & g_k.`; facts have an empty body.
struct Rule {
  Atom head;               // Always kPredicate.
  std::vector<Atom> body;

  std::string ToString() const;
};

/// A parsed query `?- g_1 & ... & g_k.`
struct Query {
  std::vector<Atom> goals;

  std::string ToString() const;
};

/// Relationship asserted by an invariant between its two domain calls.
enum class InvariantRelation {
  kEqual,     ///< lhs answer set equals rhs answer set.
  kSuperset,  ///< lhs ⊇ rhs: every rhs answer is an lhs answer.
  kSubset,    ///< lhs ⊆ rhs: every lhs answer is an rhs answer.
};

const char* InvariantRelationName(InvariantRelation rel);

/// Section 4's invariant: `Condition => DomainCall_1 R DomainCall_2.`
///
/// Conditions are comparison atoms over the variables appearing in the two
/// domain calls; there are no free variables (every condition variable must
/// appear in one of the calls).
struct Invariant {
  std::vector<Atom> conditions;  // kComparison atoms; empty means "true".
  DomainCallSpec lhs;
  InvariantRelation relation = InvariantRelation::kEqual;
  DomainCallSpec rhs;

  std::string ToString() const;
};

/// A mediator program: an ordered list of rules.
struct Program {
  std::vector<Rule> rules;

  std::string ToString() const;
};

}  // namespace hermes::lang

#endif  // HERMES_LANG_AST_H_
