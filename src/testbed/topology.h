#ifndef HERMES_TESTBED_TOPOLOGY_H_
#define HERMES_TESTBED_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/mediator.h"

namespace hermes::testbed {

/// Latency/availability tier of one generated site. Tiers are assigned
/// round-robin, so any prefix of the site list holds the same mix.
enum class SiteTier { kFast = 0, kMid = 1, kSlow = 2, kFlaky = 3 };

/// Stable lowercase tier name ("fast", "mid", "slow", "flaky").
const char* SiteTierName(SiteTier tier);

/// The SiteParams preset of `tier`, named `name`.
net::SiteParams TierSite(SiteTier tier, std::string name);

/// Shape of the generated overload topology.
struct TopologyOptions {
  /// Primary sites (each hosting one echo-style source domain s0..sN-1).
  size_t num_sites = 32;
  /// Wire a replica domain + site ("sK_alt") for every even-indexed
  /// primary and AddFailover to it — which both reroutes given-up calls
  /// and registers the hedge route.
  bool with_failover_pairs = true;
  /// Simulated service time of one source call (before network).
  double source_first_ms = 2.0;
  double source_all_ms = 5.0;
};

/// What SetupOverloadTopology built: the registered primary domain names,
/// their tiers, and how many failover replicas were wired.
struct TopologyInfo {
  std::vector<std::string> domains;  ///< "s0".."sN-1", index == site index.
  std::vector<SiteTier> tiers;       ///< tiers[i] is domains[i]'s tier.
  size_t num_replicas = 0;
};

/// Wires `med` (freshly constructed) with a generated N-site topology for
/// overload experiments: echo-style source domains behind simulated links
/// spanning the four tiers, plus failover replica pairs per the options.
/// Unlike the paper's hand-built Section 8 scenario this one is synthetic —
/// wide enough (default 32 sites) that per-site concurrency limits, hedging
/// and admission control act on a realistic spread of latencies.
Status SetupOverloadTopology(Mediator* med, const TopologyOptions& options,
                             TopologyInfo* info = nullptr);

/// The k-th query of the open-loop workload: `fanout` independent `work`
/// calls against domain k mod N with never-repeating arguments (every
/// query is a cache miss; there is no shared state between queries).
/// Independent same-domain conjuncts scatter-gather under async execution,
/// which is what gives the per-site concurrency limiter and the hedge
/// trigger (both scoped per query) something to act on.
std::string TopologyQuery(const TopologyInfo& info, uint64_t k,
                          size_t fanout = 1);

}  // namespace hermes::testbed

#endif  // HERMES_TESTBED_TOPOLOGY_H_
