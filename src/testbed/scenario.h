#ifndef HERMES_TESTBED_SCENARIO_H_
#define HERMES_TESTBED_SCENARIO_H_

#include <memory>
#include <string>

#include "avis/avis_domain.h"
#include "avis/video_db.h"
#include "engine/mediator.h"
#include "flatfile/flatfile_domain.h"
#include "relational/relational_domain.h"
#include "spatial/spatial_domain.h"
#include "terrain/terrain_domain.h"

namespace hermes::testbed {

/// The 'cast' relation of the paper's appendix queries (role → actor name),
/// mirroring the cast of Hitchcock's "Rope".
std::shared_ptr<relational::Database> MakeCastDatabase();

/// An 'inventory' relation for the Section 2 `routetosupplies` example:
/// (item, loc) rows.
std::shared_ptr<relational::Database> MakeInventoryDatabase();

/// The AVIS video store with the 'rope' dataset loaded (plus synthetic
/// extras when `extra_videos` > 0).
std::shared_ptr<avis::VideoDatabase> MakeRopeVideoDatabase(
    size_t extra_videos = 0);

/// A terrain map with named supply locations for `routetosupplies`.
std::shared_ptr<terrain::TerrainDomain> MakeSupplyTerrain();

/// A spatial domain with the Section 4 example files: 'map1' (sparse wide
/// map) and 'points' (all points inside a 100×100 square).
std::shared_ptr<spatial::SpatialDomain> MakeSectionFourSpatial();

/// Where each source lives in a scenario.
struct ScenarioSites {
  net::SiteParams video_site = net::UsaSite("umd");
  net::SiteParams relation_site = net::UsaSite("cornell");
};

/// Options controlling the standard "rope" scenario construction.
struct RopeScenarioOptions {
  ScenarioSites sites;
  bool enable_caching = true;
  cim::CimOptions cim_options = {};
  bool add_frame_invariants = true;  ///< Frame-range ⊇ and clamp = invariants.
  bool relational_native_cost_model = false;
  uint64_t network_seed = 1996;
};

/// Wires `med` with the paper's Section 8 testbed: the AVIS 'rope' store
/// as domain "video", the cast relation as domain "relation" (both behind
/// simulated sites), caching/invariants per the options, and the mediator
/// rules used by the appendix queries. `med` must be freshly constructed.
Status SetupRopeScenario(Mediator* med, const RopeScenarioOptions& options);

/// The appendix's query bodies (already in our surface syntax), rule-form:
/// query1/query1' differ in subgoal order, query2/query2' likewise;
/// query4 is query3 with the selection NOT pushed into the source.
extern const char* kAppendixProgram;

/// Query strings `?- queryN(...)` over kAppendixProgram with the frame
/// parameters used in the paper's Figure 6 runs.
std::string AppendixQuery(int number, bool primed, int64_t first,
                          int64_t last);

}  // namespace hermes::testbed

#endif  // HERMES_TESTBED_SCENARIO_H_
