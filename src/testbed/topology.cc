#include "testbed/topology.h"

#include <memory>
#include <utility>

namespace hermes::testbed {

namespace {

/// Echo-style source: work(x) → {x} at a fixed simulated inner cost. The
/// interesting latency lives in the simulated link, not the source.
class EchoSource : public Domain {
 public:
  EchoSource(std::string name, double first_ms, double all_ms)
      : name_(std::move(name)), first_ms_(first_ms), all_ms_(all_ms) {}

  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override {
    return {{"work", 1, "work(x): {x}"}};
  }
  Result<CallOutput> Run(const DomainCall& call) override {
    CallOutput out;
    out.answers = {call.args[0]};
    out.first_ms = first_ms_;
    out.all_ms = all_ms_;
    return out;
  }

 private:
  std::string name_;
  double first_ms_;
  double all_ms_;
};

}  // namespace

const char* SiteTierName(SiteTier tier) {
  switch (tier) {
    case SiteTier::kFast: return "fast";
    case SiteTier::kMid: return "mid";
    case SiteTier::kSlow: return "slow";
    case SiteTier::kFlaky: return "flaky";
  }
  return "unknown";
}

net::SiteParams TierSite(SiteTier tier, std::string name) {
  net::SiteParams site;
  site.name = std::move(name);
  switch (tier) {
    case SiteTier::kFast:  // same-region replica class
      site.connect_ms = 40.0;
      site.rtt_ms = 10.0;
      site.bytes_per_ms = 50.0;
      site.jitter = 0.05;
      site.availability = 1.0;
      break;
    case SiteTier::kMid:  // cross-country (the paper's USA class, scaled)
      site.connect_ms = 150.0;
      site.rtt_ms = 40.0;
      site.bytes_per_ms = 20.0;
      site.jitter = 0.10;
      site.availability = 0.99;
      break;
    case SiteTier::kSlow:  // intercontinental (the paper's Italy class)
      site.connect_ms = 400.0;
      site.rtt_ms = 90.0;
      site.bytes_per_ms = 8.0;
      site.jitter = 0.20;
      site.availability = 0.97;
      break;
    case SiteTier::kFlaky:  // mid latency, poor reachability, high jitter
      site.connect_ms = 150.0;
      site.rtt_ms = 40.0;
      site.bytes_per_ms = 20.0;
      site.jitter = 0.30;
      site.availability = 0.92;
      break;
  }
  return site;
}

Status SetupOverloadTopology(Mediator* med, const TopologyOptions& options,
                             TopologyInfo* info) {
  TopologyInfo built;
  const size_t n = options.num_sites > 0 ? options.num_sites : 1;
  built.domains.reserve(n);
  built.tiers.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const std::string domain = "s" + std::to_string(i);
    const SiteTier tier = static_cast<SiteTier>(i % 4);
    HERMES_RETURN_IF_ERROR(med->RegisterRemoteDomain(
        domain,
        std::make_shared<EchoSource>(domain, options.source_first_ms,
                                     options.source_all_ms),
        TierSite(tier, domain + "_site")));
    built.domains.push_back(domain);
    built.tiers.push_back(tier);
  }
  if (options.with_failover_pairs) {
    // Every tier with a latency or availability tail gets a fast-tier
    // replica — exactly the sites where failover and hedging are worth the
    // budget. Only the fast tier runs bare: a fast site hedging to another
    // fast site buys nothing.
    for (size_t i = 0; i < n; ++i) {
      if (built.tiers[i] == SiteTier::kFast) continue;
      const std::string alt = built.domains[i] + "_alt";
      HERMES_RETURN_IF_ERROR(med->RegisterRemoteDomain(
          alt,
          std::make_shared<EchoSource>(alt, options.source_first_ms,
                                       options.source_all_ms),
          TierSite(SiteTier::kFast, alt + "_site")));
      HERMES_RETURN_IF_ERROR(med->AddFailover(built.domains[i], alt));
      ++built.num_replicas;
    }
  }
  if (info != nullptr) *info = std::move(built);
  return Status::OK();
}

std::string TopologyQuery(const TopologyInfo& info, uint64_t k,
                          size_t fanout) {
  const std::string& domain = info.domains[k % info.domains.size()];
  if (fanout < 1) fanout = 1;
  std::string query = "?- ";
  for (size_t j = 0; j < fanout; ++j) {
    if (j > 0) query += " & ";
    query += "in(X" + std::to_string(j) + ", " + domain + ":work(" +
             std::to_string(k * fanout + j) + "))";
  }
  query += ".";
  return query;
}

}  // namespace hermes::testbed
