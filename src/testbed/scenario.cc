#include "testbed/scenario.h"

namespace hermes::testbed {

namespace {

constexpr const char* kCastCsv = R"(name:string,role:string
'james stewart',rupert
'john dall',brandon
'farley granger',phillip
'dick hogan',david
'joan chandler',janet
'douglas dick',kenneth
'cedric hardwicke',mr_kentley
'constance collier',mrs_atwater
'edith evanson',mrs_wilson
)";

constexpr const char* kInventoryCsv = R"(item:string,loc:string
'h-22 fuel',depot_north
'h-22 fuel',depot_east
rations,depot_north
rations,depot_south
ammunition,depot_east
medkits,depot_west
)";

}  // namespace

std::shared_ptr<relational::Database> MakeCastDatabase() {
  auto db = std::make_shared<relational::Database>();
  Result<relational::Table*> table = db->LoadCsv("cast", kCastCsv);
  (void)table;
  return db;
}

std::shared_ptr<relational::Database> MakeInventoryDatabase() {
  auto db = std::make_shared<relational::Database>();
  Result<relational::Table*> table = db->LoadCsv("inventory", kInventoryCsv);
  (void)table;
  return db;
}

std::shared_ptr<avis::VideoDatabase> MakeRopeVideoDatabase(
    size_t extra_videos) {
  auto db = std::make_shared<avis::VideoDatabase>();
  avis::LoadRopeDataset(db.get());
  if (extra_videos > 0) {
    avis::LoadSyntheticVideos(db.get(), /*seed=*/7, extra_videos,
                              /*objects_per_video=*/12,
                              /*frames_per_video=*/100000);
  }
  return db;
}

std::shared_ptr<terrain::TerrainDomain> MakeSupplyTerrain() {
  auto domain = std::make_shared<terrain::TerrainDomain>("terraindb");
  domain->InitGrid(64, 64);
  // A mountain ridge with a single pass.
  for (int y = 0; y < 64; ++y) {
    if (y == 20) continue;  // the pass
    domain->SetObstacle(32, y);
  }
  // Swampy ground east of the ridge costs triple.
  for (int x = 40; x < 52; ++x) {
    for (int y = 30; y < 44; ++y) domain->SetCellCost(x, y, 3.0);
  }
  (void)domain->AddLocation("place1", 4, 4);
  (void)domain->AddLocation("depot_north", 10, 56);
  (void)domain->AddLocation("depot_east", 58, 36);
  (void)domain->AddLocation("depot_south", 44, 6);
  (void)domain->AddLocation("depot_west", 6, 30);
  return domain;
}

std::shared_ptr<spatial::SpatialDomain> MakeSectionFourSpatial() {
  auto domain = std::make_shared<spatial::SpatialDomain>("spatial");
  // 'points': everything inside a 100×100 square (diameter ≈ 142), the
  // paper's example for the range-clamping equality invariant.
  domain->PutFile("points",
                  spatial::MakeUniformPoints(/*seed=*/11, 400, 100, 100));
  // 'map1': a wider map that contains the same 100×100 region and more.
  domain->PutFile("map1",
                  spatial::MakeUniformPoints(/*seed=*/13, 2000, 1000, 1000));
  return domain;
}

const char* kAppendixProgram = R"(
% Appendix queries of the paper, in executable form. Primed variants (1p,
% 2p) differ only in subgoal order — they are rewritings of one another.

query1(First, Last, Object, Size) :-
    in(Size, video:video_size('rope')) &
    in(Object, video:frames_to_objects('rope', First, Last)).

query1p(First, Last, Object, Size) :-
    in(Object, video:frames_to_objects('rope', First, Last)) &
    in(Size, video:video_size('rope')).

query2(First, Last, Object, Frames, Actor) :-
    in(Object, video:frames_to_objects('rope', First, Last)) &
    in(Frames, video:object_to_frames('rope', Object)) &
    in(T, relation:equal('cast', role, Object)) &
    =(Actor, T.name).

query2p(First, Last, Object, Frames, Actor) :-
    in(Object, video:frames_to_objects('rope', First, Last)) &
    in(T, relation:equal('cast', role, Object)) &
    =(Actor, T.name) &
    in(Frames, video:object_to_frames('rope', Object)).

query3(First, Last, Object, Actor) :-
    in(Object, video:frames_to_objects('rope', First, Last)) &
    in(T, relation:equal('cast', role, Object)) &
    =(Actor, T.name).

query4(First, Last, Object, Actor) :-
    in(P, relation:all('cast')) &
    =(P.name, Actor) &
    =(P.role, Object) &
    in(Object, video:frames_to_objects('rope', First, Last)).
)";

std::string AppendixQuery(int number, bool primed, int64_t first,
                          int64_t last) {
  std::string name = "query" + std::to_string(number) + (primed ? "p" : "");
  std::string args = std::to_string(first) + ", " + std::to_string(last);
  switch (number) {
    case 1:
      return "?- " + name + "(" + args + ", Object, Size).";
    case 2:
      return "?- " + name + "(" + args + ", Object, Frames, Actor).";
    default:
      return "?- " + name + "(" + args + ", Object, Actor).";
  }
}

Status SetupRopeScenario(Mediator* med, const RopeScenarioOptions& options) {
  auto cast_db = MakeCastDatabase();
  auto ingres = std::make_shared<relational::RelationalDomain>(
      "ingres", cast_db, relational::RelationalCostParams{},
      options.relational_native_cost_model);
  auto videos = MakeRopeVideoDatabase();
  auto avis_domain = std::make_shared<avis::AvisDomain>("avis", videos);

  HERMES_RETURN_IF_ERROR(
      med->RegisterRemoteDomain("video", avis_domain, options.sites.video_site));
  HERMES_RETURN_IF_ERROR(med->RegisterRemoteDomain(
      "relation", ingres, options.sites.relation_site));

  if (options.enable_caching) {
    HERMES_RETURN_IF_ERROR(
        med->EnableCaching("video", options.cim_options));
    HERMES_RETURN_IF_ERROR(
        med->EnableCaching("relation", options.cim_options));
    if (options.add_frame_invariants) {
      HERMES_RETURN_IF_ERROR(med->AddInvariants(R"(
        % A wider frame range sees at least the objects of a narrower one.
        F2 <= F1 & L1 <= L2 =>
            video:frames_to_objects(V, F2, L2) >=
            video:frames_to_objects(V, F1, L1).
        % 'rope' has 130000 frames; ranges beyond that are equivalent to
        % the clamped range (the paper's range-shrinking equality example).
        L >= 130000 =>
            video:frames_to_objects('rope', F, L) =
            video:frames_to_objects('rope', F, 129999).
      )"));
    }
  }
  if (options.relational_native_cost_model) {
    HERMES_RETURN_IF_ERROR(med->UseNativeCostModel("relation"));
  }
  return med->LoadProgram(kAppendixProgram);
}

}  // namespace hermes::testbed
