#include "dcsm/drift.h"

#include <algorithm>
#include <cstdio>

namespace hermes::dcsm {

namespace {

std::string FormatErr(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// Relative error with a floor of 1.0 on the denominator: tiny estimates
/// (sub-millisecond, cardinality 0) would otherwise turn any observation
/// into unbounded "drift".
double RelError(double observed, double estimated) {
  double denom = std::max(std::abs(estimated), 1.0);
  return std::abs(observed - estimated) / denom;
}

/// "cim_video" and "video" drift against the same logical source.
std::string LogicalDomain(const std::string& domain) {
  if (domain.rfind("cim_", 0) == 0) return domain.substr(4);
  return domain;
}

}  // namespace

std::string DriftEntry::ToString() const {
  return site + "/" + domain + "[" + adornment + "]: tf=" +
         FormatErr(ewma_tf) + " ta=" + FormatErr(ewma_ta) + " card=" +
         FormatErr(ewma_card) + " n=" + std::to_string(samples) +
         (exceeded ? " DRIFTED" : "");
}

std::vector<DriftEntry> DriftReport::Exceeded() const {
  std::vector<DriftEntry> out;
  for (const DriftEntry& e : entries) {
    if (e.exceeded) out.push_back(e);
  }
  return out;
}

std::string DriftReport::ToString() const {
  if (entries.empty()) return "drift: no observations\n";
  std::string out;
  for (const DriftEntry& e : entries) out += e.ToString() + "\n";
  return out;
}

DriftTracker::DriftTracker(const Dcsm* dcsm, DriftOptions options)
    : dcsm_(dcsm), options_(options) {}

void DriftTracker::SetSite(const std::string& domain,
                           const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  domain_site_[LogicalDomain(domain)] = site;
}

void DriftTracker::BindMetrics(std::shared_ptr<obs::MetricsRegistry> registry) {
  std::lock_guard<std::mutex> lock(mu_);
  registry_ = std::move(registry);
  if (registry_ != nullptr) {
    exceeded_counter_ = registry_->GetOrAddCounter(
        "hermes_dcsm_drift_exceeded_total",
        "Times a (site, domain, adornment) group crossed the drift "
        "threshold.");
  }
}

void DriftTracker::set_exceeded_hook(ExceededHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  exceeded_hook_ = std::move(hook);
}

void DriftTracker::Observe(const lang::DomainCallSpec& pattern,
                           const std::string& adornment,
                           const CostVector& observed, double sim_ms,
                           obs::FlightRecorder* recorder) {
  if (dcsm_ == nullptr) return;
  Result<CostEstimate> est = dcsm_->Cost(pattern);
  if (!est.ok()) return;
  // An estimate fabricated wholly from defaults says nothing about the
  // model: error against a placeholder is noise, not drift.
  if (est->source == "default") return;

  const double err_tf = RelError(observed.t_first_ms, est->cost.t_first_ms);
  const double err_ta = RelError(observed.t_all_ms, est->cost.t_all_ms);
  const double err_card = RelError(observed.cardinality,
                                   est->cost.cardinality);

  const std::string domain = LogicalDomain(pattern.domain);

  bool newly_exceeded = false;
  std::string site;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto site_it = domain_site_.find(domain);
    site = site_it != domain_site_.end() ? site_it->second : "local";

    Cell& cell = cells_[Key(site, domain, adornment)];
    if (cell.samples == 0) {
      if (registry_ != nullptr) {
        obs::Labels base = {{"site", site},
                            {"domain", domain},
                            {"adorn", adornment}};
        auto labeled = [&base](const char* dim) {
          obs::Labels l = {{"dim", dim}};
          l.insert(l.end(), base.begin(), base.end());
          return l;
        };
        const char* help =
            "EWMA of relative observed-vs-estimated DCSM error.";
        cell.gauge_tf =
            registry_->GetOrAddGauge("hermes_dcsm_drift", help, labeled("tf"));
        cell.gauge_ta =
            registry_->GetOrAddGauge("hermes_dcsm_drift", help, labeled("ta"));
        cell.gauge_card = registry_->GetOrAddGauge("hermes_dcsm_drift", help,
                                                   labeled("card"));
      }
    }
    if (cell.samples < options_.min_samples) {
      // Warm-up: seed the EWMA from the trimmed mean (max dropped per
      // dimension once there are two samples) of the window so far. One
      // outlier among the first min_samples observations cannot carry the
      // seed past the threshold by itself.
      cell.warmup.push_back({err_tf, err_ta, err_card});
      for (size_t dim = 0; dim < 3; ++dim) {
        double sum = 0.0, max = cell.warmup[0][dim];
        for (const auto& s : cell.warmup) {
          sum += s[dim];
          max = std::max(max, s[dim]);
        }
        double mean = cell.warmup.size() >= 2
                          ? (sum - max) /
                                static_cast<double>(cell.warmup.size() - 1)
                          : sum;
        if (dim == 0) cell.ewma_tf = mean;
        if (dim == 1) cell.ewma_ta = mean;
        if (dim == 2) cell.ewma_card = mean;
      }
      if (cell.warmup.size() >= options_.min_samples) cell.warmup.clear();
    } else {
      const double a = options_.alpha;
      cell.ewma_tf = a * err_tf + (1.0 - a) * cell.ewma_tf;
      cell.ewma_ta = a * err_ta + (1.0 - a) * cell.ewma_ta;
      cell.ewma_card = a * err_card + (1.0 - a) * cell.ewma_card;
    }
    ++cell.samples;
    ++observations_;

    if (cell.gauge_tf != nullptr) {
      cell.gauge_tf->Set(cell.ewma_tf);
      cell.gauge_ta->Set(cell.ewma_ta);
      cell.gauge_card->Set(cell.ewma_card);
    }

    const bool over =
        cell.samples >= options_.min_samples &&
        (cell.ewma_tf > options_.threshold ||
         cell.ewma_ta > options_.threshold ||
         cell.ewma_card > options_.threshold);
    newly_exceeded = over && !cell.exceeded;
    cell.exceeded = over;
    if (newly_exceeded) ++exceeded_events_;
  }

  if (newly_exceeded) {
    ExceededHook hook;
    {
      std::lock_guard<std::mutex> lock(mu_);
      hook = exceeded_hook_;
    }
    // Outside mu_: the hook takes the plan cache's own locks.
    if (hook != nullptr) hook(site, domain, adornment);
    if (exceeded_counter_ != nullptr) exceeded_counter_->Add(1);
    if (recorder != nullptr) {
      // Tagged query_id 0: drift is a cross-query signal, and keeping it
      // out of per-query streams preserves replay bit-identity.
      obs::FlightEvent ev = obs::FlightEvent::Make(
          obs::FlightEventKind::kDriftExceeded, 0, 0, sim_ms);
      ev.set_site(site);
      ev.set_domain(domain);
      ev.set_detail(adornment);
      ev.value = std::max({err_tf, err_ta, err_card});
      recorder->Emit(ev);
    }
  }
}

DriftReport DriftTracker::Report() const {
  DriftReport report;
  std::lock_guard<std::mutex> lock(mu_);
  report.entries.reserve(cells_.size());
  for (const auto& [key, cell] : cells_) {
    DriftEntry e;
    e.site = std::get<0>(key);
    e.domain = std::get<1>(key);
    e.adornment = std::get<2>(key);
    e.ewma_tf = cell.ewma_tf;
    e.ewma_ta = cell.ewma_ta;
    e.ewma_card = cell.ewma_card;
    e.samples = cell.samples;
    e.exceeded = cell.exceeded;
    report.entries.push_back(std::move(e));
  }
  return report;
}

uint64_t DriftTracker::observations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observations_;
}

uint64_t DriftTracker::exceeded_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return exceeded_events_;
}

}  // namespace hermes::dcsm
