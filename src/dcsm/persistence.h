#ifndef HERMES_DCSM_PERSISTENCE_H_
#define HERMES_DCSM_PERSISTENCE_H_

#include <string>

#include "common/result.h"
#include "dcsm/cost_vector_db.h"

namespace hermes::dcsm {

/// Text serialization of the cost vector database, one record per line:
///
///   <domain>:<function>(<arg>, ...) | Tf | Ta | Card | flags
///
/// where each metric is a decimal number or `-` when unobserved, and
/// `flags` is reserved (currently `.`). Lines starting with `#` and blank
/// lines are ignored on load. Arguments use the mediator language's
/// literal syntax and are re-parsed with the real parser, so values
/// round-trip exactly.
///
/// This supports the paper's operational split: statistics are captured
/// online by the running mediator and summarized *offline* — dump the
/// database at the end of a run, crunch or age it elsewhere, and load it
/// back (or into a fresh mediator) before the next one.
std::string DumpStatistics(const CostVectorDatabase& db);

/// Parses `text` (the DumpStatistics format) and appends every record to
/// `db`. Returns the number of records loaded. Malformed lines abort with
/// ParseError naming the line.
Result<size_t> LoadStatistics(const std::string& text,
                              CostVectorDatabase* db);

}  // namespace hermes::dcsm

#endif  // HERMES_DCSM_PERSISTENCE_H_
