#ifndef HERMES_DCSM_DCSM_H_
#define HERMES_DCSM_DCSM_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "dcsm/cost_vector_db.h"
#include "dcsm/summary_table.h"
#include "domain/domain.h"
#include "lang/ast.h"
#include "obs/metrics.h"

namespace hermes::dcsm {

/// Behavioural switches of the DCSM module.
struct DcsmOptions {
  bool use_native_models = true;  ///< Delegate to domains that ship one.
  bool use_summaries = true;      ///< Consult summary tables.
  bool use_raw_database = true;   ///< Fall back to the cost vector database.
  /// Recency half-life (in logical record ticks) for raw-database
  /// aggregation; 0 disables weighting. (The paper's "giving precedence to
  /// more recent statistics" direction.)
  double recency_halflife = 0.0;
  /// Estimate returned when no statistics exist at all.
  CostVector default_cost = CostVector(250.0, 1000.0, 10.0);
  bool allow_default = true;  ///< False: unknown patterns are NotFound.
  /// Incrementally fold newly recorded executions into any existing
  /// summary tables of their call group, keeping summaries equivalent to
  /// an offline rebuild. Off by default (the paper performs summarization
  /// offline); turn on for long-running mediators that estimate from
  /// summaries while statistics keep flowing.
  bool auto_update_summaries = false;
};

/// Simulated lookup-time parameters, used by the summarization-tradeoff
/// experiments ("the time required for calculating the cost may be
/// prohibitively long" on raw statistics).
struct DcsmCostParams {
  double summary_lookup_ms = 0.05;   ///< Hash probe into a summary table.
  double per_summary_row_ms = 0.01;  ///< Scanning one summary row.
  double per_record_ms = 0.02;       ///< Scanning one raw statistics record.
};

/// One cost answer from the DCSM.
struct CostEstimate {
  CostVector cost;
  /// Where the estimate came from: "native:<domain>", "summary", "raw",
  /// or "default". Missing metrics filled from defaults append "+default".
  std::string source;
  double lookup_ms = 0.0;    ///< Simulated time spent estimating.
  size_t rows_scanned = 0;   ///< Statistics rows examined.
  size_t records_matched = 0;
};

/// Section 6's Domain Cost and Statistics Module.
///
/// DCSM records the cost vector of every executed domain call and answers
/// `cost(pattern)` questions for call patterns whose arguments are
/// constants or `$b`. Estimation follows the Section 6.3 relaxation
/// algorithm: try the most specific constant set first, preferring an
/// exact summary-table lookup, then summary aggregation, then raw-database
/// aggregation, and relax constants to `$b` until something matches.
///
/// Concurrency: guarded by one reader/writer lock — estimation (`Cost`,
/// the optimizer's hot path) takes it shared, ingestion and summary
/// management take it exclusive. Queries do not contend on it per call:
/// the statistics layer buffers observations in the query's CallContext
/// and flushes them in one `RecordBatch` when the query ends, so the lock
/// is taken once per query, not once per domain call. The `database()`
/// accessors are the exception: they expose unguarded internals for
/// wiring- and report-time use only (no concurrent queries in flight).
class Dcsm {
 public:
  explicit Dcsm(DcsmOptions options = {}, DcsmCostParams params = {})
      : options_(options), params_(params) {}

  Dcsm(const Dcsm&) = delete;
  Dcsm& operator=(const Dcsm&) = delete;

  // ---- Statistics capture ------------------------------------------------

  /// Records one executed call (the online statistics-caching path).
  void RecordExecution(const DomainCall& call, const CostVector& cost);
  /// Records a partially-observed execution.
  void Record(CostRecord record);
  /// Records a whole query's buffered observations under one lock
  /// acquisition, in order (see the class comment's flush design).
  void RecordBatch(std::vector<CostRecord> records);

  // ---- Summarization management -------------------------------------------

  /// Builds a lossless summary (all argument positions retained) for every
  /// call group currently in the database.
  Status BuildLosslessSummaries();

  /// Builds a summary for one group with the given retained positions
  /// (lossy when a strict subset). Replaces any same-dims table.
  Status BuildSummary(const CallGroupKey& key, std::vector<size_t> dims);

  /// Builds maximally lossy summaries (all positions dropped) for every
  /// group — the configuration of the paper's Figure 6 "Lossy" column.
  Status BuildFullyLossySummaries();

  /// Inspects a mediator program and builds, for every call group, the
  /// summary retaining only the argument positions that could ever be
  /// instantiated to a specific constant during rewriting (Example 6.2's
  /// dimension-dropping rule).
  Status BuildSummariesForProgram(const lang::Program& program);

  void ClearSummaries() {
    std::unique_lock lock(mu_);
    summaries_.clear();
  }

  /// Argument positions of d:f/arity that some rule in `program` could
  /// instantiate to a constant (the position holds a constant, or a
  /// variable also occurring in that rule's head).
  static std::vector<size_t> InstantiableArgs(const lang::Program& program,
                                              const CallGroupKey& key);

  // ---- Native cost models --------------------------------------------------

  /// Registers `domain` (which must have HasCostModel()) to answer cost
  /// questions for logical domain `name` directly.
  Status RegisterNativeModel(const std::string& name,
                             std::shared_ptr<Domain> domain);

  // ---- Estimation ----------------------------------------------------------

  /// The single `cost` function of Section 6: estimates the cost vector of
  /// a call pattern (`$b` marks bound-but-unknown arguments).
  Result<CostEstimate> Cost(const lang::DomainCallSpec& pattern) const;

  // ---- Introspection ---------------------------------------------------------

  /// Unguarded access to the raw statistics database — wiring/report-time
  /// only; must not race with concurrent Record*/Cost calls.
  const CostVectorDatabase& database() const { return db_; }
  CostVectorDatabase& database() { return db_; }
  DcsmOptions& options() { return options_; }
  const DcsmCostParams& cost_params() const { return params_; }

  /// Summary tables of a group (empty when none built). The pointer is
  /// only stable while no writer (Record*/Build*/Clear) runs.
  const std::vector<SummaryTable>* SummariesFor(const CallGroupKey& key) const;

  size_t TotalSummaryBytes() const;
  size_t TotalSummaryRows() const;

  /// Registers ingestion/estimation counters and live summary-footprint
  /// callback gauges with `registry`. The gauges capture `this`, so the
  /// DCSM must outlive any Expose() call on the registry.
  void BindMetrics(obs::MetricsRegistry& registry);

 private:
  /// Record/BuildSummary bodies without locking; callers hold `mu_`
  /// exclusively (public methods call each other, so the lock cannot be
  /// recursive).
  void RecordUnlocked(CostRecord record);
  Status BuildSummaryUnlocked(const CallGroupKey& key,
                              std::vector<size_t> dims);

  /// Walks the Section 6.3 relaxation lattice for `pattern`: probes the
  /// pattern's summary tables and raw record group once, then tries
  /// kept-constant subsets (most specific first, mask order within a size
  /// class) as bitmasks — no relaxed spec copies. Returns true and fills
  /// `*out` on success; accumulates lookup cost either way. Caller holds
  /// `mu_` (shared).
  bool RelaxAndEstimate(const lang::DomainCallSpec& pattern, CostEstimate* out,
                        double* lookup_ms, size_t* rows_scanned) const;

  /// Tries to answer `pattern` restricted to the kept-constant positions in
  /// `const_mask` (see ArgMask), consulting the pre-located `tables` and
  /// `records` (either may be null). Returns true and fills `*out` on
  /// success; accumulates lookup cost either way.
  bool TryEstimateMasked(const lang::DomainCallSpec& pattern,
                         ArgMask const_mask,
                         const std::vector<SummaryTable>* tables,
                         const std::vector<CostRecord>* records,
                         CostEstimate* out, double* lookup_ms,
                         size_t* rows_scanned) const;

  mutable std::shared_mutex mu_;
  DcsmOptions options_;
  DcsmCostParams params_;
  CostVectorDatabase db_;
  std::map<CallGroupKey, std::vector<SummaryTable>> summaries_;
  std::map<std::string, std::shared_ptr<Domain>> native_models_;

  // Live ingestion/estimation counters (outside mu_; obs counters are
  // internally lock-light, so Record*/Cost bump them without extra locking).
  std::shared_ptr<obs::Counter> records_total_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> estimates_total_ =
      std::make_shared<obs::Counter>();
};

}  // namespace hermes::dcsm

#endif  // HERMES_DCSM_DCSM_H_
