#ifndef HERMES_DCSM_STATS_INTERCEPTOR_H_
#define HERMES_DCSM_STATS_INTERCEPTOR_H_

#include <string>

#include "dcsm/dcsm.h"
#include "domain/pipeline.h"

namespace hermes::dcsm {

/// The statistics layer of the call pipeline: records every successful
/// call's cost vector into the DCSM (the paper's online statistics-caching
/// path, formerly inlined in the executor).
///
/// The recorded call is the call as the layer saw it — stacked above a
/// cache layer it records CIM-wrapper costs (what plan estimation for
/// CIM-redirected plans consumes); stacked below, it would record only
/// actual source calls.
class StatsInterceptor : public CallInterceptor {
 public:
  explicit StatsInterceptor(Dcsm* dcsm) : dcsm_(dcsm) {}

  const std::string& name() const override;

  Result<CallOutput> Intercept(CallContext& ctx, const DomainCall& call,
                               const Next& next) override;

  /// Records one measured cost sample. The interceptor path uses it for
  /// executed domain calls; the executor feeds predicate invocations
  /// (under the pseudo domain "idb") through it as well, so all DCSM
  /// capture flows through the stats layer. When `complete` is false the
  /// Ta/cardinality metrics are marked partially observed.
  ///
  /// With `ctx.buffer_stats` set the sample lands in the context's
  /// per-query buffer (lock-free; the context is query-private) and
  /// reaches the DCSM when `Flush` runs; otherwise it is recorded
  /// directly.
  void RecordSample(CallContext& ctx, const DomainCall& call,
                    const CostVector& cost, bool complete);

  /// Merges the context's buffered samples into the shared DCSM under one
  /// lock acquisition and clears the buffer.
  void Flush(CallContext& ctx);

 private:
  Dcsm* dcsm_;
};

}  // namespace hermes::dcsm

#endif  // HERMES_DCSM_STATS_INTERCEPTOR_H_
