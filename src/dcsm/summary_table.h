#ifndef HERMES_DCSM_SUMMARY_TABLE_H_
#define HERMES_DCSM_SUMMARY_TABLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "dcsm/cost_vector_db.h"

namespace hermes::dcsm {

/// One aggregated row of a summary table: per-metric weighted sums so the
/// row can participate in further (still exact) aggregation, plus the
/// paper's `l` attribute — the number of original records folded in.
struct SummaryRow {
  ValueList dims;  ///< Values of the retained dimension positions.
  double sum_t_first = 0, weight_t_first = 0;
  double sum_t_all = 0, weight_t_all = 0;
  double sum_cardinality = 0, weight_cardinality = 0;
  uint64_t l = 0;

  /// The averaged cost vector of this row.
  CostVector Mean() const {
    return CostVector(weight_t_first > 0 ? sum_t_first / weight_t_first : 0,
                      weight_t_all > 0 ? sum_t_all / weight_t_all : 0,
                      weight_cardinality > 0
                          ? sum_cardinality / weight_cardinality
                          : 0);
  }
};

/// A (possibly lossy) summarization of one call group's statistics
/// (Section 6.2).
///
/// `dims` lists the retained argument positions (0-based). A table
/// retaining every position is a *lossless* summarization: any question the
/// cost estimator can ask gets the same answer as on the raw records. A
/// table that drops positions is *lossy*: calls differing only in dropped
/// positions share rows.
class SummaryTable {
 public:
  SummaryTable(CallGroupKey key, std::vector<size_t> dims)
      : key_(std::move(key)), dims_(std::move(dims)) {
    for (size_t d : dims_) {
      if (d < 64) dims_mask_ |= ArgMask{1} << d;
    }
  }

  /// Builds the summary of `records` retaining the `dims` positions.
  static Result<SummaryTable> Build(const CallGroupKey& key,
                                    const std::vector<CostRecord>& records,
                                    std::vector<size_t> dims);

  /// Folds one more record into the summary (incremental maintenance —
  /// keeps the table equivalent to a full rebuild over the extended record
  /// set). Records of the wrong group are ignored.
  void Fold(const CostRecord& record);

  const CallGroupKey& key() const { return key_; }
  const std::vector<size_t>& dims() const { return dims_; }
  /// Bitmask with bit `d` set for every retained dimension position `d`
  /// (precomputed; the estimator's relaxation loop compares masks instead
  /// of position vectors).
  ArgMask dims_mask() const { return dims_mask_; }
  bool IsLossless() const { return dims_.size() == key_.arity; }

  /// Exact lookup of the row whose dimension values equal `dim_values`
  /// (ordered as `dims()`); nullptr when absent.
  const SummaryRow* Lookup(const ValueList& dim_values) const;

  /// Aggregates over rows matching a call pattern. The pattern's constant
  /// positions must all be retained dimensions of this table (otherwise
  /// the table cannot answer the question and InvalidArgument is
  /// returned). Aggregation weights rows by their per-metric weights.
  Result<Aggregate> EstimateForPattern(
      const lang::DomainCallSpec& pattern) const;

  /// Mask-based aggregation (see ArgMask in cost_vector_db.h): positions
  /// outside `const_mask` act as `$b` even when the pattern holds a
  /// constant there. The caller guarantees the effective constant set is a
  /// subset of `dims()` (compare masks) and that the pattern's group
  /// matches `key()`. Avoids the per-relaxation-step spec copy.
  Result<Aggregate> EstimateMasked(const lang::DomainCallSpec& pattern,
                                   ArgMask const_mask) const;

  /// True when the table's dimensions include every constant position of
  /// `pattern`, i.e. the table can answer for it.
  bool CanAnswer(const lang::DomainCallSpec& pattern) const;

  size_t num_rows() const { return rows_.size(); }
  size_t ApproxBytes() const;

  /// Iterates rows in unspecified order.
  const std::unordered_map<Value, SummaryRow, ValueHash>& rows() const {
    return rows_;
  }

 private:
  CallGroupKey key_;
  std::vector<size_t> dims_;  // sorted ascending
  ArgMask dims_mask_ = 0;     // bit d set for every d in dims_
  // Keyed by Value::List(dim values) for hashing.
  std::unordered_map<Value, SummaryRow, ValueHash> rows_;
};

}  // namespace hermes::dcsm

#endif  // HERMES_DCSM_SUMMARY_TABLE_H_
