#include "dcsm/dcsm.h"

#include <algorithm>

namespace hermes::dcsm {

namespace {

/// Positions holding constants in `pattern`.
std::vector<size_t> ConstantPositions(const lang::DomainCallSpec& pattern) {
  std::vector<size_t> out;
  for (size_t i = 0; i < pattern.args.size(); ++i) {
    if (pattern.args[i].is_constant()) out.push_back(i);
  }
  return out;
}

}  // namespace

void Dcsm::RecordUnlocked(CostRecord record) {
  if (options_.auto_update_summaries) {
    CallGroupKey key{record.call.domain, record.call.function,
                     record.call.args.size()};
    auto it = summaries_.find(key);
    if (it != summaries_.end()) {
      for (SummaryTable& table : it->second) table.Fold(record);
    }
  }
  db_.Record(std::move(record));
}

void Dcsm::Record(CostRecord record) {
  records_total_->Add(1);
  std::unique_lock lock(mu_);
  RecordUnlocked(std::move(record));
}

void Dcsm::RecordBatch(std::vector<CostRecord> records) {
  if (records.empty()) return;
  records_total_->Add(records.size());
  std::unique_lock lock(mu_);
  for (CostRecord& record : records) RecordUnlocked(std::move(record));
}

void Dcsm::RecordExecution(const DomainCall& call, const CostVector& cost) {
  CostRecord record;
  record.call = call;
  record.cost = cost;
  Record(std::move(record));
}

Status Dcsm::BuildLosslessSummaries() {
  std::unique_lock lock(mu_);
  for (const CallGroupKey& key : db_.Groups()) {
    std::vector<size_t> dims(key.arity);
    for (size_t i = 0; i < key.arity; ++i) dims[i] = i;
    HERMES_RETURN_IF_ERROR(BuildSummaryUnlocked(key, std::move(dims)));
  }
  return Status::OK();
}

Status Dcsm::BuildSummary(const CallGroupKey& key, std::vector<size_t> dims) {
  std::unique_lock lock(mu_);
  return BuildSummaryUnlocked(key, std::move(dims));
}

Status Dcsm::BuildSummaryUnlocked(const CallGroupKey& key,
                                  std::vector<size_t> dims) {
  const std::vector<CostRecord>* records = db_.GetGroup(key);
  if (records == nullptr) {
    return Status::NotFound("no statistics for " + key.ToString());
  }
  HERMES_ASSIGN_OR_RETURN(SummaryTable table,
                          SummaryTable::Build(key, *records, std::move(dims)));
  std::vector<SummaryTable>& tables = summaries_[key];
  for (SummaryTable& existing : tables) {
    if (existing.dims() == table.dims()) {
      existing = std::move(table);
      return Status::OK();
    }
  }
  tables.push_back(std::move(table));
  // Keep most-specific (largest dims) first so estimation prefers them.
  std::sort(tables.begin(), tables.end(),
            [](const SummaryTable& a, const SummaryTable& b) {
              return a.dims().size() > b.dims().size();
            });
  return Status::OK();
}

Status Dcsm::BuildFullyLossySummaries() {
  std::unique_lock lock(mu_);
  for (const CallGroupKey& key : db_.Groups()) {
    HERMES_RETURN_IF_ERROR(BuildSummaryUnlocked(key, {}));
  }
  return Status::OK();
}

std::vector<size_t> Dcsm::InstantiableArgs(const lang::Program& program,
                                           const CallGroupKey& key) {
  std::vector<bool> instantiable(key.arity, false);
  for (const lang::Rule& rule : program.rules) {
    // Variables appearing in the rule head can be bound to constants by a
    // query (or a calling rule) during rewriting.
    std::vector<std::string> head_vars = rule.head.Variables();
    for (const lang::Atom& atom : rule.body) {
      if (!atom.is_domain_call() || atom.call.domain != key.domain ||
          atom.call.function != key.function ||
          atom.call.args.size() != key.arity) {
        continue;
      }
      for (size_t i = 0; i < atom.call.args.size(); ++i) {
        const lang::Term& t = atom.call.args[i];
        if (t.is_constant()) {
          instantiable[i] = true;
        } else if (t.is_variable()) {
          for (const std::string& hv : head_vars) {
            if (hv == t.var_name) {
              instantiable[i] = true;
              break;
            }
          }
        }
      }
    }
  }
  std::vector<size_t> out;
  for (size_t i = 0; i < instantiable.size(); ++i) {
    if (instantiable[i]) out.push_back(i);
  }
  return out;
}

Status Dcsm::BuildSummariesForProgram(const lang::Program& program) {
  std::unique_lock lock(mu_);
  for (const CallGroupKey& key : db_.Groups()) {
    HERMES_RETURN_IF_ERROR(
        BuildSummaryUnlocked(key, InstantiableArgs(program, key)));
  }
  return Status::OK();
}

Status Dcsm::RegisterNativeModel(const std::string& name,
                                 std::shared_ptr<Domain> domain) {
  if (domain == nullptr || !domain->HasCostModel()) {
    return Status::InvalidArgument("domain '" + name +
                                   "' does not provide a cost model");
  }
  std::unique_lock lock(mu_);
  native_models_[name] = std::move(domain);
  return Status::OK();
}

const std::vector<SummaryTable>* Dcsm::SummariesFor(
    const CallGroupKey& key) const {
  std::shared_lock lock(mu_);
  auto it = summaries_.find(key);
  return it == summaries_.end() ? nullptr : &it->second;
}

size_t Dcsm::TotalSummaryBytes() const {
  std::shared_lock lock(mu_);
  size_t total = 0;
  for (const auto& [key, tables] : summaries_) {
    for (const SummaryTable& table : tables) total += table.ApproxBytes();
  }
  return total;
}

size_t Dcsm::TotalSummaryRows() const {
  std::shared_lock lock(mu_);
  size_t total = 0;
  for (const auto& [key, tables] : summaries_) {
    for (const SummaryTable& table : tables) total += table.num_rows();
  }
  return total;
}

void Dcsm::BindMetrics(obs::MetricsRegistry& registry) {
  registry.Register("hermes_dcsm_records_total",
                    "Cost records ingested into the statistics database", {},
                    records_total_);
  registry.Register("hermes_dcsm_estimates_total",
                    "Cost estimates answered for the optimizer", {},
                    estimates_total_);
  registry.RegisterCallbackGauge(
      "hermes_dcsm_summary_rows", "Rows held across all summary tables", {},
      [this] { return static_cast<double>(TotalSummaryRows()); });
  registry.RegisterCallbackGauge(
      "hermes_dcsm_summary_bytes",
      "Approximate bytes held across all summary tables", {},
      [this] { return static_cast<double>(TotalSummaryBytes()); });
}

bool Dcsm::TryEstimateMasked(const lang::DomainCallSpec& pattern,
                             ArgMask const_mask,
                             const std::vector<SummaryTable>* tables,
                             const std::vector<CostRecord>* records,
                             CostEstimate* out, double* lookup_ms,
                             size_t* rows_scanned) const {
  if (tables != nullptr) {
    // Pass 1: a table whose dims equal the kept-constant set — one probe.
    for (const SummaryTable& table : *tables) {
      if (table.dims_mask() != const_mask) continue;
      *lookup_ms += params_.summary_lookup_ms;
      ValueList dim_values;
      dim_values.reserve(table.dims().size());
      for (size_t d : table.dims()) {
        dim_values.push_back(pattern.args[d].constant);
      }
      const SummaryRow* row = table.Lookup(dim_values);
      if (row != nullptr) {
        out->cost = row->Mean();
        out->source = "summary";
        out->records_matched = row->l;
        return true;
      }
    }
    // Pass 2: the most specific table that can answer (kept constants all
    // retained dimensions), via aggregation. Tables are sorted
    // most-specific first.
    for (const SummaryTable& table : *tables) {
      if (table.dims_mask() == const_mask ||
          (const_mask & ~table.dims_mask()) != 0) {
        continue;
      }
      Result<Aggregate> agg = table.EstimateMasked(pattern, const_mask);
      if (agg.ok()) {
        *lookup_ms += params_.per_summary_row_ms *
                      static_cast<double>(agg->rows_scanned);
        *rows_scanned += agg->rows_scanned;
        out->cost = agg->cost;
        out->source = "summary";
        out->records_matched = agg->matched;
        return true;
      }
      *lookup_ms += params_.per_summary_row_ms *
                    static_cast<double>(table.num_rows());
      *rows_scanned += table.num_rows();
    }
  }

  if (records != nullptr) {
    Result<Aggregate> agg = db_.EstimateGroup(*records, pattern, const_mask,
                                              options_.recency_halflife);
    if (agg.ok()) {
      *lookup_ms +=
          params_.per_record_ms * static_cast<double>(agg->rows_scanned);
      *rows_scanned += agg->rows_scanned;
      out->cost = agg->cost;
      out->source = "raw";
      out->records_matched = agg->matched;
      return true;
    }
    *lookup_ms += params_.per_record_ms * static_cast<double>(records->size());
    *rows_scanned += records->size();
  }
  return false;
}

bool Dcsm::RelaxAndEstimate(const lang::DomainCallSpec& pattern,
                            CostEstimate* out, double* lookup_ms,
                            size_t* rows_scanned) const {
  // One probe each for the pattern's summary tables and raw record group;
  // the key (and thus both probes) is invariant under relaxation.
  CallGroupKey key{pattern.domain, pattern.function, pattern.args.size()};
  const std::vector<SummaryTable>* tables = nullptr;
  if (options_.use_summaries) {
    auto it = summaries_.find(key);
    if (it != summaries_.end()) tables = &it->second;
  }
  const std::vector<CostRecord>* records =
      options_.use_raw_database ? db_.GetGroup(key) : nullptr;
  if (tables == nullptr && records == nullptr) return false;

  std::vector<size_t> constants = ConstantPositions(pattern);
  ArgMask full_mask = 0;
  for (size_t p : constants) {
    if (p < 64) full_mask |= ArgMask{1} << p;
  }

  // Relaxation lattice: subsets of the constant positions, most specific
  // first; within a size class, deterministic (mask) order. Calls with
  // absurdly many constant arguments fall straight through to the
  // fully-relaxed pattern rather than enumerating 2^n subsets.
  const size_t n = constants.size();
  if (n > 16) {
    return TryEstimateMasked(pattern, full_mask, tables, records, out,
                             lookup_ms, rows_scanned) ||
           TryEstimateMasked(pattern, 0, tables, records, out, lookup_ms,
                             rows_scanned);
  }
  for (size_t keep = n + 1; keep-- > 0;) {
    for (uint64_t mask = 0; mask < (1ULL << n); ++mask) {
      if (static_cast<size_t>(__builtin_popcountll(mask)) != keep) continue;
      ArgMask const_mask = 0;
      for (size_t b = 0; b < n; ++b) {
        if ((mask & (1ULL << b)) && constants[b] < 64) {
          const_mask |= ArgMask{1} << constants[b];
        }
      }
      if (TryEstimateMasked(pattern, const_mask, tables, records, out,
                            lookup_ms, rows_scanned)) {
        return true;
      }
    }
  }
  return false;
}

Result<CostEstimate> Dcsm::Cost(const lang::DomainCallSpec& pattern) const {
  estimates_total_->Add(1);
  std::shared_lock lock(mu_);
  for (const lang::Term& arg : pattern.args) {
    if (arg.is_variable()) {
      return Status::InvalidArgument(
          "cost patterns may contain only constants and '$b': " +
          pattern.ToString());
    }
  }

  // Native cost models take precedence (Section 6: "the estimates for
  // calls to these domains will be directed to their respective domains").
  if (options_.use_native_models) {
    auto it = native_models_.find(pattern.domain);
    if (it != native_models_.end()) {
      Result<CostVector> native = it->second->EstimateCost(pattern);
      if (native.ok()) {
        CostEstimate est;
        est.cost = *native;
        est.source = "native:" + pattern.domain;
        est.lookup_ms = params_.summary_lookup_ms;
        return est;
      }
    }
  }

  CostEstimate est;
  double lookup_ms = 0.0;
  size_t rows_scanned = 0;
  bool found = RelaxAndEstimate(pattern, &est, &lookup_ms, &rows_scanned);

  // A CIM wrapper with no statistics of its own behaves, in the worst case
  // (a cache miss), like the underlying domain plus negligible overhead —
  // so fall back to the wrapped domain's statistics before giving up.
  if (!found && pattern.domain.rfind("cim_", 0) == 0) {
    lang::DomainCallSpec underlying = pattern;
    underlying.domain = pattern.domain.substr(4);
    found = RelaxAndEstimate(underlying, &est, &lookup_ms, &rows_scanned);
    if (found) est.source += "+cim-fallback";
  }

  est.lookup_ms = lookup_ms;
  est.rows_scanned = rows_scanned;
  if (!found) {
    if (!options_.allow_default) {
      return Status::NotFound("no statistics available for " +
                              pattern.ToString());
    }
    est.cost = options_.default_cost;
    est.source = "default";
  }
  return est;
}

}  // namespace hermes::dcsm
