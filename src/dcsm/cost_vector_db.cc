#include "dcsm/cost_vector_db.h"

#include <cmath>

namespace hermes::dcsm {

void CostVectorDatabase::Record(CostRecord record) {
  record.record_time = clock_.Next();
  CallGroupKey key{record.call.domain, record.call.function,
                   record.call.args.size()};
  groups_[key].push_back(std::move(record));
  ++total_records_;
}

void CostVectorDatabase::RecordExecution(const DomainCall& call,
                                         const CostVector& cost) {
  CostRecord record;
  record.call = call;
  record.cost = cost;
  Record(std::move(record));
}

const std::vector<CostRecord>* CostVectorDatabase::GetGroup(
    const CallGroupKey& key) const {
  auto it = groups_.find(key);
  return it == groups_.end() ? nullptr : &it->second;
}

Result<Aggregate> CostVectorDatabase::Estimate(
    const lang::DomainCallSpec& pattern, double recency_halflife) const {
  for (const lang::Term& arg : pattern.args) {
    if (arg.is_variable()) {
      return Status::InvalidArgument(
          "cost patterns may contain only constants and '$b': " +
          pattern.ToString());
    }
  }
  CallGroupKey key{pattern.domain, pattern.function, pattern.args.size()};
  const std::vector<CostRecord>* records = GetGroup(key);
  if (records == nullptr) {
    return Status::NotFound("no statistics for " + key.ToString());
  }

  Aggregate agg;
  double w_tf = 0, w_ta = 0, w_card = 0;
  double sum_tf = 0, sum_ta = 0, sum_card = 0;
  uint64_t current = clock_.last();

  for (const CostRecord& record : *records) {
    ++agg.rows_scanned;
    bool matches = true;
    for (size_t i = 0; i < pattern.args.size(); ++i) {
      const lang::Term& t = pattern.args[i];
      if (t.is_constant() && t.constant != record.call.args[i]) {
        matches = false;
        break;
      }
    }
    if (!matches) continue;
    ++agg.matched;
    double weight = 1.0;
    if (recency_halflife > 0.0) {
      double age = static_cast<double>(current - record.record_time);
      weight = std::pow(0.5, age / recency_halflife);
    }
    if (record.has_t_first) {
      sum_tf += weight * record.cost.t_first_ms;
      w_tf += weight;
    }
    if (record.has_t_all) {
      sum_ta += weight * record.cost.t_all_ms;
      w_ta += weight;
    }
    if (record.has_cardinality) {
      sum_card += weight * record.cost.cardinality;
      w_card += weight;
    }
  }

  if (agg.matched == 0) {
    return Status::NotFound("no statistics matching " + pattern.ToString());
  }
  if (w_tf > 0) {
    agg.cost.t_first_ms = sum_tf / w_tf;
    agg.has_t_first = true;
  }
  if (w_ta > 0) {
    agg.cost.t_all_ms = sum_ta / w_ta;
    agg.has_t_all = true;
  }
  if (w_card > 0) {
    agg.cost.cardinality = sum_card / w_card;
    agg.has_cardinality = true;
  }
  return agg;
}

std::vector<CallGroupKey> CostVectorDatabase::Groups() const {
  std::vector<CallGroupKey> out;
  out.reserve(groups_.size());
  for (const auto& [key, records] : groups_) out.push_back(key);
  return out;
}

size_t CostVectorDatabase::ApproxBytes() const {
  size_t total = 0;
  for (const auto& [key, records] : groups_) {
    total += key.domain.size() + key.function.size() + 16;
    for (const CostRecord& record : records) {
      // Cost vector (3 doubles) + flags + timestamp + argument payload.
      total += 3 * 8 + 4 + 8;
      for (const Value& v : record.call.args) total += v.ApproxByteSize();
    }
  }
  return total;
}

void CostVectorDatabase::Clear() {
  groups_.clear();
  total_records_ = 0;
}

}  // namespace hermes::dcsm
