#include "dcsm/cost_vector_db.h"

#include <algorithm>
#include <cmath>

namespace hermes::dcsm {

CostVectorDatabase::~CostVectorDatabase() { FreeGroups(); }

void CostVectorDatabase::FreeGroups() {
  groups_.ForEach([](Group& group) {
    delete &group;
    return true;
  });
  groups_.Clear();
}

CostVectorDatabase::Group* CostVectorDatabase::FindGroup(
    const CallGroupKey& key, size_t hash) const {
  return groups_.Find(hash,
                      [&](const Group& group) { return group.key == key; });
}

void CostVectorDatabase::Record(CostRecord record) {
  record.record_time = clock_.Next();
  CallGroupKey key{record.call.domain, record.call.function,
                   record.call.args.size()};
  const size_t hash = key.Hash();
  Group* group = FindGroup(key, hash);
  if (group == nullptr) {
    group = new Group;
    group->key = std::move(key);
    groups_.Insert(group, hash);
  }
  group->records.push_back(std::move(record));
  ++total_records_;
}

void CostVectorDatabase::RecordExecution(const DomainCall& call,
                                         const CostVector& cost) {
  CostRecord record;
  record.call = call;
  record.cost = cost;
  Record(std::move(record));
}

const std::vector<CostRecord>* CostVectorDatabase::GetGroup(
    const CallGroupKey& key) const {
  const Group* group = FindGroup(key, key.Hash());
  return group == nullptr ? nullptr : &group->records;
}

Result<Aggregate> CostVectorDatabase::Estimate(
    const lang::DomainCallSpec& pattern, double recency_halflife) const {
  for (const lang::Term& arg : pattern.args) {
    if (arg.is_variable()) {
      return Status::InvalidArgument(
          "cost patterns may contain only constants and '$b': " +
          pattern.ToString());
    }
  }
  CallGroupKey key{pattern.domain, pattern.function, pattern.args.size()};
  const std::vector<CostRecord>* records = GetGroup(key);
  if (records == nullptr) {
    return Status::NotFound("no statistics for " + key.ToString());
  }
  return EstimateGroup(*records, pattern, kAllArgs, recency_halflife);
}

Result<Aggregate> CostVectorDatabase::EstimateGroup(
    const std::vector<CostRecord>& records,
    const lang::DomainCallSpec& pattern, ArgMask const_mask,
    double recency_halflife) const {
  Aggregate agg;
  double w_tf = 0, w_ta = 0, w_card = 0;
  double sum_tf = 0, sum_ta = 0, sum_card = 0;
  uint64_t current = clock_.last();

  for (const CostRecord& record : records) {
    ++agg.rows_scanned;
    bool matches = true;
    for (size_t i = 0; i < pattern.args.size(); ++i) {
      if (i < 64 && (const_mask & (ArgMask{1} << i)) == 0) continue;
      const lang::Term& t = pattern.args[i];
      if (t.is_constant() && t.constant != record.call.args[i]) {
        matches = false;
        break;
      }
    }
    if (!matches) continue;
    ++agg.matched;
    double weight = 1.0;
    if (recency_halflife > 0.0) {
      double age = static_cast<double>(current - record.record_time);
      weight = std::pow(0.5, age / recency_halflife);
    }
    if (record.has_t_first) {
      sum_tf += weight * record.cost.t_first_ms;
      w_tf += weight;
    }
    if (record.has_t_all) {
      sum_ta += weight * record.cost.t_all_ms;
      w_ta += weight;
    }
    if (record.has_cardinality) {
      sum_card += weight * record.cost.cardinality;
      w_card += weight;
    }
  }

  if (agg.matched == 0) {
    return Status::NotFound("no statistics matching " + pattern.ToString());
  }
  if (w_tf > 0) {
    agg.cost.t_first_ms = sum_tf / w_tf;
    agg.has_t_first = true;
  }
  if (w_ta > 0) {
    agg.cost.t_all_ms = sum_ta / w_ta;
    agg.has_t_all = true;
  }
  if (w_card > 0) {
    agg.cost.cardinality = sum_card / w_card;
    agg.has_cardinality = true;
  }
  return agg;
}

std::vector<CallGroupKey> CostVectorDatabase::Groups() const {
  std::vector<CallGroupKey> out;
  out.reserve(groups_.size());
  groups_.ForEach([&](const Group& group) {
    out.push_back(group.key);
    return true;
  });
  std::sort(out.begin(), out.end());
  return out;
}

size_t CostVectorDatabase::ApproxBytes() const {
  size_t total = 0;
  groups_.ForEach([&](const Group& group) {
    total += group.key.domain.size() + group.key.function.size() + 16;
    for (const CostRecord& record : group.records) {
      // Cost vector (3 doubles) + flags + timestamp + argument payload.
      total += 3 * 8 + 4 + 8;
      for (const Value& v : record.call.args) total += v.ApproxByteSize();
    }
    return true;
  });
  return total;
}

void CostVectorDatabase::Clear() {
  FreeGroups();
  total_records_ = 0;
}

}  // namespace hermes::dcsm
