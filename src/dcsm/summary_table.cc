#include "dcsm/summary_table.h"

#include <algorithm>

namespace hermes::dcsm {

Result<SummaryTable> SummaryTable::Build(
    const CallGroupKey& key, const std::vector<CostRecord>& records,
    std::vector<size_t> dims) {
  std::sort(dims.begin(), dims.end());
  for (size_t d : dims) {
    if (d >= key.arity) {
      return Status::InvalidArgument(
          "dimension position " + std::to_string(d) +
          " out of range for " + key.ToString());
    }
  }
  SummaryTable table(key, dims);
  for (const CostRecord& record : records) table.Fold(record);
  return table;
}

void SummaryTable::Fold(const CostRecord& record) {
  if (record.call.domain != key_.domain ||
      record.call.function != key_.function ||
      record.call.args.size() != key_.arity) {
    return;
  }
  ValueList dim_values;
  dim_values.reserve(dims_.size());
  for (size_t d : dims_) dim_values.push_back(record.call.args[d]);
  Value row_key = Value::List(dim_values);
  SummaryRow& row = rows_[row_key];
  if (row.l == 0) row.dims = std::move(dim_values);
  ++row.l;
  if (record.has_t_first) {
    row.sum_t_first += record.cost.t_first_ms;
    row.weight_t_first += 1.0;
  }
  if (record.has_t_all) {
    row.sum_t_all += record.cost.t_all_ms;
    row.weight_t_all += 1.0;
  }
  if (record.has_cardinality) {
    row.sum_cardinality += record.cost.cardinality;
    row.weight_cardinality += 1.0;
  }
}

const SummaryRow* SummaryTable::Lookup(const ValueList& dim_values) const {
  auto it = rows_.find(Value::List(dim_values));
  return it == rows_.end() ? nullptr : &it->second;
}

bool SummaryTable::CanAnswer(const lang::DomainCallSpec& pattern) const {
  if (pattern.domain != key_.domain || pattern.function != key_.function ||
      pattern.args.size() != key_.arity) {
    return false;
  }
  for (size_t i = 0; i < pattern.args.size(); ++i) {
    if (pattern.args[i].is_constant() &&
        std::find(dims_.begin(), dims_.end(), i) == dims_.end()) {
      return false;  // constant at a dropped position
    }
  }
  return true;
}

Result<Aggregate> SummaryTable::EstimateForPattern(
    const lang::DomainCallSpec& pattern) const {
  if (!CanAnswer(pattern)) {
    return Status::InvalidArgument("summary table " + key_.ToString() +
                                   " cannot answer " + pattern.ToString());
  }
  return EstimateMasked(pattern, kAllArgs);
}

Result<Aggregate> SummaryTable::EstimateMasked(
    const lang::DomainCallSpec& pattern, ArgMask const_mask) const {
  Aggregate agg;
  double sum_tf = 0, w_tf = 0, sum_ta = 0, w_ta = 0, sum_card = 0, w_card = 0;
  for (const auto& [row_key, row] : rows_) {
    ++agg.rows_scanned;
    bool matches = true;
    for (size_t k = 0; k < dims_.size(); ++k) {
      const size_t d = dims_[k];
      if (d < 64 && (const_mask & (ArgMask{1} << d)) == 0) continue;
      const lang::Term& t = pattern.args[d];
      if (t.is_constant() && t.constant != row.dims[k]) {
        matches = false;
        break;
      }
    }
    if (!matches) continue;
    agg.matched += row.l;
    sum_tf += row.sum_t_first;
    w_tf += row.weight_t_first;
    sum_ta += row.sum_t_all;
    w_ta += row.weight_t_all;
    sum_card += row.sum_cardinality;
    w_card += row.weight_cardinality;
  }
  if (agg.matched == 0) {
    return Status::NotFound("no summary rows matching " + pattern.ToString());
  }
  if (w_tf > 0) {
    agg.cost.t_first_ms = sum_tf / w_tf;
    agg.has_t_first = true;
  }
  if (w_ta > 0) {
    agg.cost.t_all_ms = sum_ta / w_ta;
    agg.has_t_all = true;
  }
  if (w_card > 0) {
    agg.cost.cardinality = sum_card / w_card;
    agg.has_cardinality = true;
  }
  return agg;
}

size_t SummaryTable::ApproxBytes() const {
  size_t total = key_.domain.size() + key_.function.size() + 16 +
                 dims_.size() * 8;
  for (const auto& [row_key, row] : rows_) {
    total += 6 * 8 + 8;  // sums/weights + l
    for (const Value& v : row.dims) total += v.ApproxByteSize();
  }
  return total;
}

}  // namespace hermes::dcsm
