#include "dcsm/stats_interceptor.h"

namespace hermes::dcsm {

const std::string& StatsInterceptor::name() const {
  static const std::string kName = "stats";
  return kName;
}

Result<CallOutput> StatsInterceptor::Intercept(CallContext& ctx,
                                               const DomainCall& call,
                                               const Next& next) {
  Result<CallOutput> run = next(ctx, call);
  if (run.ok()) {
    RecordSample(ctx, call,
                 CostVector(run->first_ms, run->all_ms,
                            static_cast<double>(run->answers.size())),
                 run->complete);
  }
  return run;
}

void StatsInterceptor::RecordSample(CallContext& ctx, const DomainCall& call,
                                    const CostVector& cost, bool complete) {
  if (dcsm_ == nullptr) return;
  if (ctx.buffer_stats) {
    ctx.pending_stats.push_back({call, cost, complete});
  } else {
    CostRecord record;
    record.call = call;
    record.cost = cost;
    record.has_t_all = complete;
    record.has_cardinality = complete;
    dcsm_->Record(std::move(record));
  }
  ++ctx.metrics.stats_records;
}

void StatsInterceptor::Flush(CallContext& ctx) {
  if (ctx.pending_stats.empty()) return;
  if (dcsm_ == nullptr) {
    ctx.pending_stats.clear();
    return;
  }
  std::vector<CostRecord> batch;
  batch.reserve(ctx.pending_stats.size());
  for (PendingCostSample& sample : ctx.pending_stats) {
    CostRecord record;
    record.call = std::move(sample.call);
    record.cost = sample.cost;
    record.has_t_all = sample.complete;
    record.has_cardinality = sample.complete;
    batch.push_back(std::move(record));
  }
  ctx.pending_stats.clear();
  dcsm_->RecordBatch(std::move(batch));
}

}  // namespace hermes::dcsm
