#include "dcsm/stats_interceptor.h"

namespace hermes::dcsm {

const std::string& StatsInterceptor::name() const {
  static const std::string kName = "stats";
  return kName;
}

Result<CallOutput> StatsInterceptor::Intercept(CallContext& ctx,
                                               const DomainCall& call,
                                               const Next& next) {
  Result<CallOutput> run = next(ctx, call);
  if (run.ok()) {
    RecordSample(ctx, call,
                 CostVector(run->first_ms, run->all_ms,
                            static_cast<double>(run->answers.size())),
                 run->complete);
  }
  return run;
}

void StatsInterceptor::RecordSample(CallContext& ctx, const DomainCall& call,
                                    const CostVector& cost, bool complete) {
  if (dcsm_ == nullptr) return;
  CostRecord record;
  record.call = call;
  record.cost = cost;
  record.has_t_all = complete;
  record.has_cardinality = complete;
  dcsm_->Record(std::move(record));
  ++ctx.metrics.stats_records;
}

}  // namespace hermes::dcsm
