#include "dcsm/persistence.h"

#include <cinttypes>
#include <cstdio>

#include "common/strings.h"
#include "lang/parser.h"

namespace hermes::dcsm {

namespace {

void AppendMetric(std::string* out, bool present, double value) {
  if (!present) {
    *out += "-";
    return;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

Result<std::pair<bool, double>> ParseMetric(const std::string& field,
                                            size_t line_no) {
  std::string trimmed = TrimString(field);
  if (trimmed == "-") return std::make_pair(false, 0.0);
  char* end = nullptr;
  double value = std::strtod(trimmed.c_str(), &end);
  if (end == nullptr || *end != '\0' || trimmed.empty()) {
    return Status::ParseError("bad metric '" + trimmed + "' on line " +
                              std::to_string(line_no));
  }
  return std::make_pair(true, value);
}

}  // namespace

std::string DumpStatistics(const CostVectorDatabase& db) {
  std::string out =
      "# hermes cost-vector database dump\n"
      "# call | Tf_ms | Ta_ms | Card | flags\n";
  for (const CallGroupKey& key : db.Groups()) {
    const std::vector<CostRecord>* records = db.GetGroup(key);
    if (records == nullptr) continue;
    for (const CostRecord& record : *records) {
      out += record.call.ToString();
      out += " | ";
      AppendMetric(&out, record.has_t_first, record.cost.t_first_ms);
      out += " | ";
      AppendMetric(&out, record.has_t_all, record.cost.t_all_ms);
      out += " | ";
      AppendMetric(&out, record.has_cardinality, record.cost.cardinality);
      out += " | .\n";
    }
  }
  return out;
}

Result<size_t> LoadStatistics(const std::string& text,
                              CostVectorDatabase* db) {
  size_t loaded = 0;
  size_t line_no = 0;
  for (const std::string& raw_line : SplitString(text, '\n')) {
    ++line_no;
    std::string line = TrimString(raw_line);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = SplitString(line, '|');
    if (fields.size() != 5) {
      return Status::ParseError("expected 5 '|'-separated fields on line " +
                                std::to_string(line_no));
    }
    Result<lang::DomainCallSpec> spec =
        lang::Parser::ParseCallPattern(TrimString(fields[0]));
    if (!spec.ok()) {
      return Status::ParseError("bad call on line " +
                                std::to_string(line_no) + ": " +
                                spec.status().message());
    }
    Result<DomainCall> call = DomainCall::FromSpec(*spec);
    if (!call.ok()) {
      return Status::ParseError("non-ground call on line " +
                                std::to_string(line_no));
    }
    HERMES_ASSIGN_OR_RETURN(auto tf, ParseMetric(fields[1], line_no));
    HERMES_ASSIGN_OR_RETURN(auto ta, ParseMetric(fields[2], line_no));
    HERMES_ASSIGN_OR_RETURN(auto card, ParseMetric(fields[3], line_no));

    CostRecord record;
    record.call = std::move(call).value();
    record.has_t_first = tf.first;
    record.cost.t_first_ms = tf.second;
    record.has_t_all = ta.first;
    record.cost.t_all_ms = ta.second;
    record.has_cardinality = card.first;
    record.cost.cardinality = card.second;
    db->Record(std::move(record));
    ++loaded;
  }
  return loaded;
}

}  // namespace hermes::dcsm
