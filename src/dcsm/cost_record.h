#ifndef HERMES_DCSM_COST_RECORD_H_
#define HERMES_DCSM_COST_RECORD_H_

#include <cstdint>
#include <string>

#include "domain/call.h"
#include "domain/cost.h"

namespace hermes::dcsm {

/// One row of the cost vector database (Section 6.1): the statistics of a
/// single executed domain call.
///
/// Some metrics may be missing — "all answers may not have been obtained
/// (e.g., pruning may have been applied, or the mediator may have been
/// working in interactive mode and the user stopped the query execution)".
struct CostRecord {
  DomainCall call;
  CostVector cost;
  bool has_t_first = true;
  bool has_t_all = true;
  bool has_cardinality = true;
  uint64_t record_time = 0;  ///< Logical timestamp of recording.

  std::string ToString() const {
    std::string out = call.ToString() + " -> " + cost.ToString();
    if (!has_t_first) out += " (Tf missing)";
    if (!has_t_all) out += " (Ta missing)";
    if (!has_cardinality) out += " (Card missing)";
    return out;
  }
};

}  // namespace hermes::dcsm

#endif  // HERMES_DCSM_COST_RECORD_H_
