#ifndef HERMES_DCSM_DRIFT_H_
#define HERMES_DCSM_DRIFT_H_

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "dcsm/dcsm.h"
#include "domain/cost.h"
#include "lang/ast.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace hermes::dcsm {

/// Tuning of the drift EWMA (see DESIGN.md "Diagnostics & drift").
struct DriftOptions {
  /// EWMA smoothing factor: err_ewma <- alpha*err + (1-alpha)*err_ewma.
  double alpha = 0.2;
  /// Relative-error level at which a group is flagged as drifted (1.0 =
  /// the observation is 100% away from the estimate, sustained).
  double threshold = 1.0;
  /// EWMA warm-up: groups with fewer samples are never flagged, and the
  /// EWMA seeds from the *trimmed mean* (max sample dropped, per
  /// dimension) of the first min_samples observations — one outlier in
  /// the warm-up window cannot trip `drift_exceeded` on its own.
  uint64_t min_samples = 3;
};

/// Drift state of one (site, domain, adornment) group.
struct DriftEntry {
  std::string site;
  std::string domain;     ///< Logical domain ("video", not "cim_video").
  std::string adornment;  ///< 'c' per constant arg, 'b' per bound variable.
  double ewma_tf = 0.0;   ///< EWMA of relative T_first error.
  double ewma_ta = 0.0;   ///< EWMA of relative T_all error.
  double ewma_card = 0.0; ///< EWMA of relative cardinality error.
  uint64_t samples = 0;
  bool exceeded = false;  ///< Currently past threshold on some dimension.

  std::string ToString() const;
};

/// Point-in-time view of every tracked group — the hook ROADMAP item 2's
/// plan-cache invalidation consumes ("this plan's estimates went stale").
struct DriftReport {
  std::vector<DriftEntry> entries;

  /// Entries currently past the drift threshold.
  std::vector<DriftEntry> Exceeded() const;
  std::string ToString() const;
};

/// Tracks observed-vs-estimated [Tf Ta card] error per (site, domain,
/// adornment) group as EWMA gauges. DomainCallOp feeds it one observation
/// per successful call (when diagnostics are enabled); estimates come from
/// the same `Dcsm::Cost` lookup EXPLAIN prints, taken *before* this
/// query's own samples are flushed — so drift measures how wrong the
/// planner's knowledge was, not how fast it converges afterwards.
///
/// Thread-safe: one mutex over the group map. Calls through it are
/// per-successful-call but the critical section is a few arithmetic ops.
class DriftTracker {
 public:
  explicit DriftTracker(const Dcsm* dcsm, DriftOptions options = {});

  /// Wiring-time (not thread-safe vs. Observe): names the site a logical
  /// domain lives on, for the report's / gauges' `site` label.
  void SetSite(const std::string& domain, const std::string& site);

  /// Registers `hermes_dcsm_drift{dim,site,domain,adorn}` gauges lazily as
  /// groups appear, plus `hermes_dcsm_drift_exceeded_total`.
  void BindMetrics(std::shared_ptr<obs::MetricsRegistry> registry);

  /// Called (outside the tracker's lock — it may take its own) each time a
  /// (site, domain, adornment) group newly crosses the threshold. The plan
  /// cache hangs its invalidation here.
  using ExceededHook = std::function<void(
      const std::string& site, const std::string& domain,
      const std::string& adornment)>;
  void set_exceeded_hook(ExceededHook hook);

  /// Feeds one successful call: `pattern` is the DCSM estimation pattern
  /// (constants kept, runtime-bound variables as `$b`), `adornment` its
  /// arg shape, `observed` the measured [Tf Ta card]. Estimates whose only
  /// source is the DCSM default are skipped — error against a placeholder
  /// is noise, not drift. Emits a `drift_exceeded` flight event (tagged
  /// query_id 0, so per-query event streams stay deterministic) when a
  /// group first crosses the threshold.
  void Observe(const lang::DomainCallSpec& pattern,
               const std::string& adornment, const CostVector& observed,
               double sim_ms, obs::FlightRecorder* recorder);

  DriftReport Report() const;

  uint64_t observations() const;
  uint64_t exceeded_events() const;

 private:
  struct Cell {
    double ewma_tf = 0.0;
    double ewma_ta = 0.0;
    double ewma_card = 0.0;
    uint64_t samples = 0;
    bool exceeded = false;
    /// First min_samples observations ([tf ta card] errors); the EWMA
    /// seeds from their trimmed mean, then the buffer is dropped.
    std::vector<std::array<double, 3>> warmup;
    std::shared_ptr<obs::Gauge> gauge_tf;
    std::shared_ptr<obs::Gauge> gauge_ta;
    std::shared_ptr<obs::Gauge> gauge_card;
  };
  using Key = std::tuple<std::string, std::string, std::string>;

  const Dcsm* dcsm_;
  DriftOptions options_;

  mutable std::mutex mu_;
  std::map<Key, Cell> cells_;
  std::map<std::string, std::string> domain_site_;
  uint64_t observations_ = 0;
  uint64_t exceeded_events_ = 0;

  std::shared_ptr<obs::MetricsRegistry> registry_;
  std::shared_ptr<obs::Counter> exceeded_counter_;
  ExceededHook exceeded_hook_;
};

}  // namespace hermes::dcsm

#endif  // HERMES_DCSM_DRIFT_H_
