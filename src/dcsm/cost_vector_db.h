#ifndef HERMES_DCSM_COST_VECTOR_DB_H_
#define HERMES_DCSM_COST_VECTOR_DB_H_

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "common/clock.h"
#include "common/intrusive_map.h"
#include "common/result.h"
#include "dcsm/cost_record.h"
#include "lang/ast.h"

namespace hermes::dcsm {

/// Identifies one statistics table: all records of calls to a given
/// domain function at a given arity.
struct CallGroupKey {
  std::string domain;
  std::string function;
  size_t arity = 0;

  bool operator<(const CallGroupKey& other) const {
    return std::tie(domain, function, arity) <
           std::tie(other.domain, other.function, other.arity);
  }
  bool operator==(const CallGroupKey& other) const {
    return domain == other.domain && function == other.function &&
           arity == other.arity;
  }
  /// Hash over all three components, for hashed group indexes.
  size_t Hash() const {
    size_t h = std::hash<std::string>{}(domain);
    h ^= std::hash<std::string>{}(function) + 0x9e3779b97f4a7c15ULL +
         (h << 6) + (h >> 2);
    h ^= arity + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  }
  std::string ToString() const {
    return domain + ":" + function + "/" + std::to_string(arity);
  }
};

/// Result of aggregating statistics records for a call pattern.
struct Aggregate {
  CostVector cost;
  size_t matched = 0;        ///< Records (or summarized originals) matched.
  size_t rows_scanned = 0;   ///< Rows examined to compute the aggregate.
  bool has_t_first = false;
  bool has_t_all = false;
  bool has_cardinality = false;
};

/// In mask-based pattern matching, argument position `i` of a pattern is
/// treated as a constant filter iff bit `i` is set AND the pattern holds a
/// constant there; every other position acts as `$b`. This lets the
/// Section 6.3 relaxation lattice walk subsets of the constant positions
/// without materializing a relaxed copy of the call spec per subset.
using ArgMask = uint64_t;
constexpr ArgMask kAllArgs = ~ArgMask{0};

/// Section 6.1's cost vector database: the full, per-execution statistics
/// of every domain call the mediator has issued. Groups are kept in an
/// intrusive hash index keyed by (domain, function, arity), so the
/// estimator's group probe is one hash + one chain walk instead of a
/// red-black-tree descent with string comparisons per level.
class CostVectorDatabase {
 public:
  CostVectorDatabase() = default;
  ~CostVectorDatabase();

  CostVectorDatabase(const CostVectorDatabase&) = delete;
  CostVectorDatabase& operator=(const CostVectorDatabase&) = delete;

  /// Appends a record, stamping it with the next logical record time.
  void Record(CostRecord record);

  /// Convenience: records a fully-observed execution of `call`.
  void RecordExecution(const DomainCall& call, const CostVector& cost);

  /// All records for a call group, or nullptr when none exist.
  const std::vector<CostRecord>* GetGroup(const CallGroupKey& key) const;

  /// Aggregates (averages) records matching a call pattern whose arguments
  /// are constants or `$b`. Constants must equal the record's argument at
  /// the same position; `$b` matches anything. Optionally weights records
  /// by recency: weight = 0.5^((now - record_time)/halflife).
  Result<Aggregate> Estimate(const lang::DomainCallSpec& pattern,
                             double recency_halflife = 0.0) const;

  /// Mask-based aggregation over an already-located group (see ArgMask).
  /// `records` must be a vector previously returned by GetGroup for the
  /// pattern's own group. Used by the estimator's relaxation loop: the
  /// group is probed once and each lattice point is a mask, not a copy.
  Result<Aggregate> EstimateGroup(const std::vector<CostRecord>& records,
                                  const lang::DomainCallSpec& pattern,
                                  ArgMask const_mask,
                                  double recency_halflife = 0.0) const;

  /// All group keys, sorted.
  std::vector<CallGroupKey> Groups() const;

  size_t TotalRecords() const { return total_records_; }

  /// Approximate storage footprint in bytes (the paper's "heavy burden on
  /// storage" metric for the summarization tradeoff experiments).
  size_t ApproxBytes() const;

  uint64_t now() const { return clock_.last(); }

  void Clear();

 private:
  /// One call group: its key, records, and hash-chain membership in one
  /// allocation.
  struct Group {
    CallGroupKey key;
    std::vector<CostRecord> records;
    IntrusiveMapNode hash_node;
  };

  Group* FindGroup(const CallGroupKey& key, size_t hash) const;
  void FreeGroups();

  IntrusiveHashMap<Group, &Group::hash_node> groups_;
  size_t total_records_ = 0;
  LogicalTime clock_;
};

}  // namespace hermes::dcsm

#endif  // HERMES_DCSM_COST_VECTOR_DB_H_
