#ifndef HERMES_DCSM_COST_VECTOR_DB_H_
#define HERMES_DCSM_COST_VECTOR_DB_H_

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "dcsm/cost_record.h"
#include "lang/ast.h"

namespace hermes::dcsm {

/// Identifies one statistics table: all records of calls to a given
/// domain function at a given arity.
struct CallGroupKey {
  std::string domain;
  std::string function;
  size_t arity = 0;

  bool operator<(const CallGroupKey& other) const {
    return std::tie(domain, function, arity) <
           std::tie(other.domain, other.function, other.arity);
  }
  bool operator==(const CallGroupKey& other) const {
    return domain == other.domain && function == other.function &&
           arity == other.arity;
  }
  std::string ToString() const {
    return domain + ":" + function + "/" + std::to_string(arity);
  }
};

/// Result of aggregating statistics records for a call pattern.
struct Aggregate {
  CostVector cost;
  size_t matched = 0;        ///< Records (or summarized originals) matched.
  size_t rows_scanned = 0;   ///< Rows examined to compute the aggregate.
  bool has_t_first = false;
  bool has_t_all = false;
  bool has_cardinality = false;
};

/// Section 6.1's cost vector database: the full, per-execution statistics
/// of every domain call the mediator has issued.
class CostVectorDatabase {
 public:
  CostVectorDatabase() = default;

  CostVectorDatabase(const CostVectorDatabase&) = delete;
  CostVectorDatabase& operator=(const CostVectorDatabase&) = delete;

  /// Appends a record, stamping it with the next logical record time.
  void Record(CostRecord record);

  /// Convenience: records a fully-observed execution of `call`.
  void RecordExecution(const DomainCall& call, const CostVector& cost);

  /// All records for a call group, or nullptr when none exist.
  const std::vector<CostRecord>* GetGroup(const CallGroupKey& key) const;

  /// Aggregates (averages) records matching a call pattern whose arguments
  /// are constants or `$b`. Constants must equal the record's argument at
  /// the same position; `$b` matches anything. Optionally weights records
  /// by recency: weight = 0.5^((now - record_time)/halflife).
  Result<Aggregate> Estimate(const lang::DomainCallSpec& pattern,
                             double recency_halflife = 0.0) const;

  /// All group keys, sorted.
  std::vector<CallGroupKey> Groups() const;

  size_t TotalRecords() const { return total_records_; }

  /// Approximate storage footprint in bytes (the paper's "heavy burden on
  /// storage" metric for the summarization tradeoff experiments).
  size_t ApproxBytes() const;

  uint64_t now() const { return clock_.last(); }

  void Clear();

 private:
  std::map<CallGroupKey, std::vector<CostRecord>> groups_;
  size_t total_records_ = 0;
  LogicalTime clock_;
};

}  // namespace hermes::dcsm

#endif  // HERMES_DCSM_COST_VECTOR_DB_H_
