#include "optimizer/optimizer.h"

#include <algorithm>

namespace hermes::optimizer {

namespace {

/// Number of CIM-redirected domain calls in a plan (tie-break preference:
/// at equal estimated cost, routing through the cache can only help).
size_t CountCimCalls(const CandidatePlan& plan) {
  size_t count = 0;
  auto count_body = [&count](const std::vector<lang::Atom>& atoms) {
    for (const lang::Atom& atom : atoms) {
      if (atom.is_domain_call() &&
          atom.call.domain.rfind("cim_", 0) == 0) {
        ++count;
      }
    }
  };
  count_body(plan.query.goals);
  for (const lang::Rule& rule : plan.program.rules) count_body(rule.body);
  return count;
}

}  // namespace

Result<OptimizerResult> QueryOptimizer::Optimize(
    const lang::Program& program, const lang::Query& query,
    OptimizationGoal goal) const {
  HERMES_ASSIGN_OR_RETURN(
      std::vector<CandidatePlan> plans,
      RuleRewriter::Rewrite(program, query, rewriter_options_));

  OptimizerResult result;
  int best_index = -1;
  for (CandidatePlan& plan : plans) {
    Result<RuleCostEstimator::Estimate> est = estimator_.EstimatePlan(plan);
    if (est.ok()) {
      plan.estimated = est->cost;
      plan.estimation_ms = est->estimation_ms;
      plan.estimatable = true;
      result.total_estimation_ms += est->estimation_ms;
    } else {
      plan.estimatable = false;
    }
  }
  for (size_t i = 0; i < plans.size(); ++i) {
    if (!plans[i].estimatable) continue;
    if (best_index < 0) {
      best_index = static_cast<int>(i);
      continue;
    }
    const CostVector& a = plans[i].estimated;
    const CostVector& b = plans[best_index].estimated;
    double ka = goal == OptimizationGoal::kAllAnswers ? a.t_all_ms
                                                      : a.t_first_ms;
    double kb = goal == OptimizationGoal::kAllAnswers ? b.t_all_ms
                                                      : b.t_first_ms;
    double tie_band = 1e-9 * std::max({1.0, ka, kb});
    if (ka < kb - tie_band) {
      best_index = static_cast<int>(i);
    } else if (ka <= kb + tie_band &&
               CountCimCalls(plans[i]) >
                   CountCimCalls(plans[best_index])) {
      best_index = static_cast<int>(i);
    }
  }
  if (best_index < 0) {
    return Status::InvalidArgument(
        "no candidate plan is estimatable; every ordering leaves some "
        "domain-call argument free");
  }
  result.best = plans[best_index];
  result.candidates = std::move(plans);
  return result;
}

}  // namespace hermes::optimizer
