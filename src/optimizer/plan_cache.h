#ifndef HERMES_OPTIMIZER_PLAN_CACHE_H_
#define HERMES_OPTIMIZER_PLAN_CACHE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/value.h"
#include "domain/cost.h"
#include "engine/op/compile.h"
#include "obs/metrics.h"
#include "optimizer/plan_compiler.h"

namespace hermes::optimizer {

/// Cache key of one query shape: the query text with every constant masked
/// (which also encodes the adornment pattern — constant vs variable
/// argument positions) plus a tag for the compile options in force. Two
/// queries that differ only in constant values share a key.
struct PlanCacheKey {
  std::string text;

  bool operator==(const PlanCacheKey& other) const {
    return text == other.text;
  }
};

/// One (site, domain, adornment) estimate a cached plan depends on.
/// Invalidation matches these against DriftTracker exceedances and
/// breaker-open sites; empty fields are wildcards on that dimension.
struct PlanCacheDep {
  std::string site;
  std::string domain;  ///< Logical domain (no "cim_" prefix).
  std::string adorn;   ///< 'c' per constant arg, 'b' per bound variable.
};

struct PlanCacheOptions {
  size_t shards = 8;
  size_t capacity_per_shard = 64;     ///< Entries per shard (LRU beyond).
  size_t max_instances_per_entry = 8; ///< Pooled instantiations per entry.
};

struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t instantiations = 0;  ///< Hits that had to build a new instance.
  uint64_t invalidations = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;
};

/// Sharded, lock-striped cache of compiled plan skeletons keyed on
/// (masked query signature, compile-options tag).
///
/// Each entry splits the historical per-query CompiledPlan into:
///  - an immutable *skeleton*: the CandidatePlan template, its description
///    and predicted cost, and the (site, domain, adornment) dependency set;
///  - a pool of reusable *instances*: fully lowered operator trees whose
///    constant Term slots are rebound per query. Acquiring a pooled
///    instance for a repeat query is allocation-free: pop from the free
///    list, compare-and-assign the constants, reset the tree's counters.
///
/// Entries are invalidated (atomic flag; leases already handed out finish
/// their query, new acquires miss) when a DriftTracker EWMA exceedance or
/// a breaker-open site touches any dependency.
class PlanCache {
 public:
  /// `dcsm` and `compile_options` configure the embedded PlanCompiler used
  /// to build instances; record_spine is forced on so instances can host
  /// mid-query replanning.
  PlanCache(PlanCacheOptions options, const dcsm::Dcsm* dcsm,
            engine::op::CompileOptions compile_options);
  ~PlanCache();

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Key + canonical constant vector (order of appearance) of `query`
  /// under `options_tag`. Allocates; callers on the hot path build it once
  /// alongside parsing.
  static PlanCacheKey MakeKey(const lang::Query& query,
                              const std::string& options_tag,
                              std::vector<Value>* constants);

  class Lease;

  /// Hit path: returns a bound lease (constants rebound, stats reset), or
  /// an empty lease on miss / invalidated entry / non-rebindable constant
  /// mismatch. Zero heap allocations when the entry has a pooled instance
  /// and the constants already match.
  Lease Acquire(const PlanCacheKey& key, const std::vector<Value>& constants);

  /// Miss path: registers the skeleton of a freshly optimized plan.
  /// `constants` must be the canonical constants of the query that
  /// produced it (MakeKey's output). No-op if the key is already present
  /// and valid.
  void Insert(const PlanCacheKey& key, const std::vector<Value>& constants,
              const CandidatePlan& plan, const CostVector& predicted,
              bool predicted_valid, std::vector<PlanCacheDep> deps);

  /// Returns a lease's instance to its entry's pool. Dirty (replanned)
  /// instances, invalidated entries and full pools drop the instance
  /// instead. The lease is consumed.
  void Release(Lease lease);

  /// Invalidates every entry depending on `site` (breaker opened there).
  void InvalidateSite(const std::string& site);

  /// Invalidates every entry depending on (site, domain, adorn) — the
  /// DriftTracker exceedance hook. `domain` is the logical domain.
  void InvalidateDrift(const std::string& site, const std::string& domain,
                       const std::string& adorn);

  /// Drops every entry (wiring changed under the mediator).
  void Clear();

  PlanCacheStats stats() const;

  /// Registers the hermes_plan_cache_* family on `registry`.
  void BindMetrics(obs::MetricsRegistry& registry);

 private:
  struct Instance;
  struct Entry;
  struct Shard;

  Shard& ShardFor(const PlanCacheKey& key);
  std::unique_ptr<Instance> Instantiate(Entry& entry) const;
  void InvalidateMatching(
      const std::function<bool(const PlanCacheDep&)>& pred);

  PlanCacheOptions options_;
  PlanCompiler compiler_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::shared_ptr<obs::Counter> hits_;
  std::shared_ptr<obs::Counter> misses_;
  std::shared_ptr<obs::Counter> instantiations_;
  std::shared_ptr<obs::Counter> invalidations_;
  std::shared_ptr<obs::Counter> evictions_;
};

/// A checked-out plan instance. Movable handle; destroying an unbound or
/// already-released lease is a no-op. The instance's operator tree borrows
/// atoms owned by the instance's own CandidatePlan copy, so the lease must
/// outlive the query's execution and EXPLAIN rendering.
class PlanCache::Lease {
 public:
  // Out of line: instance_ points at the incomplete Instance here.
  Lease();
  Lease(Lease&& other) noexcept;
  Lease& operator=(Lease&& other) noexcept;
  ~Lease();
  Lease(const Lease&) = delete;
  Lease& operator=(const Lease&) = delete;

  explicit operator bool() const { return instance_ != nullptr; }

  /// The instance's compiled plan (tree + owned CandidatePlan copy).
  CompiledPlan* plan();

  /// Marks the instance unfit for pooling (its tree was replanned — it no
  /// longer matches the skeleton).
  void MarkDirty() { dirty_ = true; }
  bool dirty() const { return dirty_; }

 private:
  friend class PlanCache;
  Entry* entry_ = nullptr;  ///< Kept alive by the shard's shared_ptr.
  std::shared_ptr<void> entry_guard_;
  std::unique_ptr<Instance> instance_;
  bool dirty_ = false;
};

}  // namespace hermes::optimizer

#endif  // HERMES_OPTIMIZER_PLAN_CACHE_H_
