#include "optimizer/rewriter.h"

#include <algorithm>
#include <set>

namespace hermes::optimizer {

namespace {

/// Does `term` only mention variables in `bound` (constants are fine)?
bool TermResolvable(const lang::Term& term, const std::set<std::string>& bound) {
  if (term.is_constant()) return true;
  if (term.is_bound_pattern()) return false;
  return bound.count(term.var_name) > 0;
}

/// Can `atom` execute with `bound` variables available? On success, adds
/// the variables the atom binds to `*bound_after` (a copy of `bound`).
bool AtomExecutable(const lang::Atom& atom, const std::set<std::string>& bound,
                    std::set<std::string>* bound_after) {
  *bound_after = bound;
  switch (atom.kind) {
    case lang::Atom::Kind::kDomainCall: {
      for (const lang::Term& arg : atom.call.args) {
        if (!TermResolvable(arg, bound)) return false;
      }
      if (atom.output.is_variable()) {
        if (!atom.output.path.empty() && bound.count(atom.output.var_name) == 0) {
          return false;  // cannot bind through an attribute path
        }
        bound_after->insert(atom.output.var_name);
      }
      return true;
    }
    case lang::Atom::Kind::kComparison: {
      bool lhs_ok = TermResolvable(atom.lhs, bound);
      bool rhs_ok = TermResolvable(atom.rhs, bound);
      if (lhs_ok && rhs_ok) return true;
      // '=' with exactly one resolvable side binds the other, provided the
      // free side is a plain variable.
      if (atom.op == lang::RelOp::kEq) {
        if (lhs_ok && atom.rhs.is_variable() && atom.rhs.path.empty()) {
          bound_after->insert(atom.rhs.var_name);
          return true;
        }
        if (rhs_ok && atom.lhs.is_variable() && atom.lhs.path.empty()) {
          bound_after->insert(atom.lhs.var_name);
          return true;
        }
      }
      return false;
    }
    case lang::Atom::Kind::kPredicate: {
      // IDB predicates can generate bindings; feasibility of the chosen
      // adornment is checked later by the cost estimator / executor.
      for (const lang::Term& arg : atom.args) {
        if (arg.is_variable()) bound_after->insert(arg.var_name);
      }
      return true;
    }
  }
  return false;
}

/// Depth-first enumeration of valid atom orderings.
void EnumerateOrderings(const std::vector<lang::Atom>& body,
                        std::vector<bool>* used,
                        std::vector<lang::Atom>* current,
                        const std::set<std::string>& bound,
                        size_t max_orderings,
                        std::vector<std::vector<lang::Atom>>* out) {
  if (out->size() >= max_orderings) return;
  if (current->size() == body.size()) {
    out->push_back(*current);
    return;
  }
  for (size_t i = 0; i < body.size(); ++i) {
    if ((*used)[i]) continue;
    std::set<std::string> bound_after;
    if (!AtomExecutable(body[i], bound, &bound_after)) continue;
    (*used)[i] = true;
    current->push_back(body[i]);
    EnumerateOrderings(body, used, current, bound_after, max_orderings, out);
    current->pop_back();
    (*used)[i] = false;
    if (out->size() >= max_orderings) return;
  }
}

bool SameOrdering(const std::vector<lang::Atom>& a,
                  const std::vector<lang::Atom>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].ToString() != b[i].ToString()) return false;
  }
  return true;
}

/// Maps a comparison operator to the select-family function that
/// implements it source-side, with the comparison's constant on the right:
/// `V.attr op c`.
const char* SelectFunctionFor(lang::RelOp op) {
  switch (op) {
    case lang::RelOp::kEq: return "equal";
    case lang::RelOp::kNeq: return "select_neq";
    case lang::RelOp::kLt: return "select_lt";
    case lang::RelOp::kLe: return "select_le";
    case lang::RelOp::kGt: return "select_gt";
    case lang::RelOp::kGe: return "select_ge";
  }
  return "equal";
}

bool DefaultDomainHasFunction(const std::string& domain,
                              const std::string& function, size_t arity) {
  (void)domain;
  (void)arity;
  // By default assume the relational select family exists; other domains
  // should be described via Options::domain_has_function.
  return function == "equal" || function == "select_eq" ||
         function == "select_neq" || function == "select_lt" ||
         function == "select_le" || function == "select_gt" ||
         function == "select_ge";
}

/// Predicates reachable from the query (name/arity pairs).
std::set<std::pair<std::string, size_t>> ReachablePredicates(
    const lang::Program& program, const lang::Query& query) {
  std::set<std::pair<std::string, size_t>> reachable;
  std::vector<std::pair<std::string, size_t>> frontier;
  auto visit = [&](const lang::Atom& atom) {
    if (!atom.is_predicate()) return;
    auto key = std::make_pair(atom.predicate, atom.args.size());
    if (reachable.insert(key).second) frontier.push_back(key);
  };
  for (const lang::Atom& goal : query.goals) visit(goal);
  while (!frontier.empty()) {
    auto key = frontier.back();
    frontier.pop_back();
    for (const lang::Rule& rule : program.rules) {
      if (rule.head.predicate != key.first ||
          rule.head.args.size() != key.second) {
        continue;
      }
      for (const lang::Atom& atom : rule.body) visit(atom);
    }
  }
  return reachable;
}

}  // namespace

size_t RuleRewriter::RedirectToCim(std::vector<lang::Atom>* atoms,
                                   const std::vector<std::string>& cim_domains) {
  size_t redirected = 0;
  for (lang::Atom& atom : *atoms) {
    if (!atom.is_domain_call()) continue;
    for (const std::string& d : cim_domains) {
      if (atom.call.domain == d) {
        atom.call.domain = "cim_" + d;
        ++redirected;
        break;
      }
    }
  }
  return redirected;
}

size_t RuleRewriter::PushSelections(
    std::vector<lang::Atom>* body,
    const std::function<bool(const std::string&, const std::string&, size_t)>&
        domain_has_function) {
  auto has_function =
      domain_has_function ? domain_has_function : DefaultDomainHasFunction;
  size_t pushed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t ci = 0; ci < body->size() && !changed; ++ci) {
      const lang::Atom& cmp = (*body)[ci];
      if (!cmp.is_comparison()) continue;

      // Normalize to: Var.attr op Constant.
      lang::Term var_side, const_side;
      lang::RelOp op = cmp.op;
      if (cmp.lhs.is_variable() && cmp.lhs.path.size() == 1 &&
          cmp.rhs.is_constant()) {
        var_side = cmp.lhs;
        const_side = cmp.rhs;
      } else if (cmp.rhs.is_variable() && cmp.rhs.path.size() == 1 &&
                 cmp.lhs.is_constant()) {
        var_side = cmp.rhs;
        const_side = cmp.lhs;
        op = lang::FlipRelOp(op);
      } else {
        continue;
      }

      // Find the full-scan call producing this variable.
      for (size_t di = 0; di < body->size() && !changed; ++di) {
        lang::Atom& call_atom = (*body)[di];
        if (!call_atom.is_domain_call() || !call_atom.output.is_variable() ||
            call_atom.output.var_name != var_side.var_name ||
            !call_atom.output.path.empty()) {
          continue;
        }
        if (call_atom.call.function != "all" ||
            call_atom.call.args.size() != 1) {
          continue;
        }
        const std::string target = SelectFunctionFor(op);
        if (!has_function(call_atom.call.domain, target, 3)) continue;

        // Other comparisons may still reference the variable's remaining
        // attributes — that is fine because select answers keep the full
        // row structure.
        call_atom.call.function = target;
        call_atom.call.args.push_back(
            lang::Term::Const(Value::Str(var_side.path[0])));
        call_atom.call.args.push_back(const_side);
        body->erase(body->begin() + ci);
        ++pushed;
        changed = true;
      }
    }
  }
  return pushed;
}

std::vector<std::vector<lang::Atom>> RuleRewriter::ValidOrderings(
    const std::vector<lang::Atom>& body,
    const std::vector<std::string>& initially_bound, size_t max_orderings) {
  std::set<std::string> bound(initially_bound.begin(), initially_bound.end());
  std::vector<std::vector<lang::Atom>> out;

  // The original order goes first when it is valid.
  {
    std::set<std::string> running = bound;
    bool valid = true;
    for (const lang::Atom& atom : body) {
      std::set<std::string> after;
      if (!AtomExecutable(atom, running, &after)) {
        valid = false;
        break;
      }
      running = std::move(after);
    }
    if (valid) out.push_back(body);
  }

  std::vector<bool> used(body.size(), false);
  std::vector<lang::Atom> current;
  std::vector<std::vector<lang::Atom>> enumerated;
  EnumerateOrderings(body, &used, &current, bound, max_orderings + 1,
                     &enumerated);
  for (std::vector<lang::Atom>& ordering : enumerated) {
    if (out.size() >= max_orderings) break;
    bool duplicate = false;
    for (const std::vector<lang::Atom>& existing : out) {
      if (SameOrdering(existing, ordering)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) out.push_back(std::move(ordering));
  }
  return out;
}

Result<std::vector<CandidatePlan>> RuleRewriter::Rewrite(
    const lang::Program& program, const lang::Query& query,
    const Options& options) {
  std::set<std::pair<std::string, size_t>> reachable =
      ReachablePredicates(program, query);

  // Variants along two axes: selection push-down and CIM redirection.
  struct Variant {
    lang::Program program;
    lang::Query query;
    std::string description;
  };
  std::vector<Variant> variants;

  auto make_variant = [&](bool pushdown, bool cim) -> Variant {
    Variant v;
    v.program = program;
    v.query = query;
    size_t pushed = 0;
    size_t redirected = 0;
    if (pushdown) {
      pushed += PushSelections(&v.query.goals, options.domain_has_function);
      for (lang::Rule& rule : v.program.rules) {
        pushed += PushSelections(&rule.body, options.domain_has_function);
      }
    }
    if (cim) {
      redirected += RedirectToCim(&v.query.goals, options.cim_domains);
      for (lang::Rule& rule : v.program.rules) {
        redirected += RedirectToCim(&rule.body, options.cim_domains);
      }
    }
    v.description = pushdown && pushed > 0 ? "pushdown" : "direct";
    if (cim && redirected > 0) v.description += "+cim";
    return v;
  };

  std::vector<std::pair<bool, bool>> axes;
  bool with_cim = !options.cim_domains.empty();
  if (!options.cim_only) axes.push_back({false, false});
  if (options.push_selections && !options.cim_only) axes.push_back({true, false});
  if (with_cim) {
    axes.push_back({false, true});
    if (options.push_selections) axes.push_back({true, true});
  }

  for (auto [pushdown, cim] : axes) {
    Variant v = make_variant(pushdown, cim);
    bool duplicate = false;
    for (const Variant& existing : variants) {
      if (existing.query.ToString() == v.query.ToString() &&
          existing.program.ToString() == v.program.ToString()) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) variants.push_back(std::move(v));
  }

  // Expand each variant into ordered plans: orderings of the query goals ×
  // orderings of every reachable rule body.
  std::vector<CandidatePlan> plans;
  for (const Variant& variant : variants) {
    std::vector<std::vector<lang::Atom>> query_orderings =
        options.reorder_subgoals
            ? ValidOrderings(variant.query.goals, {},
                             options.max_orderings_per_body)
            : std::vector<std::vector<lang::Atom>>{variant.query.goals};
    if (query_orderings.empty()) continue;  // no executable order

    // Per-rule orderings (only reachable rules are reordered).
    std::vector<size_t> rule_indexes;
    std::vector<std::vector<std::vector<lang::Atom>>> rule_orderings;
    for (size_t r = 0; r < variant.program.rules.size(); ++r) {
      const lang::Rule& rule = variant.program.rules[r];
      auto key = std::make_pair(rule.head.predicate, rule.head.args.size());
      if (!options.reorder_subgoals || reachable.count(key) == 0 ||
          rule.body.size() <= 1) {
        continue;
      }
      std::vector<std::string> head_vars = rule.head.Variables();
      std::vector<std::vector<lang::Atom>> orderings = ValidOrderings(
          rule.body, head_vars, options.max_orderings_per_body);
      if (orderings.size() > 1) {
        rule_indexes.push_back(r);
        rule_orderings.push_back(std::move(orderings));
      }
    }

    // Cartesian product with a global cap.
    std::vector<size_t> cursor(rule_indexes.size(), 0);
    bool exhausted = false;
    while (!exhausted && plans.size() < options.max_plans) {
      for (const std::vector<lang::Atom>& qorder : query_orderings) {
        if (plans.size() >= options.max_plans) break;
        CandidatePlan plan;
        plan.program = variant.program;
        plan.query.goals = qorder;
        for (size_t k = 0; k < rule_indexes.size(); ++k) {
          plan.program.rules[rule_indexes[k]].body =
              rule_orderings[k][cursor[k]];
        }
        plan.description = variant.description;
        plans.push_back(std::move(plan));
      }
      // Advance the cartesian cursor.
      exhausted = true;
      for (size_t k = 0; k < cursor.size(); ++k) {
        if (++cursor[k] < rule_orderings[k].size()) {
          exhausted = false;
          break;
        }
        cursor[k] = 0;
      }
      if (cursor.empty()) exhausted = true;
    }
  }

  if (plans.empty()) {
    return Status::InvalidArgument(
        "no executable ordering exists for the query (a domain call's "
        "arguments can never all be bound)");
  }
  // Number the plans for readability.
  for (size_t i = 0; i < plans.size(); ++i) {
    plans[i].description += " #" + std::to_string(i);
  }
  return plans;
}

}  // namespace hermes::optimizer
