#ifndef HERMES_OPTIMIZER_ESTIMATOR_H_
#define HERMES_OPTIMIZER_ESTIMATOR_H_

#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_costs.h"
#include "dcsm/dcsm.h"
#include "lang/ast.h"
#include "optimizer/binding_env.h"
#include "optimizer/plan.h"

namespace hermes::optimizer {

/// Tuning knobs of the rule cost estimator.
struct EstimatorParams {
  double eq_selectivity = 0.10;     ///< Fraction surviving `X = const`.
  double range_selectivity = 0.33;  ///< Fraction surviving a range filter.
  double neq_selectivity = 0.90;    ///< Fraction surviving `X != const`.
  double membership_selectivity = 0.5;  ///< in(X, ...) with X already bound.
  /// Per-tuple comparison CPU time; single-sourced with the executor so
  /// estimates and execution charge the same simulated cost.
  double comparison_cost_ms = kDefaultComparisonCostMs;
  size_t max_recursion_depth = 16;
  /// Use cached per-predicate first-answer statistics (pseudo domain
  /// "idb", recorded by the executor) to override the formula-derived T_f
  /// of IDB predicate subgoals. This is the paper's Section 8 remedy for
  /// the nested-loop formula's blindness to backtracking: the formula
  /// assumes the first answer combines the first answers of each subgoal,
  /// while in reality early outer tuples may fail downstream. Only T_f is
  /// overridden — T_a and cardinality keep the compositional formula so
  /// plan orderings remain distinguishable.
  bool use_predicate_first_answer_stats = false;
  double per_predicate_stat_row_ms = 0.02;  ///< Simulated lookup charge.
};

/// Section 7's rule cost estimator.
///
/// Walks a fully-ordered plan left to right, obtaining per-call cost
/// vectors from the DCSM and combining them with the paper's nested-loop
/// formula:
///   T_a   = Σ_i (Π_{j<i} Card_j) · T_a,i
///   T_f   = Σ_i T_f,i
///   Card  = Π_i Card_i
/// (duplicate elimination is not performed — footnote 2). IDB predicates
/// are estimated by recursively estimating their defining rules and adding
/// up cardinalities and execution times.
class RuleCostEstimator {
 public:
  RuleCostEstimator(const dcsm::Dcsm* dcsm, EstimatorParams params = {})
      : dcsm_(dcsm), params_(params) {}

  /// Estimate of one candidate plan. Returns InvalidArgument when the plan
  /// ordering is infeasible for the query's adornment (e.g. a domain call
  /// argument can be free at execution time).
  struct Estimate {
    CostVector cost;
    double estimation_ms = 0.0;  ///< Simulated DCSM lookup time.
  };
  Result<Estimate> EstimatePlan(const CandidatePlan& plan) const;

  /// Estimates a body (query goals or rule body) under an initial binding
  /// environment against `program`'s rules.
  Result<Estimate> EstimateBody(const lang::Program& program,
                                const std::vector<lang::Atom>& goals,
                                const BindingEnv& env) const;

 private:
  Result<CostVector> EstimateBodyInternal(
      const lang::Program& program, const std::vector<lang::Atom>& goals,
      BindingEnv env, size_t depth, std::set<std::string>* active_predicates,
      double* estimation_ms) const;

  Result<CostVector> EstimatePredicate(
      const lang::Program& program, const lang::Atom& atom,
      const BindingEnv& env, size_t depth,
      std::set<std::string>* active_predicates, double* estimation_ms) const;

  /// Converts a domain-call atom to a DCSM pattern under `env`; fails if
  /// any argument variable is free.
  Result<lang::DomainCallSpec> PatternFor(const lang::DomainCallSpec& call,
                                          const BindingEnv& env) const;

  const dcsm::Dcsm* dcsm_;
  EstimatorParams params_;
};

}  // namespace hermes::optimizer

#endif  // HERMES_OPTIMIZER_ESTIMATOR_H_
