#ifndef HERMES_OPTIMIZER_BINDING_ENV_H_
#define HERMES_OPTIMIZER_BINDING_ENV_H_

#include <map>
#include <string>

#include "common/value.h"

namespace hermes::optimizer {

/// Static binding knowledge about one variable during plan analysis
/// (Section 5/6's adornments): free, bound to an unknown value (`$b`), or
/// bound to a known constant.
struct BindingInfo {
  enum class Kind { kFree, kBound, kConst };
  Kind kind = Kind::kFree;
  Value constant;  ///< Valid when kind == kConst.

  static BindingInfo Free() { return BindingInfo{}; }
  static BindingInfo Bound() {
    BindingInfo b;
    b.kind = Kind::kBound;
    return b;
  }
  static BindingInfo Const(Value v) {
    BindingInfo b;
    b.kind = Kind::kConst;
    b.constant = std::move(v);
    return b;
  }

  bool is_free() const { return kind == Kind::kFree; }
  bool is_bound() const { return kind != Kind::kFree; }
  bool is_const() const { return kind == Kind::kConst; }
};

/// Variable name → binding knowledge. Variables not in the map are free.
class BindingEnv {
 public:
  BindingEnv() = default;

  const BindingInfo& Get(const std::string& var) const {
    static const BindingInfo kFree{};
    auto it = vars_.find(var);
    return it == vars_.end() ? kFree : it->second;
  }

  void Set(const std::string& var, BindingInfo info) {
    vars_[var] = std::move(info);
  }

  /// Marks `var` bound-unknown unless it is already const.
  void MarkBound(const std::string& var) {
    BindingInfo& info = vars_[var];
    if (info.kind == BindingInfo::Kind::kFree) {
      info.kind = BindingInfo::Kind::kBound;
    }
  }

  bool IsBound(const std::string& var) const { return Get(var).is_bound(); }

 private:
  std::map<std::string, BindingInfo> vars_;
};

}  // namespace hermes::optimizer

#endif  // HERMES_OPTIMIZER_BINDING_ENV_H_
