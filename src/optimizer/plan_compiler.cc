#include "optimizer/plan_compiler.h"

#include "engine/op/explain.h"

namespace hermes::optimizer {

CompiledPlan PlanCompiler::Compile(CandidatePlan plan) const {
  CompiledPlan compiled;
  compiled.plan_ = std::make_unique<CandidatePlan>(std::move(plan));
  compiled.tree_ = engine::op::Compile(compiled.plan_->program,
                                       compiled.plan_->query, options_);
  compiled.dcsm_ = dcsm_;
  return compiled;
}

std::string CompiledPlan::Explain(bool actuals) {
  using engine::op::ExplainPrinter;
  std::string out = "plan: " + plan_->description + "\n";
  out += "query: " + plan_->query.ToString() + "\n";
  if (plan_->estimatable) {
    out += "estimated: Tf=" + ExplainPrinter::FormatNum(plan_->estimated.t_first_ms) +
           "ms Ta=" + ExplainPrinter::FormatNum(plan_->estimated.t_all_ms) +
           "ms card=" + ExplainPrinter::FormatNum(plan_->estimated.cardinality) +
           "\n";
  }
  engine::op::ExplainOptions options;
  options.dcsm = dcsm_;
  options.actuals = actuals;
  out += engine::op::ExplainTree(*tree_.root, options);
  return out;
}

}  // namespace hermes::optimizer
