#include "optimizer/plan_cache.h"

#include <algorithm>
#include <atomic>
#include <set>
#include <utility>

namespace hermes::optimizer {

namespace {

/// Deterministic walk over every Term of a query, in the same order as
/// engine::op::QueryVariables: predicate args; domain-call output then
/// args; comparison lhs then rhs. MakeKey, Insert and Instantiate all use
/// this walk, so constant positions line up across template and instance.
template <typename Fn>
void VisitQueryTerms(lang::Query& query, Fn&& fn) {
  for (lang::Atom& goal : query.goals) {
    switch (goal.kind) {
      case lang::Atom::Kind::kPredicate:
        for (lang::Term& t : goal.args) fn(t);
        break;
      case lang::Atom::Kind::kDomainCall:
        fn(goal.output);
        for (lang::Term& t : goal.call.args) fn(t);
        break;
      case lang::Atom::Kind::kComparison:
        fn(goal.lhs);
        fn(goal.rhs);
        break;
    }
  }
}

/// True when any rule reachable from the query's predicate goals carries a
/// constant term — rebinding the query's constants cannot be proven to
/// reproduce what a fresh compile would do (the optimizer may have pushed
/// query constants into rule bodies), so such entries serve exact
/// constant matches only.
bool ReachableRulesHaveConstants(const lang::Program& program,
                                 const lang::Query& query) {
  std::set<std::pair<std::string, size_t>> reachable, frontier;
  for (const lang::Atom& goal : query.goals) {
    if (goal.is_predicate()) {
      frontier.insert({goal.predicate, goal.args.size()});
    }
  }
  while (!frontier.empty()) {
    auto key = *frontier.begin();
    frontier.erase(frontier.begin());
    if (!reachable.insert(key).second) continue;
    for (const lang::Rule& rule : program.rules) {
      if (rule.head.predicate != key.first ||
          rule.head.args.size() != key.second) {
        continue;
      }
      for (const lang::Atom& atom : rule.body) {
        if (atom.is_predicate()) {
          frontier.insert({atom.predicate, atom.args.size()});
        }
      }
    }
  }
  auto has_constant = [](const lang::Atom& atom) {
    switch (atom.kind) {
      case lang::Atom::Kind::kPredicate:
        for (const lang::Term& t : atom.args) {
          if (t.is_constant()) return true;
        }
        return false;
      case lang::Atom::Kind::kDomainCall:
        if (atom.output.is_constant()) return true;
        for (const lang::Term& t : atom.call.args) {
          if (t.is_constant()) return true;
        }
        return false;
      case lang::Atom::Kind::kComparison:
        return atom.lhs.is_constant() || atom.rhs.is_constant();
    }
    return false;
  };
  for (const lang::Rule& rule : program.rules) {
    if (reachable.count({rule.head.predicate, rule.head.args.size()}) == 0) {
      continue;
    }
    for (const lang::Term& t : rule.head.args) {
      if (t.is_constant()) return true;
    }
    for (const lang::Atom& atom : rule.body) {
      if (has_constant(atom)) return true;
    }
  }
  return false;
}

char TypeTag(const Value& v) {
  switch (v.type()) {
    case Value::Type::kNull: return 'n';
    case Value::Type::kBool: return 'b';
    case Value::Type::kInt: return 'i';
    case Value::Type::kDouble: return 'd';
    case Value::Type::kString: return 's';
    case Value::Type::kList: return 'l';
    case Value::Type::kStruct: return 't';
  }
  return '?';
}

}  // namespace

struct PlanCache::Instance {
  CompiledPlan compiled;
  /// Constant Term slots of this instance's own plan.query, in the
  /// canonical walk order (parallel to Entry::slot_to_const).
  std::vector<lang::Term*> slots;
};

struct PlanCache::Entry {
  PlanCacheKey key;
  CandidatePlan plan_template;
  std::vector<Value> template_constants;
  CostVector predicted;
  bool predicted_valid = false;
  /// Constants cannot be rebound (duplicate/unmatched values, or reachable
  /// rules with constants): serve only identical-constant queries.
  bool exact_only = false;
  /// Plan-side constant slot j rebinds from canonical constant
  /// slot_to_const[j]. Empty when exact_only.
  std::vector<size_t> slot_to_const;
  std::vector<PlanCacheDep> deps;
  std::atomic<bool> invalid{false};
  std::vector<std::unique_ptr<Instance>> pool;  ///< Guarded by shard mu.
  uint64_t tick = 0;
};

struct PlanCache::Shard {
  std::mutex mu;
  std::vector<std::shared_ptr<Entry>> entries;
  uint64_t tick = 0;
};

PlanCache::Lease::Lease() = default;
PlanCache::Lease::~Lease() = default;
PlanCache::Lease::Lease(Lease&& other) noexcept { *this = std::move(other); }

PlanCache::Lease& PlanCache::Lease::operator=(Lease&& other) noexcept {
  if (this == &other) return *this;
  entry_ = other.entry_;
  entry_guard_ = std::move(other.entry_guard_);
  instance_ = std::move(other.instance_);
  dirty_ = other.dirty_;
  other.entry_ = nullptr;
  other.dirty_ = false;
  return *this;
}

CompiledPlan* PlanCache::Lease::plan() {
  return instance_ != nullptr ? &instance_->compiled : nullptr;
}

PlanCache::PlanCache(PlanCacheOptions options, const dcsm::Dcsm* dcsm,
                     engine::op::CompileOptions compile_options)
    : options_(options) {
  compile_options.record_spine = true;  // instances host mid-query replans
  compiler_ = PlanCompiler(dcsm, compile_options);
  if (options_.shards == 0) options_.shards = 1;
  shards_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PlanCache::~PlanCache() = default;

PlanCacheKey PlanCache::MakeKey(const lang::Query& query,
                                const std::string& options_tag,
                                std::vector<Value>* constants) {
  if (constants != nullptr) constants->clear();
  lang::Query masked = query;
  VisitQueryTerms(masked, [constants](lang::Term& t) {
    if (!t.is_constant()) return;
    if (constants != nullptr) constants->push_back(t.constant);
    // The mask keeps the constant's type: a plan's inferred row schema
    // pins column types from constants, so an int and a string at the
    // same position must not share an entry.
    t.constant = Value::Str(std::string("\x01") + TypeTag(t.constant));
  });
  PlanCacheKey key;
  key.text = masked.ToString();
  key.text += "\n#";
  key.text += options_tag;
  return key;
}

PlanCache::Shard& PlanCache::ShardFor(const PlanCacheKey& key) {
  // FNV-1a over the key text; shard count is small, quality is plenty.
  uint64_t h = 1469598103934665603ull;
  for (char c : key.text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return *shards_[h % shards_.size()];
}

std::unique_ptr<PlanCache::Instance> PlanCache::Instantiate(
    Entry& entry) const {
  auto instance = std::make_unique<Instance>();
  instance->compiled = compiler_.Compile(entry.plan_template);
  if (!entry.exact_only) {
    instance->slots.reserve(entry.slot_to_const.size());
    VisitQueryTerms(instance->compiled.mutable_plan()->query,
                    [&instance](lang::Term& t) {
                      if (t.is_constant()) instance->slots.push_back(&t);
                    });
  }
  return instance;
}

PlanCache::Lease PlanCache::Acquire(const PlanCacheKey& key,
                                    const std::vector<Value>& constants) {
  Shard& shard = ShardFor(key);
  std::shared_ptr<Entry> entry;
  std::unique_ptr<Instance> instance;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& e : shard.entries) {
      if (e->key == key) {
        entry = e;
        break;
      }
    }
    if (entry == nullptr || entry->invalid.load(std::memory_order_acquire)) {
      if (misses_ != nullptr) misses_->Add();
      return Lease{};
    }
    entry->tick = ++shard.tick;
    if (!entry->pool.empty()) {
      instance = std::move(entry->pool.back());
      entry->pool.pop_back();
    }
  }

  if (entry->exact_only && constants != entry->template_constants) {
    // The entry cannot be retargeted; hand the instance back untouched.
    if (instance != nullptr) {
      std::lock_guard<std::mutex> lock(shard.mu);
      if (entry->pool.size() < options_.max_instances_per_entry) {
        entry->pool.push_back(std::move(instance));
      }
    }
    if (misses_ != nullptr) misses_->Add();
    return Lease{};
  }

  if (instance == nullptr) {
    // Pool dry: build a fresh instance outside the shard lock (the
    // skeleton is immutable, compilation is read-only over it).
    instance = Instantiate(*entry);
    if (instantiations_ != nullptr) instantiations_->Add();
  }

  if (!entry->exact_only) {
    // Rebind: compare-before-assign keeps the repeat-identical-query path
    // allocation-free (int assignment is alloc-free either way).
    for (size_t j = 0; j < instance->slots.size() &&
                       j < entry->slot_to_const.size();
         ++j) {
      const Value& v = constants[entry->slot_to_const[j]];
      lang::Term* t = instance->slots[j];
      if (!(t->constant == v)) t->constant = v;
    }
  }
  instance->compiled.tree().root->ResetStatsTree();

  if (entry->invalid.load(std::memory_order_acquire)) {
    // Invalidated while we were binding: never hand out a stale plan.
    if (misses_ != nullptr) misses_->Add();
    return Lease{};
  }

  if (hits_ != nullptr) hits_->Add();
  Lease lease;
  lease.entry_ = entry.get();
  lease.entry_guard_ = entry;
  lease.instance_ = std::move(instance);
  return lease;
}

void PlanCache::Insert(const PlanCacheKey& key,
                       const std::vector<Value>& constants,
                       const CandidatePlan& plan, const CostVector& predicted,
                       bool predicted_valid, std::vector<PlanCacheDep> deps) {
  auto entry = std::make_shared<Entry>();
  entry->key = key;
  entry->plan_template = plan;
  entry->template_constants = constants;
  entry->predicted = predicted;
  entry->predicted_valid = predicted_valid;
  entry->deps = std::move(deps);

  // Decide rebindability: the plan's own query constants must be exactly
  // the original query's constants (a permutation of distinct values —
  // the optimizer reorders goals), and no reachable rule may carry
  // constants (pushdown moves query constants into rule bodies).
  std::vector<Value> plan_constants;
  VisitQueryTerms(entry->plan_template.query, [&plan_constants](lang::Term& t) {
    if (t.is_constant()) plan_constants.push_back(t.constant);
  });
  bool rebindable = plan_constants.size() == constants.size();
  if (rebindable) {
    for (size_t i = 0; i < constants.size() && rebindable; ++i) {
      for (size_t k = i + 1; k < constants.size(); ++k) {
        if (constants[i] == constants[k]) {
          rebindable = false;
          break;
        }
      }
    }
  }
  if (rebindable) {
    entry->slot_to_const.reserve(plan_constants.size());
    for (const Value& pv : plan_constants) {
      size_t match = constants.size();
      for (size_t i = 0; i < constants.size(); ++i) {
        if (constants[i] == pv) {
          match = i;
          break;
        }
      }
      if (match == constants.size()) {
        rebindable = false;
        break;
      }
      entry->slot_to_const.push_back(match);
    }
  }
  if (rebindable &&
      ReachableRulesHaveConstants(entry->plan_template.program,
                                  entry->plan_template.query)) {
    rebindable = false;
  }
  if (!rebindable) {
    entry->exact_only = true;
    entry->slot_to_const.clear();
  }

  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  for (auto& e : shard.entries) {
    if (e->key == key) {
      if (!e->invalid.load(std::memory_order_acquire)) return;
      e = entry;  // replace the invalidated skeleton
      e->tick = ++shard.tick;
      return;
    }
  }
  if (shard.entries.size() >= options_.capacity_per_shard) {
    auto lru = std::min_element(shard.entries.begin(), shard.entries.end(),
                                [](const auto& a, const auto& b) {
                                  return a->tick < b->tick;
                                });
    if (lru != shard.entries.end()) {
      shard.entries.erase(lru);
      if (evictions_ != nullptr) evictions_->Add();
    }
  }
  entry->tick = ++shard.tick;
  shard.entries.push_back(std::move(entry));
}

void PlanCache::Release(Lease lease) {
  if (lease.entry_ == nullptr || lease.instance_ == nullptr) return;
  if (lease.dirty_ ||
      lease.entry_->invalid.load(std::memory_order_acquire)) {
    return;  // replanned or stale: drop the instance
  }
  Shard& shard = ShardFor(lease.entry_->key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (lease.entry_->invalid.load(std::memory_order_acquire)) return;
  if (lease.entry_->pool.size() < options_.max_instances_per_entry) {
    lease.entry_->pool.push_back(std::move(lease.instance_));
  }
}

void PlanCache::InvalidateMatching(
    const std::function<bool(const PlanCacheDep&)>& pred) {
  uint64_t invalidated = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->entries.begin(); it != shard->entries.end();) {
      Entry& entry = **it;
      bool hit = false;
      for (const PlanCacheDep& dep : entry.deps) {
        if (pred(dep)) {
          hit = true;
          break;
        }
      }
      if (hit && !entry.invalid.exchange(true, std::memory_order_acq_rel)) {
        ++invalidated;
        entry.pool.clear();
        it = shard->entries.erase(it);
        continue;
      }
      ++it;
    }
  }
  if (invalidated > 0 && invalidations_ != nullptr) {
    invalidations_->Add(invalidated);
  }
}

void PlanCache::InvalidateSite(const std::string& site) {
  InvalidateMatching(
      [&site](const PlanCacheDep& dep) { return dep.site == site; });
}

void PlanCache::InvalidateDrift(const std::string& site,
                                const std::string& domain,
                                const std::string& adorn) {
  InvalidateMatching([&](const PlanCacheDep& dep) {
    if (!dep.site.empty() && !site.empty() && dep.site != site) return false;
    if (dep.domain != domain) return false;
    return dep.adorn.empty() || adorn.empty() || dep.adorn == adorn;
  });
}

void PlanCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto& entry : shard->entries) {
      entry->invalid.store(true, std::memory_order_release);
      entry->pool.clear();
    }
    shard->entries.clear();
  }
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats stats;
  stats.hits = hits_ != nullptr ? hits_->Value() : 0;
  stats.misses = misses_ != nullptr ? misses_->Value() : 0;
  stats.instantiations =
      instantiations_ != nullptr ? instantiations_->Value() : 0;
  stats.invalidations =
      invalidations_ != nullptr ? invalidations_->Value() : 0;
  stats.evictions = evictions_ != nullptr ? evictions_->Value() : 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.entries += shard->entries.size();
  }
  return stats;
}

void PlanCache::BindMetrics(obs::MetricsRegistry& registry) {
  hits_ = registry.GetOrAddCounter("hermes_plan_cache_hits_total",
                                   "Plan cache lookups served from cache");
  misses_ = registry.GetOrAddCounter(
      "hermes_plan_cache_misses_total",
      "Plan cache lookups that fell through to the optimizer");
  instantiations_ = registry.GetOrAddCounter(
      "hermes_plan_cache_instantiations_total",
      "Cache hits that had to lower a fresh instance (pool dry)");
  invalidations_ = registry.GetOrAddCounter(
      "hermes_plan_cache_invalidations_total",
      "Entries invalidated by drift exceedance or breaker-open sites");
  evictions_ = registry.GetOrAddCounter("hermes_plan_cache_evictions_total",
                                        "Entries evicted by per-shard LRU");
  registry.RegisterCallbackGauge("hermes_plan_cache_entries",
                                 "Live plan cache entries across shards", {},
                                 [this]() {
                                   size_t n = 0;
                                   for (const auto& shard : shards_) {
                                     std::lock_guard<std::mutex> lock(
                                         shard->mu);
                                     n += shard->entries.size();
                                   }
                                   return static_cast<double>(n);
                                 });
}

}  // namespace hermes::optimizer
