#ifndef HERMES_OPTIMIZER_OPTIMIZER_H_
#define HERMES_OPTIMIZER_OPTIMIZER_H_

#include <vector>

#include "common/result.h"
#include "dcsm/dcsm.h"
#include "lang/ast.h"
#include "optimizer/estimator.h"
#include "optimizer/plan.h"
#include "optimizer/rewriter.h"

namespace hermes::optimizer {

/// Which cost component the optimizer minimizes — the paper's two modes of
/// operation (all answers vs. interactive).
enum class OptimizationGoal { kAllAnswers, kFirstAnswer };

/// The outcome of optimizing one query.
struct OptimizerResult {
  CandidatePlan best;
  /// Every candidate considered, with `estimated`/`estimatable` filled —
  /// useful for the plan-choice-accuracy experiments.
  std::vector<CandidatePlan> candidates;
  double total_estimation_ms = 0.0;  ///< Simulated optimizer time.
};

/// End-to-end query optimizer: rewrite → estimate each plan via DCSM →
/// pick the cheapest for the requested goal.
class QueryOptimizer {
 public:
  QueryOptimizer(const dcsm::Dcsm* dcsm,
                 RuleRewriter::Options rewriter_options = {},
                 EstimatorParams estimator_params = {})
      : dcsm_(dcsm),
        rewriter_options_(std::move(rewriter_options)),
        estimator_(dcsm, estimator_params) {}

  Result<OptimizerResult> Optimize(const lang::Program& program,
                                   const lang::Query& query,
                                   OptimizationGoal goal) const;

  RuleRewriter::Options& rewriter_options() { return rewriter_options_; }

 private:
  const dcsm::Dcsm* dcsm_;
  RuleRewriter::Options rewriter_options_;
  RuleCostEstimator estimator_;
};

}  // namespace hermes::optimizer

#endif  // HERMES_OPTIMIZER_OPTIMIZER_H_
