#ifndef HERMES_OPTIMIZER_PLAN_COMPILER_H_
#define HERMES_OPTIMIZER_PLAN_COMPILER_H_

#include <memory>
#include <string>
#include <utility>

#include "engine/op/compile.h"
#include "optimizer/plan.h"

namespace hermes::dcsm {
class Dcsm;
}  // namespace hermes::dcsm

namespace hermes::optimizer {

/// A CandidatePlan lowered to its physical operator tree — the plan as an
/// executable, inspectable artifact. Owns the plan (the tree's operators
/// point into its program/query, held behind a unique_ptr so moves are
/// safe); movable, not copyable.
class CompiledPlan {
 public:
  CompiledPlan() = default;
  CompiledPlan(CompiledPlan&&) = default;
  CompiledPlan& operator=(CompiledPlan&&) = default;
  CompiledPlan(const CompiledPlan&) = delete;
  CompiledPlan& operator=(const CompiledPlan&) = delete;

  const CandidatePlan& plan() const { return *plan_; }
  /// Mutable plan access for the plan cache's constant rebinding: the tree
  /// borrows the plan's atoms, so assigning a constant Term's value here
  /// retargets the corresponding operator in place.
  CandidatePlan* mutable_plan() { return plan_.get(); }
  engine::op::CompiledQuery& tree() { return tree_; }

  /// Renders the plan header (description, query, plan-level estimate)
  /// followed by the operator tree with static adornments and per-call
  /// DCSM estimates. With `actuals`, each operator also shows its post-run
  /// counters — call after executing the tree. Non-const because rendering
  /// rule bodies shares the operators' lazily-compiled subtrees.
  std::string Explain(bool actuals = false);

 private:
  friend class PlanCompiler;

  std::unique_ptr<CandidatePlan> plan_;
  engine::op::CompiledQuery tree_;
  const dcsm::Dcsm* dcsm_ = nullptr;
};

/// Lowers CandidatePlans into physical operator trees. The optional DCSM
/// annotates EXPLAIN output with per-call cost estimates (Dcsm::Cost is
/// const and thread-safe, so compilation and EXPLAIN are safe while
/// queries execute). `options` selects the lowering — notably whether
/// independent domain-call runs are grouped for async scatter-gather; the
/// compiler is where call-site independence (no shared bound variables)
/// is decided.
class PlanCompiler {
 public:
  explicit PlanCompiler(const dcsm::Dcsm* dcsm = nullptr,
                        engine::op::CompileOptions options = {})
      : dcsm_(dcsm), options_(options) {}

  CompiledPlan Compile(CandidatePlan plan) const;

 private:
  const dcsm::Dcsm* dcsm_;
  engine::op::CompileOptions options_;
};

}  // namespace hermes::optimizer

#endif  // HERMES_OPTIMIZER_PLAN_COMPILER_H_
