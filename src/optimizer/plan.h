#ifndef HERMES_OPTIMIZER_PLAN_H_
#define HERMES_OPTIMIZER_PLAN_H_

#include <string>

#include "domain/cost.h"
#include "lang/ast.h"

namespace hermes::optimizer {

/// One fully-ordered execution plan for a query: a rewritten program (rule
/// bodies in execution order, selections pushed, calls possibly redirected
/// to CIM) plus the reordered query goals.
struct CandidatePlan {
  lang::Program program;
  lang::Query query;
  std::string description;  ///< The transformations that produced it.

  // Filled by the rule cost estimator:
  CostVector estimated;
  double estimation_ms = 0.0;  ///< Simulated DCSM time spent estimating.
  bool estimatable = false;    ///< False when the ordering is infeasible.

  std::string ToString() const {
    std::string out = "-- plan: " + description + "\n";
    out += query.ToString() + "\n";
    out += program.ToString();
    return out;
  }
};

}  // namespace hermes::optimizer

#endif  // HERMES_OPTIMIZER_PLAN_H_
