#include "optimizer/estimator.h"

#include <algorithm>

namespace hermes::optimizer {

namespace {

/// Resolves a term to a static binding description under `env`.
BindingInfo DescribeTerm(const lang::Term& term, const BindingEnv& env) {
  if (term.is_constant()) return BindingInfo::Const(term.constant);
  if (term.is_bound_pattern()) return BindingInfo::Bound();
  const BindingInfo& base = env.Get(term.var_name);
  if (term.path.empty()) return base;
  if (base.is_const()) {
    Result<Value> resolved = base.constant.GetPath(term.path);
    if (resolved.ok()) return BindingInfo::Const(*resolved);
    return BindingInfo::Bound();
  }
  // A path over a bound-unknown variable is bound-unknown; over a free
  // variable it is free.
  return base.is_bound() ? BindingInfo::Bound() : BindingInfo::Free();
}

}  // namespace

Result<lang::DomainCallSpec> RuleCostEstimator::PatternFor(
    const lang::DomainCallSpec& call, const BindingEnv& env) const {
  lang::DomainCallSpec pattern;
  pattern.domain = call.domain;
  pattern.function = call.function;
  pattern.args.reserve(call.args.size());
  for (const lang::Term& arg : call.args) {
    BindingInfo info = DescribeTerm(arg, env);
    switch (info.kind) {
      case BindingInfo::Kind::kConst:
        pattern.args.push_back(lang::Term::Const(info.constant));
        break;
      case BindingInfo::Kind::kBound:
        pattern.args.push_back(lang::Term::Bound());
        break;
      case BindingInfo::Kind::kFree:
        return Status::InvalidArgument(
            "argument '" + arg.ToString() + "' of " + call.ToString() +
            " is free at execution time (invalid ordering)");
    }
  }
  return pattern;
}

Result<CostVector> RuleCostEstimator::EstimatePredicate(
    const lang::Program& program, const lang::Atom& atom,
    const BindingEnv& env, size_t depth,
    std::set<std::string>* active_predicates, double* estimation_ms) const {
  std::string key = atom.predicate + "/" + std::to_string(atom.args.size());
  if (depth >= params_.max_recursion_depth ||
      active_predicates->count(key) > 0) {
    return Status::Unimplemented(
        "recursive predicate '" + key +
        "' is not supported by the cost estimator (see [33])");
  }
  active_predicates->insert(key);

  bool any_rule = false;
  double t_first = 0, t_all = 0, card = 0;
  bool first_rule = true;
  Status failure = Status::OK();

  for (const lang::Rule& rule : program.rules) {
    if (rule.head.predicate != atom.predicate ||
        rule.head.args.size() != atom.args.size()) {
      continue;
    }
    // Build the rule-local environment by unifying head terms with the
    // caller's argument descriptions.
    BindingEnv local;
    bool head_compatible = true;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      BindingInfo caller = DescribeTerm(atom.args[i], env);
      const lang::Term& head_term = rule.head.args[i];
      if (head_term.is_constant()) {
        if (caller.is_const() && caller.constant != head_term.constant) {
          head_compatible = false;  // this rule can never match the call
          break;
        }
        continue;
      }
      if (!head_term.is_variable()) continue;
      // Join variables repeated in the head: keep the strongest knowledge.
      const BindingInfo& existing = local.Get(head_term.var_name);
      if (!existing.is_bound() ||
          (caller.is_const() && !existing.is_const())) {
        local.Set(head_term.var_name, caller);
      }
    }
    if (!head_compatible) continue;

    Result<CostVector> body = EstimateBodyInternal(
        program, rule.body, local, depth + 1, active_predicates,
        estimation_ms);
    if (!body.ok()) {
      // Recursion is a hard error (the paper defers recursive mediators to
      // [33]); an infeasible ordering merely disqualifies this rule.
      if (body.status().code() == StatusCode::kUnimplemented) {
        active_predicates->erase(key);
        return body.status();
      }
      failure = body.status();
      continue;
    }
    any_rule = true;
    // "Adding up the cardinalities and the execution times of the results
    // produced by each rule." Rules are tried sequentially, so the first
    // answer comes from the first feasible rule.
    if (first_rule) {
      t_first = body->t_first_ms;
      first_rule = false;
    }
    t_all += body->t_all_ms;
    card += body->cardinality;
  }

  active_predicates->erase(key);
  if (!any_rule) {
    if (!failure.ok()) return failure;
    return Status::NotFound("no rule defines predicate '" + key + "'");
  }

  // Predicate-Tf caching extension: replace the formula-derived T_f with
  // the observed first-answer time of comparable past invocations.
  if (params_.use_predicate_first_answer_stats) {
    lang::DomainCallSpec pattern;
    pattern.domain = "idb";
    pattern.function = atom.predicate;
    pattern.args.reserve(atom.args.size());
    for (const lang::Term& arg : atom.args) {
      BindingInfo info = DescribeTerm(arg, env);
      pattern.args.push_back(info.is_const()
                                 ? lang::Term::Const(info.constant)
                                 : lang::Term::Bound());
    }
    Result<dcsm::Aggregate> observed = dcsm_->database().Estimate(pattern);
    if (!observed.ok()) {
      // Relax fully: any past invocation of this predicate.
      for (lang::Term& arg : pattern.args) arg = lang::Term::Bound();
      observed = dcsm_->database().Estimate(pattern);
    }
    if (observed.ok() && observed->has_t_first) {
      t_first = observed->cost.t_first_ms;
      *estimation_ms += params_.per_predicate_stat_row_ms *
                        static_cast<double>(observed->rows_scanned);
    }
  }
  return CostVector(t_first, t_all, card);
}

Result<CostVector> RuleCostEstimator::EstimateBodyInternal(
    const lang::Program& program, const std::vector<lang::Atom>& goals,
    BindingEnv env, size_t depth, std::set<std::string>* active_predicates,
    double* estimation_ms) const {
  double t_first = 0.0;
  double t_all = 0.0;
  double card = 1.0;
  double prefix_card = 1.0;  // Π_{j<i} Card_j

  for (const lang::Atom& goal : goals) {
    CostVector goal_cost;
    double selectivity = 1.0;

    switch (goal.kind) {
      case lang::Atom::Kind::kDomainCall: {
        HERMES_ASSIGN_OR_RETURN(lang::DomainCallSpec pattern,
                                PatternFor(goal.call, env));
        HERMES_ASSIGN_OR_RETURN(dcsm::CostEstimate est,
                                dcsm_->Cost(pattern));
        *estimation_ms += est.lookup_ms;
        goal_cost = est.cost;
        BindingInfo out = DescribeTerm(goal.output, env);
        if (out.is_bound()) {
          // Membership check: at most one continuation per call.
          goal_cost.cardinality = std::min(
              1.0, goal_cost.cardinality * params_.membership_selectivity);
        } else if (goal.output.is_variable()) {
          env.MarkBound(goal.output.var_name);
        }
        break;
      }
      case lang::Atom::Kind::kComparison: {
        goal_cost = CostVector(params_.comparison_cost_ms,
                               params_.comparison_cost_ms, 1.0);
        BindingInfo lhs = DescribeTerm(goal.lhs, env);
        BindingInfo rhs = DescribeTerm(goal.rhs, env);
        if (lhs.is_const() && rhs.is_const()) {
          // Statically decidable.
          selectivity =
              lang::EvalRelOp(goal.op, lhs.constant, rhs.constant) ? 1.0 : 0.0;
        } else if (lhs.is_bound() && rhs.is_bound()) {
          switch (goal.op) {
            case lang::RelOp::kEq:
              selectivity = params_.eq_selectivity;
              break;
            case lang::RelOp::kNeq:
              selectivity = params_.neq_selectivity;
              break;
            default:
              selectivity = params_.range_selectivity;
              break;
          }
        } else if (goal.op == lang::RelOp::kEq) {
          // Assignment: binds the free side.
          const lang::Term& free_term = lhs.is_bound() ? goal.rhs : goal.lhs;
          const BindingInfo& known = lhs.is_bound() ? lhs : rhs;
          if (!free_term.is_variable() || !free_term.path.empty()) {
            return Status::InvalidArgument(
                "cannot bind through '" + free_term.ToString() + "' in " +
                goal.ToString());
          }
          if (!lhs.is_bound() && !rhs.is_bound()) {
            return Status::InvalidArgument(
                "comparison with two free variables: " + goal.ToString());
          }
          env.Set(free_term.var_name, known);
          selectivity = 1.0;
        } else {
          return Status::InvalidArgument(
              "comparison over a free variable: " + goal.ToString());
        }
        goal_cost.cardinality = selectivity;
        break;
      }
      case lang::Atom::Kind::kPredicate: {
        HERMES_ASSIGN_OR_RETURN(
            goal_cost, EstimatePredicate(program, goal, env, depth,
                                         active_predicates, estimation_ms));
        for (const lang::Term& arg : goal.args) {
          if (arg.is_variable()) env.MarkBound(arg.var_name);
        }
        break;
      }
    }

    t_first += goal_cost.t_first_ms;
    t_all += prefix_card * goal_cost.t_all_ms;
    prefix_card *= std::max(goal_cost.cardinality, 0.0);
    card = prefix_card;
  }

  return CostVector(t_first, t_all, card);
}

Result<RuleCostEstimator::Estimate> RuleCostEstimator::EstimateBody(
    const lang::Program& program, const std::vector<lang::Atom>& goals,
    const BindingEnv& env) const {
  Estimate estimate;
  std::set<std::string> active;
  HERMES_ASSIGN_OR_RETURN(
      estimate.cost,
      EstimateBodyInternal(program, goals, env, 0, &active,
                           &estimate.estimation_ms));
  return estimate;
}

Result<RuleCostEstimator::Estimate> RuleCostEstimator::EstimatePlan(
    const CandidatePlan& plan) const {
  return EstimateBody(plan.program, plan.query.goals, BindingEnv());
}

}  // namespace hermes::optimizer
