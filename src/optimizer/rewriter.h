#ifndef HERMES_OPTIMIZER_REWRITER_H_
#define HERMES_OPTIMIZER_REWRITER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "lang/ast.h"
#include "optimizer/plan.h"

namespace hermes::optimizer {

/// Section 5's rule rewriter.
///
/// Given a program and a query, produces candidate plans by applying:
///   1. CIM redirection — `in(X, d:f(args))` → `in(X, cim_d:f(args))` for
///      domains that have a CIM wrapper,
///   2. selection push-down — `in(T, d:all(tbl)) & =(T.attr, c)` →
///      `in(T, d:equal(tbl, 'attr', c))` (and the comparison-select
///      family) when the domain exports the target function,
///   3. subgoal reordering — every permutation of each body that keeps
///      domain-call arguments ground at execution time.
///
/// The rewriter only transforms the rules reachable from the query.
class RuleRewriter {
 public:
  struct Options {
    bool reorder_subgoals = true;
    bool push_selections = true;
    /// Generate CIM-redirected variants for these domains (in addition to
    /// the direct variants). Empty: no CIM variants.
    std::vector<std::string> cim_domains;
    /// When true, only CIM-redirected variants are emitted.
    bool cim_only = false;
    /// Predicate deciding whether `domain` exports `function` at `arity`
    /// (used by selection push-down). Unset: push-down applies to the
    /// select_* family by name.
    std::function<bool(const std::string& domain, const std::string& function,
                       size_t arity)>
        domain_has_function;
    size_t max_orderings_per_body = 24;
    size_t max_plans = 128;
  };

  /// Enumerates candidate plans. At least one plan (the original ordering)
  /// is always returned for a well-formed input.
  static Result<std::vector<CandidatePlan>> Rewrite(
      const lang::Program& program, const lang::Query& query,
      const Options& options);

  /// Redirects every domain call in `atoms` whose domain is in
  /// `cim_domains` to its CIM wrapper (`cim_<domain>`); returns how many
  /// calls were redirected.
  static size_t RedirectToCim(std::vector<lang::Atom>* atoms,
                              const std::vector<std::string>& cim_domains);

  /// Applies selection push-down to one body in place; returns the number
  /// of selections pushed.
  static size_t PushSelections(
      std::vector<lang::Atom>* body,
      const std::function<bool(const std::string&, const std::string&,
                               size_t)>& domain_has_function);

  /// Enumerates permutations of `body` under which every domain call's
  /// arguments and every comparison's operands are bound when reached.
  /// The original order, when valid, is first. Capped at `max_orderings`.
  static std::vector<std::vector<lang::Atom>> ValidOrderings(
      const std::vector<lang::Atom>& body,
      const std::vector<std::string>& initially_bound, size_t max_orderings);
};

}  // namespace hermes::optimizer

#endif  // HERMES_OPTIMIZER_REWRITER_H_
