#ifndef HERMES_OBS_FLIGHT_RECORDER_H_
#define HERMES_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace hermes::obs {

/// What happened. The recorder is a diagnostic black box, not a metrics
/// pipeline: kinds are coarse and the free-form `detail` field carries the
/// discriminating information ("open", "follower", "exact-hit", ...).
enum class FlightEventKind : uint8_t {
  kQueryStart = 0,
  kQueryEnd,
  kCallIssued,
  kCallCompleted,
  kCallFailed,
  kRetry,
  kBreakerTransition,
  kCacheOutcome,
  kSingleFlight,
  kScatterFanout,
  kArenaHighWater,
  kDriftExceeded,
  kPlanCacheHit,
  kPlanCacheMiss,
  kPlanCacheInvalidate,
  kReplan,
  kLoadShed,
  kHedge,
  kBrownout,
};

const char* FlightEventKindName(FlightEventKind kind);

/// One structured recorder event. Trivially copyable by design: rings hold
/// events by value, snapshots memcpy them out, and nothing here allocates.
/// Strings are fixed-size truncating buffers — diagnostics want the first
/// 20 characters of a site name far more than they want a heap pointer.
struct FlightEvent {
  static constexpr size_t kSiteChars = 24;
  static constexpr size_t kDomainChars = 24;
  static constexpr size_t kDetailChars = 32;

  uint64_t query_id = 0;  ///< 0 = not attributable to one query.
  uint32_t seq = 0;       ///< Per-query emission order (deterministic).
  FlightEventKind kind = FlightEventKind::kQueryStart;
  double sim_ms = 0.0;    ///< Simulated clock at emission.
  double value = 0.0;     ///< Kind-specific magnitude (ms, bytes, fanout).
  uint64_t aux = 0;       ///< Kind-specific count (attempt, rows).
  char site[kSiteChars] = {};
  char domain[kDomainChars] = {};
  char detail[kDetailChars] = {};

  static FlightEvent Make(FlightEventKind kind, uint64_t query_id,
                          uint32_t seq, double sim_ms) {
    FlightEvent ev;
    ev.kind = kind;
    ev.query_id = query_id;
    ev.seq = seq;
    ev.sim_ms = sim_ms;
    return ev;
  }

  void set_site(const std::string& s) { CopyTo(site, kSiteChars, s); }
  void set_domain(const std::string& s) { CopyTo(domain, kDomainChars, s); }
  void set_detail(const std::string& s) { CopyTo(detail, kDetailChars, s); }

  std::string site_str() const { return std::string(site); }
  std::string domain_str() const { return std::string(domain); }
  std::string detail_str() const { return std::string(detail); }

  bool operator==(const FlightEvent& other) const {
    return query_id == other.query_id && seq == other.seq &&
           kind == other.kind && sim_ms == other.sim_ms &&
           value == other.value && aux == other.aux &&
           std::memcmp(site, other.site, kSiteChars) == 0 &&
           std::memcmp(domain, other.domain, kDomainChars) == 0 &&
           std::memcmp(detail, other.detail, kDetailChars) == 0;
  }
  bool operator!=(const FlightEvent& other) const { return !(*this == other); }

  /// One-line rendering for slow-query logs and bundle manifests.
  std::string ToString() const;
  /// JSON object rendering for bundle `events.json`.
  std::string ToJson() const;

 private:
  static void CopyTo(char* dst, size_t cap, const std::string& s) {
    size_t n = s.size() < cap - 1 ? s.size() : cap - 1;
    std::memcpy(dst, s.data(), n);
    dst[n] = '\0';
  }
};

/// A lock-light per-thread flight recorder: each writer thread gets its own
/// bounded ring of FlightEvents (overwrite-oldest), so emission never
/// contends with other writers. Snapshots walk every ring under its (in
/// practice uncontended) mutex without stopping the world.
///
/// Rings are keyed in thread-local storage by a process-unique recorder id
/// that is never reused, so a cached ring pointer can never dangle into a
/// different (later) recorder: a destroyed recorder's id simply never
/// matches again.
class FlightRecorder {
 public:
  explicit FlightRecorder(size_t ring_capacity = 4096);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends `ev` to the calling thread's ring, evicting the oldest event
  /// when the ring is full.
  void Emit(const FlightEvent& ev);

  /// All events for `query_id` across every ring, ordered by `seq`. A
  /// query executes on one thread, so its events live in one ring in
  /// emission order — the sort makes the result ring-layout independent.
  std::vector<FlightEvent> SnapshotQuery(uint64_t query_id) const;

  /// Every resident event across all rings, ordered by
  /// (sim_ms, query_id, seq).
  std::vector<FlightEvent> SnapshotAll() const;

  size_t ring_capacity() const { return capacity_; }
  size_t ring_count() const;
  uint64_t total_events() const {
    return events_total_.load(std::memory_order_relaxed);
  }
  uint64_t dropped_events() const {
    return events_dropped_.load(std::memory_order_relaxed);
  }

  /// Registers `hermes_flight_events_total` / `hermes_flight_events_dropped_total`.
  void BindMetrics(MetricsRegistry& registry);

 private:
  struct Ring {
    mutable std::mutex mu;
    std::vector<FlightEvent> slots;  ///< capacity_ entries, lazily sized.
    size_t next = 0;                 ///< Next write position.
    size_t size = 0;                 ///< Resident events (<= capacity).
    uint64_t dropped = 0;            ///< Overwritten events.
  };

  Ring* LocalRing();

  const uint64_t id_;  ///< Process-unique, never reused.
  const size_t capacity_;

  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<Ring>> rings_;

  std::atomic<uint64_t> events_total_{0};
  std::atomic<uint64_t> events_dropped_{0};
};

}  // namespace hermes::obs

#endif  // HERMES_OBS_FLIGHT_RECORDER_H_
