#ifndef HERMES_OBS_METRICS_H_
#define HERMES_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hermes::obs {

/// Adds `delta` to an atomic double (no fetch_add for doubles on every
/// toolchain; a CAS loop is portable and uncontended in practice).
inline void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

/// Index of the calling thread's shard — a cheap stable hash of the thread
/// id, so concurrent writers of one instrument mostly touch distinct cache
/// lines (the same per-shard-atomics-merged-on-read pattern as the sharded
/// ResultCache).
size_t ThreadShardIndex(size_t num_shards);

/// Base class of every instrument a MetricsRegistry can expose.
class Metric {
 public:
  enum class Kind { kCounter, kFloatCounter, kGauge, kCallbackGauge,
                    kHistogram };

  virtual ~Metric() = default;
  virtual Kind kind() const = 0;
};

/// Monotonic integer counter. Lock-light: per-shard relaxed atomics, merged
/// on read. `Reset` exists for the legacy `ResetStats` APIs the experiment
/// drivers use between phases; a live Prometheus scrape would never call it.
class Counter : public Metric {
 public:
  static constexpr size_t kShards = 16;

  Kind kind() const override { return Kind::kCounter; }

  void Add(uint64_t n = 1) {
    shards_[ThreadShardIndex(kShards)].v.fetch_add(n,
                                                   std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Monotonic floating-point counter (financial charges, simulated ms).
class FloatCounter : public Metric {
 public:
  static constexpr size_t kShards = 16;

  Kind kind() const override { return Kind::kFloatCounter; }

  void Add(double delta) {
    AtomicAddDouble(shards_[ThreadShardIndex(kShards)].v, delta);
  }
  double Value() const {
    double total = 0.0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void Reset() {
    for (Shard& s : shards_) s.v.store(0.0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<double> v{0.0};
  };
  Shard shards_[kShards];
};

/// A value that goes up and down (cache byte usage, live worker count).
class Gauge : public Metric {
 public:
  Kind kind() const override { return Kind::kGauge; }

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) { AtomicAddDouble(value_, delta); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A gauge whose value is computed at exposition time (e.g. the byte usage
/// of a lock-striped cache). The callback runs on the exposing thread and
/// may take the owning structure's internal locks; it must not call back
/// into the registry.
class CallbackGauge : public Metric {
 public:
  explicit CallbackGauge(std::function<double()> fn) : fn_(std::move(fn)) {}

  Kind kind() const override { return Kind::kCallbackGauge; }
  double Value() const { return fn_ ? fn_() : 0.0; }

 private:
  std::function<double()> fn_;
};

/// A mergeable point-in-time view of a histogram. `counts` has one slot per
/// upper bound plus a final overflow (+Inf) slot.
struct HistogramSnapshot {
  std::vector<double> bounds;    ///< Ascending upper bounds (excl. +Inf).
  std::vector<uint64_t> counts;  ///< bounds.size() + 1 slots.
  double sum = 0.0;
  uint64_t count = 0;

  /// Adds `other` into this snapshot. Bounds must match (the associativity
  /// the concurrency tests assert only holds within one bucket layout).
  void Merge(const HistogramSnapshot& other);

  /// Linear-interpolated quantile estimate (q in [0,1]); 0 when empty.
  double Quantile(double q) const;
};

/// Fixed-bucket histogram over per-shard atomic bucket counts. Observations
/// land in the bucket of the smallest upper bound >= value (Prometheus `le`
/// semantics); values above every bound land in the overflow bucket.
class Histogram : public Metric {
 public:
  static constexpr size_t kShards = 8;

  /// `bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> bounds);

  /// `n` bounds: start, start*factor, start*factor^2, ...
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               size_t n);
  /// `n` bounds: start, start+step, start+2*step, ...
  static std::vector<double> LinearBounds(double start, double step, size_t n);

  Kind kind() const override { return Kind::kHistogram; }

  void Observe(double value);
  HistogramSnapshot Snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }
  void Reset();

 private:
  struct Shard {
    std::vector<std::atomic<uint64_t>> counts;  // bounds + overflow
    std::atomic<double> sum{0.0};
    std::atomic<uint64_t> count{0};
  };

  std::vector<double> bounds_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

enum class ExpositionFormat { kPrometheus, kJson };

/// Label set attached to one metric series, e.g. {{"domain", "video"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// A process- or mediator-wide catalogue of named instruments, exposable as
/// Prometheus text or JSON.
///
/// Instruments are shared_ptr-owned: components keep a handle for their hot
/// path (updates never touch the registry lock) and the registry keeps one
/// for exposition. `GetOrAdd*` returns the existing instrument when the
/// same (name, labels) series was registered before with the same kind —
/// so a re-wired component (a replaced CIM wrapper, a new QueryPool over
/// the same mediator) keeps accumulating into one series instead of
/// resetting or duplicating it.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  std::shared_ptr<Counter> GetOrAddCounter(const std::string& name,
                                           const std::string& help,
                                           const Labels& labels = {});
  std::shared_ptr<FloatCounter> GetOrAddFloatCounter(const std::string& name,
                                                     const std::string& help,
                                                     const Labels& labels = {});
  std::shared_ptr<Gauge> GetOrAddGauge(const std::string& name,
                                       const std::string& help,
                                       const Labels& labels = {});
  /// `bounds` is consulted only when the series does not exist yet.
  std::shared_ptr<Histogram> GetOrAddHistogram(const std::string& name,
                                               const std::string& help,
                                               std::vector<double> bounds,
                                               const Labels& labels = {});
  /// Registers (or replaces — the callback captures component lifetimes)
  /// an exposition-time computed gauge.
  void RegisterCallbackGauge(const std::string& name, const std::string& help,
                             const Labels& labels,
                             std::function<double()> fn);

  /// Registers `metric` under (name, labels), replacing any existing
  /// series with that identity.
  void Register(const std::string& name, const std::string& help,
                const Labels& labels, std::shared_ptr<Metric> metric);

  /// Renders every registered series. Prometheus output groups series of
  /// one family under a single # HELP / # TYPE header; JSON output is an
  /// object with a "metrics" array.
  std::string Expose(ExpositionFormat format) const;
  std::string ExposePrometheus() const {
    return Expose(ExpositionFormat::kPrometheus);
  }
  std::string ExposeJson() const { return Expose(ExpositionFormat::kJson); }

  size_t size() const;

  /// The process-wide default registry.
  static MetricsRegistry& Global();

 private:
  struct Entry {
    std::string name;
    std::string help;
    Labels labels;
    std::shared_ptr<Metric> metric;
  };

  /// Existing entry with this identity, or nullptr. Caller holds mu_.
  Entry* FindLocked(const std::string& name, const Labels& labels);

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

}  // namespace hermes::obs

#endif  // HERMES_OBS_METRICS_H_
