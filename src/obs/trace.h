#ifndef HERMES_OBS_TRACE_H_
#define HERMES_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hermes::obs {

/// One timed operation in a query's execution tree. Spans carry both
/// clocks: the simulated pipeline clock (the system's deterministic cost
/// model, what the paper's figures measure) and the host wall clock (what
/// the implementation actually spent inside the span).
struct Span {
  uint64_t id = 0;      ///< 1-based; 0 is "no span".
  uint64_t parent = 0;  ///< Parent span id; 0 for roots.
  std::string name;     ///< e.g. "call:video:frames_to_objects".
  std::string category; ///< Layer: query|rule|domain-call|cache|net|optimizer.
  double sim_begin_ms = 0.0;
  double sim_end_ms = 0.0;
  double wall_begin_us = 0.0;  ///< Host microseconds since tracer creation.
  double wall_end_us = 0.0;
  bool failed = false;
  bool closed = false;
  std::vector<std::pair<std::string, std::string>> args;
};

/// Per-query span recorder threaded through CallContext.
///
/// NOT thread-safe: one tracer belongs to one query, which executes on one
/// thread (concurrent queries each carry their own tracer). Spans nest via
/// an open-span stack — BeginSpan parents the new span under the innermost
/// open one, and EndSpan closes it, extending the recorded end so a parent
/// never ends before its children (failed calls report a shorter envelope
/// than the penalties their children charged).
class Tracer {
 public:
  explicit Tracer(uint64_t query_id = 0) : query_id_(query_id) {}

  uint64_t query_id() const { return query_id_; }
  void set_query_id(uint64_t id) { query_id_ = id; }

  /// Opens a span at simulated time `sim_begin_ms`; returns its id.
  uint64_t BeginSpan(std::string name, std::string category,
                     double sim_begin_ms);

  /// Closes `id` at simulated time `sim_end_ms` (clamped up to the latest
  /// child end). Idempotent: closing a closed span only extends its end.
  void EndSpan(uint64_t id, double sim_end_ms);

  void MarkFailed(uint64_t id, const std::string& error);
  void AddArg(uint64_t id, std::string key, std::string value);

  const std::vector<Span>& spans() const { return spans_; }
  bool empty() const { return spans_.empty(); }

  /// This tracer's spans as a complete Chrome trace_event JSON document
  /// (load in chrome://tracing or https://ui.perfetto.dev).
  std::string ToChromeJson() const;

 private:
  friend std::string ChromeTraceJson(const std::vector<const Tracer*>&);

  double WallNowUs() const;

  uint64_t query_id_;
  std::vector<Span> spans_;
  std::vector<size_t> open_;  ///< Indices of open spans, innermost last.
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
};

/// Merges the spans of several tracers (e.g. a cold and a warm run of the
/// same query) into one Chrome trace_event JSON document. Each query
/// renders as its own named track (tid = query id) under one process.
std::string ChromeTraceJson(const std::vector<const Tracer*>& tracers);

/// RAII helper: closes the span on scope exit with the simulated end time
/// set via `set_sim_end` (defaults to the begin time).
class SpanScope {
 public:
  SpanScope(Tracer* tracer, std::string name, std::string category,
            double sim_begin_ms)
      : tracer_(tracer), sim_end_ms_(sim_begin_ms) {
    if (tracer_ != nullptr) {
      id_ = tracer_->BeginSpan(std::move(name), std::move(category),
                               sim_begin_ms);
    }
  }
  ~SpanScope() {
    if (tracer_ != nullptr) tracer_->EndSpan(id_, sim_end_ms_);
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  uint64_t id() const { return id_; }
  bool active() const { return tracer_ != nullptr; }
  void set_sim_end(double sim_end_ms) { sim_end_ms_ = sim_end_ms; }
  void AddArg(std::string key, std::string value) {
    if (tracer_ != nullptr) {
      tracer_->AddArg(id_, std::move(key), std::move(value));
    }
  }
  void MarkFailed(const std::string& error) {
    if (tracer_ != nullptr) tracer_->MarkFailed(id_, error);
  }

 private:
  Tracer* tracer_;
  uint64_t id_ = 0;
  double sim_end_ms_;
};

}  // namespace hermes::obs

#endif  // HERMES_OBS_TRACE_H_
