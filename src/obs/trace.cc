#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace hermes::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// One complete ("ph":"X") trace event. Timestamps use the simulated clock
/// (deterministic, and the one the paper's figures are drawn in); the wall
/// clock rides along in args.
void AppendSpanEvent(const Span& span, uint64_t tid, std::string* out) {
  *out += "{\"name\":\"" + JsonEscape(span.name) + "\",\"cat\":\"" +
          JsonEscape(span.category) + "\",\"ph\":\"X\",\"ts\":" +
          FormatNumber(span.sim_begin_ms * 1000.0) + ",\"dur\":" +
          FormatNumber(
              std::max(span.sim_end_ms - span.sim_begin_ms, 0.0) * 1000.0) +
          ",\"pid\":1,\"tid\":" + std::to_string(tid) + ",\"args\":{";
  *out += "\"wall_begin_us\":" + FormatNumber(span.wall_begin_us) +
          ",\"wall_dur_us\":" +
          FormatNumber(std::max(span.wall_end_us - span.wall_begin_us, 0.0));
  if (span.failed) *out += ",\"failed\":true";
  for (const auto& [k, v] : span.args) {
    *out += ",\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
  }
  *out += "}}";
}

}  // namespace

double Tracer::WallNowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

uint64_t Tracer::BeginSpan(std::string name, std::string category,
                           double sim_begin_ms) {
  Span span;
  span.id = spans_.size() + 1;
  span.parent = open_.empty() ? 0 : spans_[open_.back()].id;
  span.name = std::move(name);
  span.category = std::move(category);
  span.sim_begin_ms = sim_begin_ms;
  span.sim_end_ms = sim_begin_ms;
  span.wall_begin_us = WallNowUs();
  span.wall_end_us = span.wall_begin_us;
  open_.push_back(spans_.size());
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::EndSpan(uint64_t id, double sim_end_ms) {
  if (id == 0 || id > spans_.size()) return;
  Span& span = spans_[id - 1];
  // A parent must cover its children: failure paths report a shorter
  // envelope than the penalties charged below them.
  span.sim_end_ms = std::max({span.sim_end_ms, sim_end_ms, span.sim_begin_ms});
  span.wall_end_us = WallNowUs();
  if (!span.closed) {
    span.closed = true;
    auto it = std::find(open_.begin(), open_.end(), static_cast<size_t>(id - 1));
    if (it != open_.end()) open_.erase(it);
    if (span.parent != 0 && span.parent <= spans_.size()) {
      Span& parent = spans_[span.parent - 1];
      parent.sim_end_ms = std::max(parent.sim_end_ms, span.sim_end_ms);
    }
  }
}

void Tracer::MarkFailed(uint64_t id, const std::string& error) {
  if (id == 0 || id > spans_.size()) return;
  Span& span = spans_[id - 1];
  span.failed = true;
  if (!error.empty()) span.args.emplace_back("error", error);
}

void Tracer::AddArg(uint64_t id, std::string key, std::string value) {
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].args.emplace_back(std::move(key), std::move(value));
}

std::string Tracer::ToChromeJson() const { return ChromeTraceJson({this}); }

std::string ChromeTraceJson(const std::vector<const Tracer*>& tracers) {
  // A merge over zero tracers — or only null / never-run tracers — must
  // still be a valid (empty) trace document, with no orphan metadata
  // records describing threads that recorded nothing.
  bool any_spans = false;
  for (const Tracer* tracer : tracers) {
    if (tracer != nullptr && !tracer->spans().empty()) {
      any_spans = true;
      break;
    }
  }
  if (!any_spans) return "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}";

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto append = [&out, &first](const std::string& event) {
    if (!first) out += ",";
    first = false;
    out += event;
  };

  append("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"hermes mediator\"}}");
  for (const Tracer* tracer : tracers) {
    if (tracer == nullptr || tracer->spans().empty()) continue;
    uint64_t tid = tracer->query_id();
    append("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(tid) + ",\"args\":{\"name\":\"query " +
           std::to_string(tid) + "\"}}");
    for (const Span& span : tracer->spans()) {
      std::string event;
      AppendSpanEvent(span, tid, &event);
      append(event);
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

}  // namespace hermes::obs
