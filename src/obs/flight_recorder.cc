#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>

namespace hermes::obs {

namespace {

/// Monotone source of recorder ids. Starts at 1 so the "empty" TLS cache
/// entry (id 0) never matches a live recorder.
std::atomic<uint64_t> g_next_recorder_id{1};

/// Per-thread cache of (recorder id -> ring) resolutions. A thread usually
/// talks to one recorder (its mediator's); tests create several, so this is
/// a small vector rather than a single slot. Entries for destroyed
/// recorders are harmless tombstones: their ids are never issued again.
struct TlsRingCache {
  std::vector<std::pair<uint64_t, void*>> entries;
};

TlsRingCache& LocalCache() {
  thread_local TlsRingCache cache;
  return cache;
}

std::string JsonEscapeEvent(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 4);
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

std::string FormatMs(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kQueryStart: return "query_start";
    case FlightEventKind::kQueryEnd: return "query_end";
    case FlightEventKind::kCallIssued: return "call_issued";
    case FlightEventKind::kCallCompleted: return "call_completed";
    case FlightEventKind::kCallFailed: return "call_failed";
    case FlightEventKind::kRetry: return "retry";
    case FlightEventKind::kBreakerTransition: return "breaker_transition";
    case FlightEventKind::kCacheOutcome: return "cache_outcome";
    case FlightEventKind::kSingleFlight: return "single_flight";
    case FlightEventKind::kScatterFanout: return "scatter_fanout";
    case FlightEventKind::kArenaHighWater: return "arena_high_water";
    case FlightEventKind::kDriftExceeded: return "drift_exceeded";
    case FlightEventKind::kPlanCacheHit: return "plan_cache_hit";
    case FlightEventKind::kPlanCacheMiss: return "plan_cache_miss";
    case FlightEventKind::kPlanCacheInvalidate: return "plan_cache_invalidate";
    case FlightEventKind::kReplan: return "replan";
    case FlightEventKind::kLoadShed: return "load_shed";
    case FlightEventKind::kHedge: return "hedge";
    case FlightEventKind::kBrownout: return "brownout";
  }
  return "unknown";
}

std::string FlightEvent::ToString() const {
  std::string out = "[q" + std::to_string(query_id) + " #" +
                    std::to_string(seq) + " t=" + FormatMs(sim_ms) + "ms] " +
                    FlightEventKindName(kind);
  if (site[0] != '\0') out += " site=" + site_str();
  if (domain[0] != '\0') out += " domain=" + domain_str();
  if (detail[0] != '\0') out += " detail=" + detail_str();
  if (value != 0.0) out += " value=" + FormatMs(value);
  if (aux != 0) out += " aux=" + std::to_string(aux);
  return out;
}

std::string FlightEvent::ToJson() const {
  std::string out = "{\"query_id\":" + std::to_string(query_id) +
                    ",\"seq\":" + std::to_string(seq) + ",\"kind\":\"" +
                    FlightEventKindName(kind) +
                    "\",\"sim_ms\":" + FormatMs(sim_ms) +
                    ",\"value\":" + FormatMs(value) +
                    ",\"aux\":" + std::to_string(aux);
  if (site[0] != '\0') out += ",\"site\":\"" + JsonEscapeEvent(site_str()) + "\"";
  if (domain[0] != '\0') {
    out += ",\"domain\":\"" + JsonEscapeEvent(domain_str()) + "\"";
  }
  if (detail[0] != '\0') {
    out += ",\"detail\":\"" + JsonEscapeEvent(detail_str()) + "\"";
  }
  out += "}";
  return out;
}

FlightRecorder::FlightRecorder(size_t ring_capacity)
    : id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      capacity_(ring_capacity == 0 ? 1 : ring_capacity) {}

FlightRecorder::~FlightRecorder() = default;

FlightRecorder::Ring* FlightRecorder::LocalRing() {
  TlsRingCache& cache = LocalCache();
  for (const auto& [id, ring] : cache.entries) {
    if (id == id_) return static_cast<Ring*>(ring);
  }
  auto owned = std::make_unique<Ring>();
  owned->slots.resize(capacity_);
  Ring* ring = owned.get();
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    rings_.push_back(std::move(owned));
  }
  cache.entries.emplace_back(id_, ring);
  return ring;
}

void FlightRecorder::Emit(const FlightEvent& ev) {
  Ring* ring = LocalRing();
  {
    // The writer is the only thread that ever takes this mutex outside a
    // snapshot, so the lock is uncontended on the hot path.
    std::lock_guard<std::mutex> lock(ring->mu);
    ring->slots[ring->next] = ev;
    ring->next = (ring->next + 1) % capacity_;
    if (ring->size < capacity_) {
      ++ring->size;
    } else {
      ++ring->dropped;
      events_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  events_total_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<FlightEvent> FlightRecorder::SnapshotQuery(
    uint64_t query_id) const {
  std::vector<FlightEvent> out;
  {
    std::lock_guard<std::mutex> registry_lock(registry_mu_);
    for (const auto& ring : rings_) {
      std::lock_guard<std::mutex> ring_lock(ring->mu);
      size_t start = (ring->next + capacity_ - ring->size) % capacity_;
      for (size_t i = 0; i < ring->size; ++i) {
        const FlightEvent& ev = ring->slots[(start + i) % capacity_];
        if (ev.query_id == query_id) out.push_back(ev);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::vector<FlightEvent> FlightRecorder::SnapshotAll() const {
  std::vector<FlightEvent> out;
  {
    std::lock_guard<std::mutex> registry_lock(registry_mu_);
    for (const auto& ring : rings_) {
      std::lock_guard<std::mutex> ring_lock(ring->mu);
      size_t start = (ring->next + capacity_ - ring->size) % capacity_;
      for (size_t i = 0; i < ring->size; ++i) {
        out.push_back(ring->slots[(start + i) % capacity_]);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              if (a.sim_ms != b.sim_ms) return a.sim_ms < b.sim_ms;
              if (a.query_id != b.query_id) return a.query_id < b.query_id;
              return a.seq < b.seq;
            });
  return out;
}

size_t FlightRecorder::ring_count() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return rings_.size();
}

void FlightRecorder::BindMetrics(MetricsRegistry& registry) {
  registry.RegisterCallbackGauge(
      "hermes_flight_events_total",
      "Flight-recorder events emitted since the recorder was created.", {},
      [this] { return static_cast<double>(total_events()); });
  registry.RegisterCallbackGauge(
      "hermes_flight_events_dropped_total",
      "Flight-recorder events overwritten by ring wraparound.", {},
      [this] { return static_cast<double>(dropped_events()); });
}

}  // namespace hermes::obs
