#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>

namespace hermes::obs {

size_t ThreadShardIndex(size_t num_shards) {
  static thread_local const size_t hashed =
      std::hash<std::thread::id>()(std::this_thread::get_id());
  return hashed % num_shards;
}

// ---- Histogram --------------------------------------------------------------

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (counts.empty()) {
    *this = other;
    return;
  }
  if (other.counts.empty()) return;
  for (size_t i = 0; i < counts.size() && i < other.counts.size(); ++i) {
    counts[i] += other.counts[i];
  }
  sum += other.sum;
  count += other.count;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * count));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) {
      // Interpolate within [lower, upper) of the bucket that crossed.
      double lower = i == 0 ? 0.0 : bounds[i - 1];
      double upper = i < bounds.size() ? bounds[i] : bounds.back();
      uint64_t in_bucket = counts[i];
      uint64_t before = seen - in_bucket;
      double frac = in_bucket == 0
                        ? 1.0
                        : static_cast<double>(rank - before) /
                              static_cast<double>(in_bucket);
      return lower + (upper - lower) * frac;
    }
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  shards_.reserve(kShards);
  for (size_t i = 0; i < kShards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->counts = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
    shards_.push_back(std::move(shard));
  }
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 size_t n) {
  std::vector<double> bounds;
  bounds.reserve(n);
  double v = start;
  for (size_t i = 0; i < n; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::LinearBounds(double start, double step,
                                            size_t n) {
  std::vector<double> bounds;
  bounds.reserve(n);
  for (size_t i = 0; i < n; ++i) bounds.push_back(start + step * i);
  return bounds;
}

void Histogram::Observe(double value) {
  Shard& shard = *shards_[ThreadShardIndex(kShards)];
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(shard.sum, value);
  shard.count.fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (size_t i = 0; i < shard->counts.size(); ++i) {
      snap.counts[i] += shard->counts[i].load(std::memory_order_relaxed);
    }
    snap.sum += shard->sum.load(std::memory_order_relaxed);
    snap.count += shard->count.load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::Reset() {
  for (const auto& shard : shards_) {
    for (auto& c : shard->counts) c.store(0, std::memory_order_relaxed);
    shard->sum.store(0.0, std::memory_order_relaxed);
    shard->count.store(0, std::memory_order_relaxed);
  }
}

// ---- Registry ---------------------------------------------------------------

namespace {

/// %g-style rendering that keeps Prometheus/JSON numbers compact while
/// preserving enough precision for counters measured in bytes.
std::string FormatNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string PrometheusEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// `{k="v",...}` rendering; `extra` appends one more label (histogram le).
std::string PrometheusLabels(const Labels& labels,
                             const std::string& extra_key = "",
                             const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + PrometheusEscape(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + PrometheusEscape(extra_value) + "\"";
  }
  out += "}";
  return out;
}

const char* PrometheusType(Metric::Kind kind) {
  switch (kind) {
    case Metric::Kind::kCounter:
    case Metric::Kind::kFloatCounter:
      return "counter";
    case Metric::Kind::kGauge:
    case Metric::Kind::kCallbackGauge:
      return "gauge";
    case Metric::Kind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

double ScalarValue(const Metric& metric) {
  switch (metric.kind()) {
    case Metric::Kind::kCounter:
      return static_cast<double>(static_cast<const Counter&>(metric).Value());
    case Metric::Kind::kFloatCounter:
      return static_cast<const FloatCounter&>(metric).Value();
    case Metric::Kind::kGauge:
      return static_cast<const Gauge&>(metric).Value();
    case Metric::Kind::kCallbackGauge:
      return static_cast<const CallbackGauge&>(metric).Value();
    case Metric::Kind::kHistogram:
      return 0.0;  // histograms are rendered bucket-wise
  }
  return 0.0;
}

}  // namespace

MetricsRegistry::Entry* MetricsRegistry::FindLocked(const std::string& name,
                                                    const Labels& labels) {
  for (Entry& entry : entries_) {
    if (entry.name == name && entry.labels == labels) return &entry;
  }
  return nullptr;
}

void MetricsRegistry::Register(const std::string& name, const std::string& help,
                               const Labels& labels,
                               std::shared_ptr<Metric> metric) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* existing = FindLocked(name, labels)) {
    existing->help = help;
    existing->metric = std::move(metric);
    return;
  }
  entries_.push_back(Entry{name, help, labels, std::move(metric)});
}

std::shared_ptr<Counter> MetricsRegistry::GetOrAddCounter(
    const std::string& name, const std::string& help, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* existing = FindLocked(name, labels)) {
    if (auto typed = std::dynamic_pointer_cast<Counter>(existing->metric)) {
      return typed;
    }
  }
  auto metric = std::make_shared<Counter>();
  if (Entry* existing = FindLocked(name, labels)) {
    existing->help = help;
    existing->metric = metric;
  } else {
    entries_.push_back(Entry{name, help, labels, metric});
  }
  return metric;
}

std::shared_ptr<FloatCounter> MetricsRegistry::GetOrAddFloatCounter(
    const std::string& name, const std::string& help, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* existing = FindLocked(name, labels)) {
    if (auto typed =
            std::dynamic_pointer_cast<FloatCounter>(existing->metric)) {
      return typed;
    }
  }
  auto metric = std::make_shared<FloatCounter>();
  if (Entry* existing = FindLocked(name, labels)) {
    existing->help = help;
    existing->metric = metric;
  } else {
    entries_.push_back(Entry{name, help, labels, metric});
  }
  return metric;
}

std::shared_ptr<Gauge> MetricsRegistry::GetOrAddGauge(const std::string& name,
                                                      const std::string& help,
                                                      const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* existing = FindLocked(name, labels)) {
    if (auto typed = std::dynamic_pointer_cast<Gauge>(existing->metric)) {
      return typed;
    }
  }
  auto metric = std::make_shared<Gauge>();
  if (Entry* existing = FindLocked(name, labels)) {
    existing->help = help;
    existing->metric = metric;
  } else {
    entries_.push_back(Entry{name, help, labels, metric});
  }
  return metric;
}

std::shared_ptr<Histogram> MetricsRegistry::GetOrAddHistogram(
    const std::string& name, const std::string& help,
    std::vector<double> bounds, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* existing = FindLocked(name, labels)) {
    if (auto typed = std::dynamic_pointer_cast<Histogram>(existing->metric)) {
      return typed;
    }
  }
  auto metric = std::make_shared<Histogram>(std::move(bounds));
  if (Entry* existing = FindLocked(name, labels)) {
    existing->help = help;
    existing->metric = metric;
  } else {
    entries_.push_back(Entry{name, help, labels, metric});
  }
  return metric;
}

void MetricsRegistry::RegisterCallbackGauge(const std::string& name,
                                            const std::string& help,
                                            const Labels& labels,
                                            std::function<double()> fn) {
  Register(name, help, labels,
           std::make_shared<CallbackGauge>(std::move(fn)));
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

std::string MetricsRegistry::Expose(ExpositionFormat format) const {
  // Copy the catalogue under the lock, then render lock-free (callback
  // gauges may take component locks while computing their value).
  std::vector<Entry> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries = entries_;
  }
  // Prometheus requires all series of one family to be consecutive.
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) { return a.name < b.name; });

  std::string out;
  if (format == ExpositionFormat::kPrometheus) {
    const std::string* prev_family = nullptr;
    for (const Entry& entry : entries) {
      if (prev_family == nullptr || *prev_family != entry.name) {
        out += "# HELP " + entry.name + " " + PrometheusEscape(entry.help) +
               "\n";
        out += "# TYPE " + entry.name + " " +
               PrometheusType(entry.metric->kind()) + "\n";
        prev_family = &entry.name;
      }
      if (entry.metric->kind() == Metric::Kind::kHistogram) {
        HistogramSnapshot snap =
            static_cast<const Histogram&>(*entry.metric).Snapshot();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < snap.bounds.size(); ++i) {
          cumulative += snap.counts[i];
          out += entry.name + "_bucket" +
                 PrometheusLabels(entry.labels, "le",
                                  FormatNumber(snap.bounds[i])) +
                 " " + std::to_string(cumulative) + "\n";
        }
        cumulative += snap.counts.back();
        out += entry.name + "_bucket" +
               PrometheusLabels(entry.labels, "le", "+Inf") + " " +
               std::to_string(cumulative) + "\n";
        out += entry.name + "_sum" + PrometheusLabels(entry.labels) + " " +
               FormatNumber(snap.sum) + "\n";
        out += entry.name + "_count" + PrometheusLabels(entry.labels) + " " +
               std::to_string(snap.count) + "\n";
      } else {
        out += entry.name + PrometheusLabels(entry.labels) + " " +
               FormatNumber(ScalarValue(*entry.metric)) + "\n";
      }
    }
    return out;
  }

  // JSON exposition.
  out = "{\"metrics\":[";
  bool first = true;
  for (const Entry& entry : entries) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(entry.name) + "\",\"help\":\"" +
           JsonEscape(entry.help) + "\",\"type\":\"" +
           PrometheusType(entry.metric->kind()) + "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [k, v] : entry.labels) {
      if (!first_label) out += ",";
      first_label = false;
      out += "\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
    }
    out += "}";
    if (entry.metric->kind() == Metric::Kind::kHistogram) {
      HistogramSnapshot snap =
          static_cast<const Histogram&>(*entry.metric).Snapshot();
      out += ",\"buckets\":[";
      for (size_t i = 0; i < snap.counts.size(); ++i) {
        if (i > 0) out += ",";
        std::string le =
            i < snap.bounds.size() ? FormatNumber(snap.bounds[i]) : "\"+Inf\"";
        out += "{\"le\":" + le + ",\"count\":" + std::to_string(snap.counts[i]) +
               "}";
      }
      out += "],\"sum\":" + FormatNumber(snap.sum) +
             ",\"count\":" + std::to_string(snap.count);
    } else {
      out += ",\"value\":" + FormatNumber(ScalarValue(*entry.metric));
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace hermes::obs
