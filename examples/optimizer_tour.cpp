// Optimizer tour: watch the cost-based optimizer enumerate rewritings of
// one query (subgoal reorderings, selection push-down, CIM redirection),
// price them against the statistics cache, and converge on the cheap plan
// as the DCSM learns — the paper's Sections 5–7 in one run.
//
// Build & run:  ./build/examples/optimizer_tour

#include <cstdio>

#include "engine/mediator.h"
#include "testbed/scenario.h"

using namespace hermes;

int main() {
  Mediator med;
  testbed::RopeScenarioOptions options;
  options.sites.video_site = net::UsaSite("umd");
  options.sites.relation_site = net::UsaSite("cornell");
  if (!testbed::SetupRopeScenario(&med, options).ok()) return 1;

  // Part 1: selection push-down. A scan-then-filter query is rewritten to
  // call the source's select function directly (the paper's query4→query3
  // transformation).
  const std::string scan_query =
      "?- in(P, relation:all('cast')) & =(P.role, 'rupert') & =(A, P.name).";
  std::printf("push-down demo: %s\n", scan_query.c_str());
  Result<optimizer::OptimizerResult> pushed =
      med.Plan(scan_query, QueryOptions{});
  if (pushed.ok()) {
    std::printf("  chosen plan [%s]:\n    %s\n",
                pushed->best.description.c_str(),
                pushed->best.query.ToString().c_str());
  }

  // Part 2: plan enumeration + cost-based learning on the appendix's
  // query4 (whose filter binds a join variable, so it cannot be pushed —
  // reordering and CIM redirection are the optimizer's levers instead).
  const std::string query = testbed::AppendixQuery(4, false, 4, 127);
  std::printf("\nquery: %s\n", query.c_str());

  for (int round = 1; round <= 4; ++round) {
    Result<optimizer::OptimizerResult> plan = med.Plan(query, QueryOptions{});
    if (!plan.ok()) {
      std::printf("plan error: %s\n", plan.status().ToString().c_str());
      return 1;
    }
    std::printf("\n-- round %d: %zu candidate plans\n", round,
                plan->candidates.size());
    // Show the cheapest few candidates.
    std::vector<const optimizer::CandidatePlan*> ranked;
    for (const optimizer::CandidatePlan& c : plan->candidates) {
      if (c.estimatable) ranked.push_back(&c);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const optimizer::CandidatePlan* a,
                 const optimizer::CandidatePlan* b) {
                return a->estimated.t_all_ms < b->estimated.t_all_ms;
              });
    for (size_t i = 0; i < ranked.size() && i < 4; ++i) {
      std::printf("   %zu. %-24s predicted Ta=%8.0fms Tf=%7.0fms Card=%5.1f\n",
                  i + 1, ranked[i]->description.c_str(),
                  ranked[i]->estimated.t_all_ms,
                  ranked[i]->estimated.t_first_ms,
                  ranked[i]->estimated.cardinality);
    }

    Result<QueryResult> res = med.Query(query, QueryOptions{});
    if (!res.ok()) {
      std::printf("query error: %s\n", res.status().ToString().c_str());
      return 1;
    }
    std::printf("   executed [%s]: actual Ta=%8.0fms Tf=%7.0fms, "
                "%zu answers, %llu calls\n",
                res->plan_description.c_str(), res->execution.t_all_ms,
                res->execution.t_first_ms, res->execution.answers.size(),
                (unsigned long long)res->execution.domain_calls);
    if (res->predicted_valid) {
      double err = res->execution.t_all_ms > 0
                       ? 100.0 *
                             (res->predicted.t_all_ms -
                              res->execution.t_all_ms) /
                             res->execution.t_all_ms
                       : 0.0;
      std::printf("   prediction error for the chosen plan: %+.0f%%\n", err);
    }
  }

  std::printf("\nstatistics cache: %zu cost-vector records across %zu call "
              "groups\n",
              med.dcsm().database().TotalRecords(),
              med.dcsm().database().Groups().size());
  return 0;
}
