// hermes_shell: an interactive mediator console.
//
//   ./build/examples/hermes_shell --demo     # run the canned demo script
//   ./build/examples/hermes_shell < script   # or feed your own commands
//
// Commands:
//   <rule>.                      add a mediator rule
//   ?- <goals>.                  run a query
//   :invariant <invariant>.      install an invariant (domain must be cached)
//   :plans ?- <goals>.           show the optimizer's ranked candidates
//   :stats                       DCSM / CIM / network counters
//   :dump                        print the cost-vector database dump
//   :mode all | first            all-answers vs interactive execution
//   :optimizer on | off          toggle cost-based optimization
//   :demo                        load the 'rope' demo scenario
//   :help, :quit

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "common/io.h"
#include "common/strings.h"
#include "dcsm/persistence.h"
#include "engine/mediator.h"
#include "testbed/scenario.h"

using namespace hermes;

namespace {

constexpr const char* kDemoScript = R"(:demo
?- query3(4, 47, Object, Actor).
?- query3(4, 47, Object, Actor).
:plans ?- query3(4, 47, Object, Actor).
:stats
:quit
)";

class Shell {
 public:
  Shell() = default;

  int RunFrom(std::istream& in) {
    std::string line;
    while (std::getline(in, line)) {
      line = TrimString(line);
      if (line.empty() || line[0] == '%') continue;
      std::printf("hermes> %s\n", line.c_str());
      if (!Dispatch(line)) break;
    }
    return 0;
  }

 private:
  bool Dispatch(const std::string& line) {
    if (line == ":quit" || line == ":q") return false;
    if (line == ":help") {
      PrintHelp();
    } else if (line == ":demo") {
      LoadDemo();
    } else if (line == ":stats") {
      PrintStats();
    } else if (line == ":dump") {
      std::printf("%s", dcsm::DumpStatistics(med_.dcsm().database()).c_str());
    } else if (StartsWith(line, ":mode")) {
      options_.mode = line.find("first") != std::string::npos
                          ? engine::ExecutionMode::kInteractive
                          : engine::ExecutionMode::kAllAnswers;
      std::printf("mode: %s\n",
                  options_.mode == engine::ExecutionMode::kInteractive
                      ? "interactive (first batch)"
                      : "all answers");
    } else if (StartsWith(line, ":trace")) {
      options_.collect_trace = line.find("off") == std::string::npos;
      std::printf("trace: %s\n", options_.collect_trace ? "on" : "off");
    } else if (StartsWith(line, ":optimizer")) {
      options_.use_optimizer = line.find("off") == std::string::npos;
      std::printf("optimizer: %s\n", options_.use_optimizer ? "on" : "off");
    } else if (StartsWith(line, ":load ")) {
      Report(med_.LoadProgramFile(TrimString(line.substr(6))));
    } else if (StartsWith(line, ":save ")) {
      Report(WriteStringToFile(TrimString(line.substr(6)),
                               dcsm::DumpStatistics(med_.dcsm().database())));
    } else if (StartsWith(line, ":invariant")) {
      Report(med_.AddInvariants(TrimString(line.substr(10))));
    } else if (StartsWith(line, ":plans")) {
      ShowPlans(TrimString(line.substr(6)));
    } else if (StartsWith(line, "?-")) {
      RunQuery(line);
    } else if (!line.empty() && line[0] == ':') {
      std::printf("unknown command; :help lists commands\n");
    } else {
      Report(med_.LoadProgram(line));
    }
    return true;
  }

  void PrintHelp() {
    std::printf(
        "  <rule>.            add a mediator rule\n"
        "  ?- <goals>.        run a query\n"
        "  :invariant <inv>.  install an invariant\n"
        "  :plans ?- <q>.     show ranked candidate plans\n"
        "  :stats / :dump     counters / statistics dump\n"
        "  :load <path>       load a rule file\n"
        "  :save <path>       save the statistics database\n"
        "  :mode all|first    execution mode\n"
        "  :optimizer on|off  cost-based optimization\n"
        "  :trace on|off      per-call execution trace\n"
        "  :demo              load the 'rope' scenario\n"
        "  :quit              leave\n");
  }

  void PrintStats() {
    const dcsm::CostVectorDatabase& db = med_.dcsm().database();
    std::printf("statistics: %zu records, %zu call groups, ~%zu bytes\n",
                db.TotalRecords(), db.Groups().size(), db.ApproxBytes());
    for (const std::string& name : med_.CachedDomains()) {
      cim::CimDomain* cim = med_.cim(name);
      const cim::CimStats& s = cim->stats();
      std::printf(
          "cim_%s: %zu entries, exact=%llu eq=%llu partial=%llu miss=%llu\n",
          name.c_str(), cim->cache().size(),
          (unsigned long long)s.exact_hits, (unsigned long long)s.equality_hits,
          (unsigned long long)s.partial_hits, (unsigned long long)s.misses);
    }
    const net::NetworkStats& n = med_.network().stats();
    std::printf("network: %llu calls, %llu failures, %llu bytes, $%.2f\n",
                (unsigned long long)n.calls, (unsigned long long)n.failures,
                (unsigned long long)n.bytes_transferred, n.total_charge);
  }

  void LoadDemo() {
    Status st = testbed::SetupRopeScenario(&med_, {});
    std::printf("%s\n", st.ok()
                            ? "rope scenario loaded: domains video@umd, "
                              "relation@cornell; appendix queries query1..4"
                            : st.ToString().c_str());
  }

  void Report(const Status& st) {
    std::printf("%s\n", st.ok() ? "ok" : st.ToString().c_str());
  }

  void RunQuery(const std::string& text) {
    Result<QueryResult> res = med_.Query(text, options_);
    if (!res.ok()) {
      std::printf("error: %s\n", res.status().ToString().c_str());
      return;
    }
    const engine::QueryExecution& exec = res->execution;
    // Header row of variables.
    std::string header;
    for (const std::string& var : exec.var_names) {
      header += var + "\t";
    }
    std::printf("%s\n", header.c_str());
    size_t shown = 0;
    for (const ValueList& row : exec.answers) {
      if (shown++ >= 20) {
        std::printf("... (%zu more)\n", exec.answers.size() - 20);
        break;
      }
      std::string rendered;
      for (const Value& v : row) rendered += v.ToString() + "\t";
      std::printf("%s\n", rendered.c_str());
    }
    std::printf("%zu answer(s)%s in Tf=%.0fms Ta=%.0fms [%s]",
                exec.answers.size(), exec.complete ? "" : " (partial)",
                exec.t_first_ms, exec.t_all_ms,
                res->plan_description.c_str());
    if (res->traffic.remote_calls > 0) {
      std::printf("  net: %llu calls, %llu bytes",
                  (unsigned long long)res->traffic.remote_calls,
                  (unsigned long long)res->traffic.bytes);
      if (res->traffic.charge > 0) {
        std::printf(", $%.2f", res->traffic.charge);
      }
    }
    std::printf("\n");
    if (options_.collect_trace) {
      for (const engine::CallTrace& t : exec.trace) {
        std::printf("  %s\n", t.ToString().c_str());
      }
    }
  }

  void ShowPlans(const std::string& query_text) {
    Result<optimizer::OptimizerResult> plan =
        med_.Plan(query_text, options_);
    if (!plan.ok()) {
      std::printf("error: %s\n", plan.status().ToString().c_str());
      return;
    }
    for (const optimizer::CandidatePlan& c : plan->candidates) {
      if (!c.estimatable) continue;
      std::printf("  %-22s Ta=%9.0fms Tf=%8.0fms Card=%6.1f%s\n",
                  c.description.c_str(), c.estimated.t_all_ms,
                  c.estimated.t_first_ms, c.estimated.cardinality,
                  c.description == plan->best.description ? "  <= chosen"
                                                          : "");
    }
  }

  Mediator med_;
  QueryOptions options_;
};

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  if (argc > 1 && std::string(argv[1]) == "--demo") {
    std::istringstream demo(kDemoScript);
    return shell.RunFrom(demo);
  }
  return shell.RunFrom(std::cin);
}
