// Newsroom: a five-way federation. A fact-checking desk asks one question
// — "which actors mentioned in today's wire stories appear in our film
// archive, and do we have a verified photo of them?" — and the mediator
// spans a text corpus, a relational cast table, the AVIS video archive
// and a face-recognition gallery to answer it. A second rule plans a
// courier route to the archive vault with the terrain package.
//
// Build & run:  ./build/examples/newsroom

#include <cstdio>

#include "avis/avis_domain.h"
#include "engine/mediator.h"
#include "face/face_domain.h"
#include "relational/relational_domain.h"
#include "testbed/scenario.h"
#include "text/text_domain.h"

using namespace hermes;

int main() {
  Mediator med;

  // -- sources ---------------------------------------------------------------
  auto text = std::make_shared<text::TextDomain>("text");
  text::LoadNewsCorpus(text.get());
  (void)med.RegisterDomain("text", text);

  auto cast_db = testbed::MakeCastDatabase();
  (void)med.RegisterRemoteDomain(
      "relation",
      std::make_shared<relational::RelationalDomain>("ingres", cast_db),
      net::UsaSite("cornell"));

  auto videos = testbed::MakeRopeVideoDatabase();
  (void)med.RegisterRemoteDomain(
      "video", std::make_shared<avis::AvisDomain>("avis", videos),
      net::UsaSite("umd"));
  (void)med.EnableCaching("video");

  auto faces = std::make_shared<face::FaceDomain>("face");
  faces->Enroll("james stewart", 1);
  faces->Enroll("john dall", 2);
  faces->Enroll("farley granger", 3);
  faces->AddPhoto("press_photo_1", "james stewart", 77);
  (void)med.RegisterDomain("face", faces);

  (void)med.RegisterDomain("terraindb", testbed::MakeSupplyTerrain());

  // -- mediator rules ------------------------------------------------------------
  Status st = med.LoadProgram(R"(
    % Wire stories mentioning a word, with their text.
    story(Word, Doc) :-
        in(Hit, text:search('usatoday', Word)) & =(Doc, Hit.doc).

    % If the wire mentions a word today, pull the archived film's cast
    % appearing between the given frames (the story gates the expensive
    % archive sweep; it does not filter the cast list).
    wire_actor(Word, Movie, F, L, Actor, Role) :-
        story(Word, Doc) &
        in(T, relation:all('cast')) &
        =(T.name, Actor) &
        =(T.role, Role) &
        in(Role, video:frames_to_objects(Movie, F, L)).

    % Does a press photo verify the actor?
    verified(Photo, Actor) :-
        in(M, face:identify(Photo)) & =(Actor, M.person).
  )");
  if (!st.ok()) {
    std::printf("program error: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("-- the wire mentions 'stewart' today; cast of 'rope' on\n"
              "   screen in frames [1, 9000]:\n");
  Result<QueryResult> actors = med.Query(
      "?- wire_actor('stewart', 'rope', 1, 9000, Actor, Role).",
      QueryOptions{});
  if (!actors.ok()) {
    std::printf("query error: %s\n", actors.status().ToString().c_str());
    return 1;
  }
  const auto& vars = actors->execution.var_names;
  size_t actor_col = 0, role_col = 0;
  for (size_t i = 0; i < vars.size(); ++i) {
    if (vars[i] == "Actor") actor_col = i;
    if (vars[i] == "Role") role_col = i;
  }
  for (const ValueList& row : actors->execution.answers) {
    std::printf("   %s as %s\n", row[actor_col].ToString().c_str(),
                row[role_col].ToString().c_str());
  }
  std::printf("   [%zu matches, Ta=%.0fms simulated, plan %s]\n",
              actors->execution.answers.size(), actors->execution.t_all_ms,
              actors->plan_description.c_str());

  std::printf("\n-- does press_photo_1 verify james stewart?\n");
  Result<QueryResult> verified = med.Query(
      "?- verified('press_photo_1', 'james stewart').", QueryOptions{});
  if (verified.ok()) {
    std::printf("   %s\n",
                verified->execution.answers.empty() ? "no" : "yes");
  }

  std::printf("\n-- courier route from place1 to the northern depot vault:\n");
  (void)med.LoadProgram(
      "courier(From, To, R) :- in(R, terraindb:findrte(From, To)).");
  Result<QueryResult> route = med.Query(
      "?- courier('place1', 'depot_north', R).", QueryOptions{});
  if (route.ok() && !route->execution.answers.empty()) {
    const Value& r = route->execution.answers[0].back();
    std::printf("   %s cells, cost %.0f\n",
                r.GetAttr("length")->ToString().c_str(),
                r.GetAttr("cost")->as_double());
  }
  return 0;
}
