// Quickstart: mediate between a remote video package (AVIS) and a remote
// relational database, with caching, invariants and the cost-based
// optimizer — the paper's running scenario in ~80 lines.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "avis/avis_domain.h"
#include "avis/video_db.h"
#include "engine/mediator.h"
#include "relational/relational_domain.h"

namespace {

// The 'cast' relation of the paper's appendix queries: role → actor.
constexpr const char* kCastCsv = R"(name:string,role:string
'james stewart',rupert
'john dall',brandon
'farley granger',phillip
'dick hogan',david
'joan chandler',janet
'edith evanson',mrs_wilson
)";

}  // namespace

int main() {
  using namespace hermes;

  Mediator med;

  // --- Wire the sources ----------------------------------------------------
  auto db = std::make_shared<relational::Database>();
  if (!db->LoadCsv("cast", kCastCsv).ok()) return 1;
  auto ingres = std::make_shared<relational::RelationalDomain>("ingres", db);

  auto videos = std::make_shared<avis::VideoDatabase>();
  avis::LoadRopeDataset(videos.get());
  auto avis_domain = std::make_shared<avis::AvisDomain>("avis", videos);

  // The relational DB sits at a nearby US site, AVIS across the Atlantic.
  (void)med.RegisterRemoteDomain("relation", ingres, net::UsaSite("cornell"));
  (void)med.RegisterRemoteDomain("video", avis_domain, net::ItalySite("milan"));

  // --- Caching + invariants --------------------------------------------------
  (void)med.EnableCaching("video");
  (void)med.EnableCaching("relation");
  Status st = med.AddInvariants(
      // A wider frame range sees at least the objects of a narrower one.
      "F2 <= F1 & L1 <= L2 => "
      "video:frames_to_objects(V, F2, L2) >= video:frames_to_objects(V, F1, L1).");
  if (!st.ok()) {
    std::printf("invariant error: %s\n", st.ToString().c_str());
    return 1;
  }

  // --- Mediator rules -----------------------------------------------------------
  st = med.LoadProgram(R"(
    % Actors whose characters appear between two frames of a movie.
    actors_between(Movie, First, Last, Actor, Role) :-
        in(Role, video:frames_to_objects(Movie, First, Last)) &
        in(T, relation:equal('cast', role, Role)) &
        =(Actor, T.name).
  )");
  if (!st.ok()) {
    std::printf("program error: %s\n", st.ToString().c_str());
    return 1;
  }

  // --- Query, cold then warm ------------------------------------------------------
  const char* query = "?- actors_between('rope', 4, 47, Actor, Role).";
  for (int round = 1; round <= 3; ++round) {
    Result<QueryResult> res = med.Query(query, QueryOptions{});
    if (!res.ok()) {
      std::printf("query error: %s\n", res.status().ToString().c_str());
      return 1;
    }
    std::printf("round %d [%s]: %zu answers, Tf=%.0fms, Ta=%.0fms\n", round,
                res->plan_description.c_str(), res->execution.answers.size(),
                res->execution.t_first_ms, res->execution.t_all_ms);
    if (round == 1) {
      // Result columns follow res->execution.var_names: [Actor, Role, T].
      for (const ValueList& row : res->execution.answers) {
        std::printf("  %s plays %s\n", row[0].ToString().c_str(),
                    row[1].ToString().c_str());
      }
    }
  }

  const cim::CimStats& stats = med.cim("video")->stats();
  std::printf(
      "video CIM: %llu exact hits, %llu partial hits, %llu misses, "
      "%llu actual calls\n",
      static_cast<unsigned long long>(stats.exact_hits),
      static_cast<unsigned long long>(stats.partial_hits),
      static_cast<unsigned long long>(stats.misses),
      static_cast<unsigned long long>(stats.actual_calls));
  return 0;
}
