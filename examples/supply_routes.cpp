// Supply routes: the paper's Section 2 motivating example. A mediator rule
// joins a relational inventory, a flat-file readiness report, and an
// expensive terrain path-planner — three heterogeneous sources, none of
// which understands the others.
//
// Build & run:  ./build/examples/supply_routes

#include <cstdio>

#include "engine/mediator.h"
#include "flatfile/flatfile_domain.h"
#include "relational/relational_domain.h"
#include "testbed/scenario.h"

using namespace hermes;

int main() {
  Mediator med;

  // The inventory relation lives in a campus INGRES install.
  auto inventory = testbed::MakeInventoryDatabase();
  auto ingres = std::make_shared<relational::RelationalDomain>(
      "ingres", inventory, relational::RelationalCostParams{},
      /*provide_cost_model=*/true);
  if (!med.RegisterRemoteDomain("ingres", ingres, net::UsaSite("bucknell"))
           .ok()) {
    return 1;
  }
  // INGRES ships a real cost model — let the DCSM delegate to it.
  if (!med.UseNativeCostModel("ingres").ok()) return 1;

  // Depot readiness lives in a flat file updated by hand.
  auto files = std::make_shared<flatfile::FlatFileDomain>("files");
  files->PutFile("readiness", {
      {Value::Str("depot_north"), Value::Str("green")},
      {Value::Str("depot_east"), Value::Str("amber")},
      {Value::Str("depot_south"), Value::Str("green")},
      {Value::Str("depot_west"), Value::Str("red")},
  });
  if (!med.RegisterDomain("files", files).ok()) return 1;

  // The path planner is a local but computationally expensive package.
  if (!med.RegisterDomain("terraindb", testbed::MakeSupplyTerrain()).ok()) {
    return 1;
  }
  if (!med.EnableCaching("terraindb").ok()) return 1;

  // The mediator rule: where can we get the supply item from, how ready is
  // that depot, and what is the route?
  Status st = med.LoadProgram(R"(
    routetosupplies(From, Sup, To, Status, Route) :-
        in(T, ingres:equal('inventory', item, Sup)) &
        =(T.loc, To) &
        in(Rec, files:match('readiness', 1, To)) &
        =(Status, Rec.2) &
        Status != 'red' &
        in(Route, terraindb:findrte(From, To)).
  )");
  if (!st.ok()) {
    std::printf("program error: %s\n", st.ToString().c_str());
    return 1;
  }

  for (const char* item : {"'h-22 fuel'", "rations", "ammunition"}) {
    std::string query = std::string("?- routetosupplies('place1', ") + item +
                        ", To, Status, Route).";
    Result<QueryResult> res = med.Query(query, QueryOptions{});
    if (!res.ok()) {
      std::printf("query error: %s\n", res.status().ToString().c_str());
      return 1;
    }
    std::printf("supplies of %-12s  [%s, %.0fms simulated]\n", item,
                res->plan_description.c_str(), res->execution.t_all_ms);
    // Columns follow var_names: T, To, Rec, Status, Route.
    const auto& vars = res->execution.var_names;
    size_t to_col = 0, status_col = 0, route_col = 0;
    for (size_t i = 0; i < vars.size(); ++i) {
      if (vars[i] == "To") to_col = i;
      if (vars[i] == "Status") status_col = i;
      if (vars[i] == "Route") route_col = i;
    }
    for (const ValueList& row : res->execution.answers) {
      Result<Value> cost = row[route_col].GetAttr("cost");
      Result<Value> length = row[route_col].GetAttr("length");
      std::printf("  -> %-12s readiness=%-6s route: %s cells, cost %.0f\n",
                  row[to_col].ToString().c_str(),
                  row[status_col].ToString().c_str(),
                  length.ok() ? length->ToString().c_str() : "?",
                  cost.ok() ? cost->as_double() : 0.0);
    }
    if (res->execution.answers.empty()) {
      std::printf("  (no ready depot stocks this item)\n");
    }
  }

  // The second pass over the same routes hits the planner cache.
  Result<QueryResult> warm = med.Query(
      "?- routetosupplies('place1', 'h-22 fuel', To, Status, Route).",
      QueryOptions{});
  if (warm.ok()) {
    std::printf("\nre-planning h-22 fuel routes (terrain cache warm): "
                "%.0fms simulated\n",
                warm->execution.t_all_ms);
  }
  return 0;
}
