// Video explorer: interactive-mode queries over a remote video package,
// with subset invariants serving fast first answers from the cache and the
// cache masking a site outage — the paper's Section 4 motivation end to end.
//
// Build & run:  ./build/examples/video_explorer

#include <cstdio>

#include "avis/avis_domain.h"
#include "engine/mediator.h"
#include "net/remote_domain.h"
#include "testbed/scenario.h"

using namespace hermes;

namespace {

void Show(const char* label, const Result<QueryResult>& res) {
  if (!res.ok()) {
    std::printf("%-34s ERROR: %s\n", label, res.status().ToString().c_str());
    return;
  }
  std::printf("%-34s %2zu answers%s  Tf=%7.0fms  Ta=%7.0fms\n", label,
              res->execution.answers.size(),
              res->execution.complete ? " " : "*",  // * = partial set
              res->execution.t_first_ms, res->execution.t_all_ms);
}

}  // namespace

int main() {
  Mediator med;

  // AVIS lives in Italy behind a thin, flaky 1996 link.
  net::SiteParams milan = net::ItalySite("milan");
  testbed::RopeScenarioOptions options;
  options.sites.video_site = milan;
  if (!testbed::SetupRopeScenario(&med, options).ok()) return 1;
  if (!med.LoadProgram("objects(F, L, O) :- "
                       "in(O, video:frames_to_objects('rope', F, L)).")
           .ok()) {
    return 1;
  }

  QueryOptions all;
  all.use_optimizer = false;

  QueryOptions interactive = all;
  interactive.mode = engine::ExecutionMode::kInteractive;
  interactive.interactive_batch = 3;

  std::printf("-- cold exploration (every call crosses the Atlantic)\n");
  Show("objects [4,47], all answers", med.Query("?- objects(4, 47, O).", all));

  std::printf("\n-- interactive mode: a partial-invariant hit serves the "
              "first batch\n   from the cache without waiting for Milan\n");
  // The narrow range is cached; the wider range is a superset, so the
  // invariant serves the cached subset instantly (the engine stops after
  // the first batch — the actual call never completes).
  cim::CimDomain* cim = med.cim("video");
  cim->options().complete_partial_hits = false;  // interactive CIM mode
  Show("objects [4,127], first 3",
       med.Query("?- objects(4, 127, O).", interactive));
  cim->options().complete_partial_hits = true;
  Show("objects [4,127], all answers",
       med.Query("?- objects(4, 127, O).", all));

  std::printf("\n-- Milan goes down: the cache keeps answering\n");
  // Failure injection: take down the network layer the cache sits on.
  net::NetworkInterceptor* link = med.remote_link("video");
  if (link == nullptr) return 1;
  link->mutable_site().availability = 0.0;
  Show("objects [4,47] (cached, site down)",
       med.Query("?- objects(4, 47, O).", all));
  // [4,500] was never asked; the cached [4,127] subset is the best the
  // invariants can do while the site is down — a (partial) stale answer
  // beats no answer.
  Show("objects [4,500] (partial, site down)",
       med.Query("?- objects(4, 500, O).", all));
  Show("objects [200,300] (uncached, site down)",
       med.Query("?- objects(200, 300, O).", all));

  const cim::CimStats& stats = cim->stats();
  std::printf(
      "\nvideo CIM: exact=%llu equality=%llu partial=%llu misses=%llu "
      "masked-outages=%llu failed-outages=%llu\n",
      (unsigned long long)stats.exact_hits,
      (unsigned long long)stats.equality_hits,
      (unsigned long long)stats.partial_hits,
      (unsigned long long)stats.misses,
      (unsigned long long)stats.unavailable_masked,
      (unsigned long long)stats.unavailable_failed);
  std::printf("* = incomplete (partial) answer set\n");
  return 0;
}
